"""Tests for the rotation report and the Section 6 overlap analysis."""

import pytest

from repro.analysis.overlap import build_overlap_report
from repro.analysis.rotation_report import build_rotation_report
from repro.dns.rr import RRType
from repro.relay.client import DnsConfig
from repro.relay.ingress import RelayProtocol
from repro.scan.relay_scanner import RelayScanConfig, RelayScanner

AKAMAI_PR = 36183


@pytest.fixture(scope="module")
def scan_pair(tiny_world):
    """An open scan and a fixed-DNS scan on the tiny world."""
    world = tiny_world
    open_client = world.make_vantage_client()
    open_series = RelayScanner(
        open_client, world.web_server, world.echo_server, world.clock
    ).run(RelayScanConfig(30.0, 86400.0), "open")
    ingress = sorted(
        world.ingress_v4.active_addresses(world.clock.now, RelayProtocol.QUIC)
    )[0]
    fixed_client = world.make_vantage_client(
        DnsConfig.fixed({("mask.icloud.com", RRType.A): [ingress]})
    )
    fixed_series = RelayScanner(
        fixed_client, world.web_server, world.echo_server, world.clock
    ).run(RelayScanConfig(30.0, 86400.0), "fixed")
    return open_series, fixed_series


class TestRotationReport:
    def test_figure3_series(self, tiny_world, scan_pair):
        open_series, fixed_series = scan_pair
        report = build_rotation_report(open_series, fixed_series)
        figure = report.figure3_series()
        assert set(figure) == {"open", "fixed"}
        assert len(figure["open"]) == len(open_series)

    def test_operator_change_counts(self, scan_pair):
        report = build_rotation_report(*scan_pair)
        counts = report.operator_change_counts()
        assert set(counts) == {"open", "fixed"}
        assert all(count < 60 for count in counts.values())

    def test_operators_seen_names(self, scan_pair):
        report = build_rotation_report(*scan_pair)
        assert report.operators_seen() <= {"Cloudflare", "Akamai_PR"}

    def test_rotation_statistics(self, tiny_world, scan_pair):
        report = build_rotation_report(
            scan_pair[0], scan_pair[1], tiny_world.egress_list_may
        )
        assert report.address_change_rate() > 0.6
        assert report.distinct_address_count() >= 2
        assert report.distinct_subnet_count() >= 1
        assert report.parallel_divergence_rate() > 0.3

    def test_forced_ingress_no_behaviour_change(self, scan_pair):
        report = build_rotation_report(*scan_pair)
        assert not report.forced_ingress_changes_behaviour()

    def test_render(self, tiny_world, scan_pair):
        report = build_rotation_report(
            scan_pair[0], scan_pair[1], tiny_world.egress_list_may
        )
        rendered = report.render()
        assert "address change rate" in rendered
        assert "forced ingress" in rendered


@pytest.fixture(scope="module")
def overlap(tiny_world, scan_pair):
    world = tiny_world
    open_series, _ = scan_pair
    ingress_v4 = {
        r.address
        for r in world.ingress_v4.relays
        if r.is_active(world.clock.now)
    }
    ingress_v6 = {
        r.address
        for r in world.ingress_v6.relays
        if r.is_active(world.clock.now)
    }
    akamai_ingress = sorted(
        a for a in open_series.ingress_addresses()
        if world.routing.origin_of(a) == AKAMAI_PR
    )
    akamai_egress = sorted(
        r.curl.egress_address
        for r in open_series.rounds
        if r.curl.egress_asn == AKAMAI_PR
    )
    return build_overlap_report(
        world.routing,
        world.history,
        ingress_v4,
        ingress_v6,
        world.egress_list_may,
        world.topology,
        world.vantage_router_id,
        akamai_ingress[0] if akamai_ingress else None,
        akamai_egress[0] if akamai_egress else None,
    )


class TestOverlapReport:
    def test_akamai_pr_hosts_both_layers(self, overlap):
        assert overlap.overlap_asns == {AKAMAI_PR}

    def test_prefixes_never_shared(self, overlap):
        assert overlap.shared_prefixes == 0

    def test_used_fraction_high(self, overlap):
        # Paper: 92.2 % of announced AS36183 prefixes carry relay traffic.
        assert 0.75 < overlap.used_fraction <= 1.0

    def test_prefix_counts_consistent(self, overlap):
        assert overlap.used_prefixes <= overlap.announced_total
        assert overlap.ingress_prefixes > 0
        assert overlap.egress_prefixes > 0

    def test_first_seen_matches_launch(self, overlap):
        assert overlap.first_seen == (2021, 6)
        assert overlap.months_examined == 77

    def test_shared_last_hop(self, overlap):
        assert overlap.shared_last_hop
        assert overlap.ingress_trace is not None
        assert overlap.egress_trace is not None
        assert overlap.ingress_trace.last_hop.asn == AKAMAI_PR

    def test_render(self, overlap):
        rendered = overlap.render()
        assert "last hop" in rendered
        assert "92" in rendered or "used fraction" in rendered
