"""Tests for the passive-observer analyses (ISP monitor, server IDS)."""

import pytest

from repro.analysis.passive import (
    IspMonitor,
    PassiveFlow,
    ServerSideIds,
)
from repro.netmodel.addr import IPAddress, Prefix
from repro.relay.egress_list import EgressEntry, EgressList


def addr(text: str) -> IPAddress:
    return IPAddress.parse(text)


INGRESS = {addr("172.224.0.1"), addr("172.224.0.2"), addr("17.0.0.1")}
SERVICES = {
    addr("203.0.113.80"): "video",
    addr("203.0.113.81"): "social",
}


def flow(dst: str, true_service: str = "", t: float = 0.0, size: int = 1000) -> PassiveFlow:
    return PassiveFlow(t, addr("131.159.0.17"), addr(dst), size, true_service)


class TestIspMonitor:
    def test_relay_flows_detected(self):
        monitor = IspMonitor(INGRESS, SERVICES)
        flows = [
            flow("172.224.0.1", "video"),
            flow("203.0.113.80", "video"),
        ]
        report = monitor.analyze(flows)
        assert report.relay_flows == 1
        assert report.relay_share == 0.5
        assert report.attributed == {"video": 1}

    def test_relay_flows_unattributable(self):
        monitor = IspMonitor(INGRESS, SERVICES)
        flows = [flow("172.224.0.1", "video", size=5000)]
        report = monitor.analyze(flows)
        assert report.unattributable_bytes == 5000
        assert not report.attributed

    def test_ingress_becomes_top_destination(self):
        monitor = IspMonitor(INGRESS, SERVICES)
        flows = [flow("172.224.0.1", t=i, size=10_000) for i in range(20)]
        flows += [flow("203.0.113.80", size=100)]
        report = monitor.analyze(flows)
        assert report.top_destinations[0][0] == addr("172.224.0.1")

    def test_attribution_error_grows_with_relay_adoption(self):
        monitor = IspMonitor(INGRESS, SERVICES)
        direct = [flow("203.0.113.80", "video") for _ in range(10)]
        relayed = [flow("172.224.0.1", "video") for _ in range(10)]
        assert monitor.attribution_error(direct) == 0.0
        assert monitor.attribution_error(direct + relayed) == 0.5
        assert monitor.attribution_error([]) == 0.0

    def test_world_ingress_dataset_feeds_monitor(self, small_world_scans):
        """The ECS dataset is exactly what the paper says ISPs should use."""
        april = small_world_scans[-1][2]
        monitor = IspMonitor(april.addresses())
        ingress = sorted(april.addresses())[0]
        report = monitor.analyze([flow(str(ingress))])
        assert report.relay_flows == 1


def make_egress_list() -> EgressList:
    return EgressList(
        [
            EgressEntry(Prefix.parse("172.232.0.0/28"), "DE", "DE-EU", "DE-City-000"),
        ]
    )


class TestServerSideIds:
    def test_rotating_addresses_alert_without_mitigation(self):
        ids = ServerSideIds(window_seconds=300.0, churn_threshold=5)
        requests = [
            (i * 30.0, IPAddress(4, (172 << 24) | (232 << 16) | (i % 12)))
            for i in range(40)
        ]
        report = ids.analyze(requests)
        assert report.alerts
        assert report.relay_addresses_recognised == 0

    def test_egress_list_mitigation_suppresses_alerts(self):
        ids = ServerSideIds(
            window_seconds=300.0, churn_threshold=5, egress_list=make_egress_list()
        )
        requests = [
            (i * 30.0, IPAddress(4, (172 << 24) | (232 << 16) | (i % 12)))
            for i in range(40)
        ]
        report = ids.analyze(requests)
        assert not report.alerts
        assert report.relay_addresses_recognised == 40

    def test_stable_client_never_alerts(self):
        ids = ServerSideIds(window_seconds=300.0, churn_threshold=5)
        requests = [(i * 30.0, addr("198.51.100.7")) for i in range(40)]
        report = ids.analyze(requests)
        assert not report.alerts
        assert report.windows_evaluated >= 4

    def test_quiet_windows_counted(self):
        ids = ServerSideIds(window_seconds=100.0, churn_threshold=2)
        requests = [(0.0, addr("198.51.100.7")), (950.0, addr("198.51.100.8"))]
        report = ids.analyze(requests)
        assert report.windows_evaluated == 10

    def test_empty_input(self):
        report = ServerSideIds().analyze([])
        assert report.windows_evaluated == 0
        assert report.alert_rate == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ServerSideIds(window_seconds=0.0)

    def test_relay_scan_triggers_then_mitigated(self, tiny_world):
        """An actual relay scan's access log trips the naive IDS."""
        from repro.scan import RelayScanConfig, RelayScanner

        world = tiny_world
        world.web_server.clear()
        client = world.make_vantage_client()
        RelayScanner(client, world.web_server, world.echo_server, world.clock).run(
            RelayScanConfig(30.0, 3600.0), "ids-probe"
        )
        requests = [
            (entry.timestamp, entry.requester) for entry in world.web_server.log
        ]
        naive = ServerSideIds(window_seconds=300.0, churn_threshold=3).analyze(requests)
        mitigated = ServerSideIds(
            window_seconds=300.0, churn_threshold=3,
            egress_list=world.egress_list_may,
        ).analyze(requests)
        assert naive.alerts
        assert not mitigated.alerts
