"""Tests for the QoE path comparison extension."""

import pytest

from repro.analysis.qoe import compare_paths, one_way_latency_ms
from repro.errors import TopologyError
from repro.netmodel.addr import IPAddress
from repro.netmodel.topology import Router, Topology


@pytest.fixture()
def topology():
    """vantage -- transit -- {target-edge, akamai-edge}."""
    topo = Topology()
    for name, asn, ip in (
        ("vantage", 64496, "192.0.2.1"),
        ("transit", 3356, "192.0.2.2"),
        ("target-edge", 65001, "192.0.2.3"),
        ("akamai-edge", 36183, "192.0.2.4"),
    ):
        topo.add_router(Router(name, asn, IPAddress.parse(ip)))
    topo.add_link("vantage", "transit", 5.0)
    topo.add_link("transit", "target-edge", 20.0)
    topo.add_link("transit", "akamai-edge", 10.0)
    topo.attach_host(IPAddress.parse("203.0.113.80"), "target-edge")
    topo.attach_host(IPAddress.parse("172.224.0.1"), "akamai-edge")
    topo.attach_host(IPAddress.parse("172.232.0.1"), "akamai-edge")
    return topo


class TestQoe:
    def test_one_way_latency(self, topology):
        assert one_way_latency_ms(
            topology, "vantage", IPAddress.parse("203.0.113.80")
        ) == 25.0

    def test_direct_vs_relayed(self, topology):
        comparison = compare_paths(
            topology,
            "vantage",
            IPAddress.parse("172.224.0.1"),
            IPAddress.parse("172.232.0.1"),
            IPAddress.parse("203.0.113.80"),
            backbone_factor=1.0,
        )
        assert comparison.direct_rtt_ms == 50.0
        # vantage->ingress 15 + ingress->egress 0 (same router) +
        # egress->target 30 => 45 one-way, 90 RTT.
        assert comparison.relayed_rtt_ms == 90.0
        assert comparison.overhead_ms == 40.0
        assert comparison.overhead_ratio == pytest.approx(0.8)

    def test_backbone_discount_reduces_overhead(self, topology):
        # Separate the relay hops so the backbone segment is non-trivial.
        topology.add_router(
            Router("akamai-far", 36183, IPAddress.parse("192.0.2.5"))
        )
        topology.add_link("transit", "akamai-far", 30.0)
        egress = IPAddress.parse("172.232.9.1")
        topology.attach_host(egress, "akamai-far")
        slow = compare_paths(
            topology, "vantage",
            IPAddress.parse("172.224.0.1"), egress,
            IPAddress.parse("203.0.113.80"), backbone_factor=1.0,
        )
        fast = compare_paths(
            topology, "vantage",
            IPAddress.parse("172.224.0.1"), egress,
            IPAddress.parse("203.0.113.80"), backbone_factor=0.5,
        )
        assert fast.relayed_rtt_ms < slow.relayed_rtt_ms
        assert fast.direct_rtt_ms == slow.direct_rtt_ms

    def test_backbone_factor_validated(self, topology):
        with pytest.raises(TopologyError):
            compare_paths(
                topology, "vantage",
                IPAddress.parse("172.224.0.1"),
                IPAddress.parse("172.232.0.1"),
                IPAddress.parse("203.0.113.80"),
                backbone_factor=0.0,
            )

    def test_world_relayed_path(self, tiny_world):
        """On a generated world, relaying costs bounded overhead."""
        world = tiny_world
        client = world.make_vantage_client()
        observation = client.request(world.web_server)
        comparison = compare_paths(
            world.topology,
            world.vantage_router_id,
            observation.ingress_address,
            observation.egress_address,
            world.web_server.address,
        )
        assert comparison.relayed_rtt_ms > 0
        assert comparison.direct_rtt_ms >= 0
