"""Tests for Table 1 / Table 2 analyses against the small world."""

import pytest

from repro.analysis.ingress_report import build_table1, build_table2
from repro.analysis.tables import TextTable, pct


class TestTextTable:
    def test_render_aligns(self):
        table = TextTable(["A", "Value"], title="t")
        table.add_row("x", 1)
        table.add_row("longer", 22)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "t"
        assert "longer" in rendered
        assert len({len(line) for line in lines[1:]}) == 1

    def test_row_arity_checked(self):
        table = TextTable(["A"])
        with pytest.raises(ValueError):
            table.add_row("x", "y")

    def test_pct(self):
        assert pct(0.306) == "30.6%"


@pytest.fixture(scope="module")
def table1(small_world_scans):
    return build_table1(small_world_scans)


@pytest.fixture(scope="module")
def table2(small_world, small_world_scans):
    april = small_world_scans[-1][2]
    return build_table2(april, small_world.routing, small_world.population)


class TestTable1:
    def test_four_rows(self, table1):
        assert [row.month for row in table1.rows] == [
            "2022-01", "2022-02", "2022-03", "2022-04",
        ]

    def test_counts_match_deployment(self, small_world, table1):
        config = small_world.config
        for row, month in zip(table1.rows, config.ingress_months):
            assert row.default_apple == config.s(month.quic_apple, 4)
            assert row.default_akamai == config.s(month.quic_akamai, 8)

    def test_fallback_absent_in_january(self, table1):
        assert table1.rows[0].fallback_apple is None
        assert table1.rows[1].fallback_apple is not None

    def test_february_fallback_all_apple(self, table1):
        row = table1.rows[1]
        assert row.fallback_akamai == 0
        assert row.fallback_apple == row.fallback_total

    def test_quic_growth_positive(self, table1):
        # The paper reports +34 % QUIC relays January through April.
        assert 0.2 < table1.quic_growth() < 0.6

    def test_fallback_growth_large(self, table1):
        # The paper reports +293 % for the fallback fleet.
        assert table1.fallback_growth() > 1.5

    def test_akamai_majority_grows(self, table1):
        first = table1.rows[0]
        last = table1.rows[-1]
        share_first = first.default_akamai / first.default_total
        share_last = last.default_akamai / last.default_total
        assert 0.6 < share_first < share_last < 0.85

    def test_render(self, table1):
        rendered = table1.render()
        assert "2022-04" in rendered
        assert "Table 1" in rendered


class TestTable2:
    def test_as_counts_match_ground_truth(self, small_world, table2):
        config = small_world.config
        assert table2.apple_only_ases == config.s(config.apple_only_as_count, 4)
        assert table2.akamai_only_ases == config.s(config.akamai_only_as_count, 4)
        assert table2.both_ases == config.s(config.both_as_count, 4)

    def test_subnet_counts_close(self, small_world, table2):
        config = small_world.config
        assert (
            abs(table2.apple_only_slash24s - config.s(config.apple_only_slash24s, 8))
            / config.s(config.apple_only_slash24s, 8)
            < 0.1
        )
        assert (
            abs(table2.both_slash24s - config.s(config.both_slash24s, 32))
            / config.s(config.both_slash24s, 32)
            < 0.1
        )

    def test_apple_share_of_both(self, table2):
        # Paper: Apple's subnet share within "Both" ASes is 76 %.
        assert 0.70 < table2.apple_share_of_both < 0.82

    def test_apple_share_of_all(self, table2):
        # Paper: Apple serves 69 % of all subnets from 25 % of addresses.
        assert 0.64 < table2.apple_share_of_all_subnets < 0.74

    def test_population_attribution(self, small_world, table2):
        config = small_world.config
        target = config.s(config.both_population)
        assert abs(table2.both_population - target) / target < 0.1
        # "Both" ASes hold the largest user share, as in the paper.
        assert table2.both_population > table2.akamai_only_population
        assert table2.akamai_only_population > table2.apple_only_population

    def test_render(self, table2):
        rendered = table2.render()
        assert "Akamai_PR" in rendered
        assert "Both" in rendered
