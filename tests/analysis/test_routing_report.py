"""Tests for the AS-level routing analysis (future work item i)."""

import pytest

from repro.analysis.routing_report import (
    build_routing_report,
    egress_paths_to_destination,
)
from repro.worldgen.asgraph import TIER1_ASNS, regional_transit_asns


@pytest.fixture(scope="module")
def report(tiny_world):
    clients = [c.asys.number for c in tiny_world.ground.client_ases[:80]]
    return build_routing_report(tiny_world.as_graph, clients)


class TestRoutingReport:
    def test_paths_computed_for_both_operators(self, report):
        assert set(report.per_operator) == {714, 36183}
        for load in report.per_operator.values():
            assert load.paths

    def test_no_unreachable_clients(self, report):
        assert report.unreachable_clients == 0

    def test_bottleneck_is_a_transit(self, report, tiny_world):
        transits = set(TIER1_ASNS)
        for region in ("NA", "EU", "AS", "SA", "AF", "OC"):
            transits.update(regional_transit_asns(region))
        for operator, bottleneck in report.bottlenecks().items():
            assert bottleneck is not None
            asn, share = bottleneck
            assert asn in transits
            assert 0 < share <= 1.0

    def test_hop_counts_plausible(self, report):
        for operator, hops in report.average_hops().items():
            # client -> regional -> tier-1 -> operator is the typical shape.
            assert 2.0 <= hops <= 4.5

    def test_single_peer_relay_as(self, report):
        assert report.single_peer_relay_as()

    def test_render(self, report):
        rendered = report.render()
        assert "towards Apple" in rendered
        assert "bottleneck" in rendered
        assert "AS20940" in rendered


class TestEgressPaths:
    def test_paths_from_egress_operators(self, tiny_world):
        from repro.worldgen.internet import DNS_SERVICE_ASN

        paths = egress_paths_to_destination(
            tiny_world.as_graph, [36183, 13335, 54113], DNS_SERVICE_ASN
        )
        for asn, path in paths.items():
            assert path is not None
            assert path.asns[0] == asn
            assert path.asns[-1] == DNS_SERVICE_ASN

    def test_akamai_pr_uses_peering_to_akamai_eg(self, tiny_world):
        path = tiny_world.as_graph.best_path(36183, 20940)
        assert path is not None
        # The direct peering link is the shortest route.
        assert path.hops == 1
