"""Tests for the Section 6 correlation adversary."""

import pytest

from repro.analysis.correlation import (
    FlowRecord,
    correlate_flows,
    observations_for_asn,
)
from repro.masque.http import ConnectRequest
from repro.masque.proxy import establish_tunnel
from repro.netmodel.addr import IPAddress

VANTAGE_ASN = 64496
APPLE = 714
AKAMAI_PR = 36183
CLOUDFLARE = 13335


def make_flow(
    index: int,
    timestamp: float,
    ingress_asn: int = AKAMAI_PR,
    egress_asn: int = AKAMAI_PR,
) -> FlowRecord:
    client = IPAddress(4, (131 << 24) | (159 << 16) | 4096 + index)
    ingress = IPAddress(4, (172 << 24) | (224 << 16) | (1 + index % 5))
    egress = IPAddress(4, (172 << 24) | (232 << 16) | (1 + index % 7))
    if egress_asn == CLOUDFLARE:
        egress = IPAddress(4, (104 << 24) | (16 << 16) | (1 + index % 7))
    tunnel, response = establish_tunnel(
        client_address=client,
        client_asn=VANTAGE_ASN,
        ingress_address=ingress,
        ingress_asn=ingress_asn,
        egress_service_address=egress,
        egress_service_asn=egress_asn,
        egress_address=egress,
        egress_asn=egress_asn,
        request=ConnectRequest(f"site-{index}.example", 443),
        established_at=timestamp,
    )
    assert response.ok
    return FlowRecord(tunnel=tunnel)


@pytest.fixture()
def dual_role_flows():
    """Flows where the same AS hosts ingress and egress, well-spaced."""
    return [make_flow(i, timestamp=i * 1.0) for i in range(40)]


class TestObservations:
    def test_dual_role_sees_both_sides(self, dual_role_flows):
        ingress_obs, egress_obs = observations_for_asn(dual_role_flows, AKAMAI_PR)
        assert len(ingress_obs) == 40
        assert len(egress_obs) == 40

    def test_client_isp_sees_only_ingress(self, dual_role_flows):
        ingress_obs, egress_obs = observations_for_asn(dual_role_flows, VANTAGE_ASN)
        assert len(ingress_obs) == 40
        assert not egress_obs

    def test_uninvolved_as_sees_nothing(self, dual_role_flows):
        ingress_obs, egress_obs = observations_for_asn(dual_role_flows, 65000)
        assert not ingress_obs and not egress_obs

    def test_observations_carry_no_payload_linkage(self, dual_role_flows):
        ingress_obs, _ = observations_for_asn(dual_role_flows, AKAMAI_PR)
        for obs in ingress_obs:
            assert obs.side == "ingress"
            # The ingress leg never exposes the destination authority.
            assert obs.destination.version == 4


class TestCorrelation:
    def test_dual_role_as_correlates_perfectly(self, dual_role_flows):
        result = correlate_flows(dual_role_flows, AKAMAI_PR)
        assert result.observable_flows == 40
        assert result.precision == 1.0
        assert result.recall == 1.0

    def test_single_role_ases_recover_nothing(self, dual_role_flows):
        for asn in (VANTAGE_ASN, APPLE, CLOUDFLARE):
            result = correlate_flows(dual_role_flows, asn)
            assert result.observable_flows == 0
            assert not result.pairs

    def test_disjoint_operators_defeat_the_attack(self):
        flows = [
            make_flow(i, i * 1.0, ingress_asn=APPLE, egress_asn=CLOUDFLARE)
            for i in range(20)
        ]
        for asn in (APPLE, CLOUDFLARE, VANTAGE_ASN):
            result = correlate_flows(flows, asn)
            assert result.observable_flows == 0

    def test_mixed_deployment_partial_recall(self):
        # Half the flows exit through Cloudflare: the dual-role AS can
        # only join the half it carries on both sides.
        flows = []
        for i in range(30):
            egress = AKAMAI_PR if i % 2 == 0 else CLOUDFLARE
            flows.append(make_flow(i, i * 1.0, egress_asn=egress))
        result = correlate_flows(flows, AKAMAI_PR)
        assert result.observable_flows == 15
        correct = sum(1 for p in result.pairs if p.correct)
        assert correct == 15

    def test_tight_timing_confuses_the_join(self):
        # Connections closer together than the forwarding delay spread
        # still correlate here (deterministic delays), but widening the
        # window never lowers precision below the well-spaced case.
        flows = [make_flow(i, i * 0.001) for i in range(20)]
        result = correlate_flows(flows, AKAMAI_PR, window_seconds=0.5)
        assert result.observable_flows == 20
        assert len(result.pairs) <= 20

    def test_empty_flow_list(self):
        result = correlate_flows([], AKAMAI_PR)
        assert result.precision == 0.0
        assert result.recall == 0.0

    def test_scores_bounded(self, dual_role_flows):
        result = correlate_flows(dual_role_flows, AKAMAI_PR)
        for pair in result.pairs:
            assert 0.0 <= pair.score <= 1.0
