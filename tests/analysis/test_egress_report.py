"""Tests for the Table 3/4 and figure analyses."""

import pytest

from repro.analysis.egress_report import (
    build_egress_facts,
    build_geo_scatter,
    build_location_cdfs,
    build_table3,
    build_table4,
)
from repro.netmodel.asn import WellKnownAS

APPLE = int(WellKnownAS.APPLE)
AKAMAI_PR = int(WellKnownAS.AKAMAI_PR)
AKAMAI_EG = int(WellKnownAS.AKAMAI_EG)
CLOUDFLARE = int(WellKnownAS.CLOUDFLARE)
FASTLY = int(WellKnownAS.FASTLY)


@pytest.fixture(scope="module")
def table3(small_world):
    return build_table3(small_world.egress_list_may, small_world.routing)


@pytest.fixture(scope="module")
def table4(small_world):
    return build_table4(small_world.egress_list_may, small_world.routing)


@pytest.fixture(scope="module")
def facts(small_world):
    return build_egress_facts(
        small_world.egress_list_may,
        small_world.routing,
        small_world.egress_list_jan,
        small_world.geodb,
    )


class TestTable3:
    def test_four_operator_rows(self, table3):
        assert {row.asn for row in table3.rows} == {
            AKAMAI_PR, AKAMAI_EG, CLOUDFLARE, FASTLY,
        }

    def test_subnet_counts_match_config(self, small_world, table3):
        config = small_world.config
        assert table3.row(AKAMAI_PR).v4_subnets == config.s(
            config.egress_v4_akamai_pr[0], 8
        )
        assert table3.row(CLOUDFLARE).v4_subnets == config.s(
            config.egress_v4_cloudflare[0], 8
        )

    def test_cloudflare_all_slash32(self, table3):
        row = table3.row(CLOUDFLARE)
        assert row.v4_addresses == row.v4_subnets

    def test_fastly_all_slash31(self, table3):
        row = table3.row(FASTLY)
        assert row.v4_addresses == 2 * row.v4_subnets

    def test_akamai_pr_most_addresses_per_subnet(self, table3):
        pr = table3.row(AKAMAI_PR)
        cf = table3.row(CLOUDFLARE)
        assert pr.v4_addresses / pr.v4_subnets > cf.v4_addresses / cf.v4_subnets

    def test_akamai_eg_single_bgp_prefix(self, table3):
        row = table3.row(AKAMAI_EG)
        assert row.v4_bgp_prefixes == 1
        assert row.v6_bgp_prefixes == 1

    def test_bgp_prefix_counts_scale(self, small_world, table3):
        config = small_world.config
        assert table3.row(AKAMAI_PR).v4_bgp_prefixes == config.s(
            config.egress_v4_akamai_pr[2]
        )

    def test_akamai_pr_most_v6_subnets(self, table3):
        pr = table3.row(AKAMAI_PR).v6_subnets
        assert pr == max(row.v6_subnets for row in table3.rows)

    def test_render(self, table3):
        assert "Akamai_EG" in table3.render()


class TestTable4:
    def test_city_counts_ordering(self, table4):
        # IPv6 covers at least as many cities as IPv4 for Akamai and CF
        # (the paper's "manifold" observation); Fastly is flat.
        pr = table4.row(AKAMAI_PR)
        assert pr.cities_v6 > pr.cities_v4
        cf = table4.row(CLOUDFLARE)
        assert cf.cities_v6 >= cf.cities_v4
        fastly = table4.row(FASTLY)
        assert abs(fastly.cities_v6 - fastly.cities_v4) <= 0.2 * max(
            fastly.cities_v4, 1
        )

    def test_union_at_least_max(self, table4):
        for row in table4.rows:
            assert row.cities_all >= max(row.cities_v4, row.cities_v6)

    def test_render(self, table4):
        assert "Covered Cities" in table4.render()


class TestGeoScatter:
    def test_series_per_operator(self, small_world):
        scatter = build_geo_scatter(
            small_world.egress_list_may, small_world.routing, small_world.gazetteer
        )
        assert set(scatter) == {AKAMAI_PR, AKAMAI_EG, CLOUDFLARE, FASTLY}
        for points in scatter.values():
            for lat, lon in points[:50]:
                assert -90 <= lat <= 90 and -180 <= lon <= 180

    def test_version_filter(self, small_world):
        scatter_v4 = build_geo_scatter(
            small_world.egress_list_may, small_world.routing, small_world.gazetteer, 4
        )
        scatter_all = build_geo_scatter(
            small_world.egress_list_may, small_world.routing, small_world.gazetteer
        )
        assert len(scatter_v4[AKAMAI_PR]) < len(scatter_all[AKAMAI_PR])


class TestLocationCdfs:
    def test_panels_present(self, small_world):
        cdfs = build_location_cdfs(small_world.egress_list_may, small_world.routing)
        keys = {(c.asn, c.version, c.granularity) for c in cdfs}
        assert (AKAMAI_PR, 4, "city") in keys
        assert (AKAMAI_PR, 6, "country") in keys
        assert (CLOUDFLARE, 4, "country") in keys

    def test_cdf_properties(self, small_world):
        for cdf in build_location_cdfs(small_world.egress_list_may, small_world.routing):
            series = cdf.series()
            assert series[-1][1] == pytest.approx(1.0)
            fractions = [y for _x, y in series]
            assert fractions == sorted(fractions)
            assert cdf.counts == sorted(cdf.counts, reverse=True)
            assert cdf.location_count() == len(series)


class TestEgressFacts:
    def test_us_dominates(self, facts):
        assert facts.us_share > 0.35
        assert facts.us_share > 3 * facts.second_cc_share

    def test_long_tail(self, facts):
        assert facts.ccs_below_50 > 50

    def test_cloudflare_widest_coverage(self, facts):
        assert facts.cc_coverage[CLOUDFLARE] >= facts.cc_coverage[AKAMAI_PR]
        assert facts.cc_coverage[AKAMAI_PR] > facts.cc_coverage[AKAMAI_EG]

    def test_unique_coverage_mostly_cloudflare(self, facts):
        unique = dict(facts.uniquely_covered)
        cf_unique = unique.pop(CLOUDFLARE, 0)
        assert cf_unique >= 1
        assert all(v <= cf_unique for v in unique.values())

    def test_akamai_pr_superset_of_eg(self, small_world, facts):
        extra = facts.akamai_pr_extra_over_eg
        assert extra == facts.cc_coverage[AKAMAI_PR] - facts.cc_coverage[AKAMAI_EG]

    def test_growth_about_15_percent(self, facts):
        assert 0.05 < facts.growth_since_jan < 0.3

    def test_blank_city_fraction(self, facts):
        assert 0.005 < facts.missing_city_fraction < 0.05

    def test_geodb_adoption_high(self, facts):
        assert facts.geodb_adoption is not None
        assert facts.geodb_adoption > 0.85

    def test_render(self, facts):
        rendered = facts.render()
        assert "US share" in rendered
        assert "geo-DB" in rendered
