"""Tests for repro.simtime."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simtime import (
    SECONDS_PER_MONTH,
    SimClock,
    format_month,
    month_index,
    month_to_seconds,
    seconds_to_month,
)


class TestCalendar:
    def test_epoch(self):
        assert month_index(2016, 1) == 0
        assert month_to_seconds(2016, 1) == 0.0

    def test_known_months(self):
        assert month_index(2021, 6) == 65
        assert month_index(2022, 4) == 75

    def test_invalid_month(self):
        with pytest.raises(ValueError):
            month_index(2020, 13)
        with pytest.raises(ValueError):
            month_index(2020, 0)

    def test_seconds_to_month(self):
        assert seconds_to_month(0.0) == (2016, 1)
        assert seconds_to_month(SECONDS_PER_MONTH) == (2016, 2)
        assert seconds_to_month(month_to_seconds(2022, 4) + 1) == (2022, 4)

    def test_negative_timestamp(self):
        with pytest.raises(ValueError):
            seconds_to_month(-1.0)

    def test_format(self):
        assert format_month(2022, 4) == "2022-04"


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.advance(5.0) == 5.0
        assert clock.now == 5.0

    def test_advance_backwards_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0
        clock.advance_to(10.0)  # no-op
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_advance_to_month(self):
        clock = SimClock()
        clock.advance_to_month(2022, 1)
        assert clock.calendar_month == (2022, 1)

    def test_observers(self):
        clock = SimClock()
        seen = []
        clock.subscribe(seen.append)
        clock.advance(1.0)
        clock.advance(2.0)
        assert seen == [1.0, 3.0]


@given(st.integers(min_value=2016, max_value=2100), st.integers(min_value=1, max_value=12))
def test_month_roundtrip(year, month):
    assert seconds_to_month(month_to_seconds(year, month)) == (year, month)
    assert seconds_to_month(month_to_seconds(year, month) + SECONDS_PER_MONTH - 1) == (
        year,
        month,
    )
