"""End-to-end integration: the paper's pipeline on one world.

Each test asserts one of the paper's headline findings as it emerges
from running the actual measurement code — no ground-truth shortcuts.
"""

import pytest

from repro.errors import ReproError
from repro.analysis import (
    build_overlap_report,
    build_rotation_report,
    build_table1,
    build_table2,
    build_table3,
)
from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan import (
    AtlasIngressScanner,
    EcsScanner,
    QuicScanner,
    RelayScanConfig,
    RelayScanner,
    classify_blocking,
)
from repro.worldgen.world import CONTROL_DOMAIN

INGRESS_ASNS = {714, 36183}


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        import inspect

        import repro.errors as errors

        for _name, cls in inspect.getmembers(errors, inspect.isclass):
            if cls.__module__ == "repro.errors" and cls is not errors.ReproError:
                assert issubclass(cls, ReproError)


class TestPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self, small_world, small_world_scans):
        """Run the whole measurement pipeline once."""
        world = small_world
        monthly = small_world_scans
        april = monthly[-1][2]
        atlas_time = world.deployment.april_scan_start + 40 * 3600.0
        if world.clock.now < atlas_time:
            world.clock.advance_to(atlas_time)
        atlas_scanner = AtlasIngressScanner(world.atlas, world.routing, INGRESS_ASNS)
        validation = atlas_scanner.validate_against_ecs(
            RELAY_DOMAIN_QUIC, april.addresses()
        )
        v6_report = None
        for _ in range(4):
            v6_report = atlas_scanner.measure_ingress_v6(RELAY_DOMAIN_QUIC, v6_report)
        blocking = classify_blocking(
            world.atlas, world.routing, RELAY_DOMAIN_QUIC, CONTROL_DOMAIN, INGRESS_ASNS
        )
        client = world.make_vantage_client()
        relay_scan = RelayScanner(
            client, world.web_server, world.echo_server, world.clock
        ).run(RelayScanConfig(30.0, 86400.0), "open")
        return {
            "world": world,
            "monthly": monthly,
            "april": april,
            "validation": validation,
            "v6": v6_report,
            "blocking": blocking,
            "relay_scan": relay_scan,
        }

    def test_contribution_i_ingress_enumeration(self, pipeline):
        """ECS scans collect the ingress fleet in Apple + Akamai-PR ASes."""
        april = pipeline["april"]
        by_asn = april.addresses_by_asn()
        assert set(by_asn) == INGRESS_ASNS
        table1 = build_table1(pipeline["monthly"])
        assert table1.final_total() == len(april.addresses())

    def test_contribution_i_growth(self, pipeline):
        table1 = build_table1(pipeline["monthly"])
        assert table1.quic_growth() > 0.2
        assert table1.fallback_growth() > 1.5

    def test_contribution_i_split_world(self, pipeline):
        world = pipeline["world"]
        table2 = build_table2(pipeline["april"], world.routing, world.population)
        assert 0.6 < table2.apple_share_of_all_subnets < 0.8

    def test_ecs_beats_atlas(self, pipeline):
        validation = pipeline["validation"]
        assert validation.ecs_advantage > 0
        assert len(validation.atlas_only) <= 1

    def test_ipv6_same_two_ases(self, pipeline):
        world = pipeline["world"]
        by_asn = pipeline["v6"].by_asn(world.routing)
        assert set(by_asn) == INGRESS_ASNS
        assert by_asn[36183] > by_asn[714]

    def test_blocking_about_five_percent(self, pipeline):
        blocking = pipeline["blocking"]
        assert 0.03 < blocking.blocked_share < 0.08
        assert blocking.rcode_share_of_failures("NXDOMAIN") > 0.5

    def test_contribution_ii_egress_bias(self, pipeline):
        world = pipeline["world"]
        table3 = build_table3(world.egress_list_may, world.routing)
        counts = world.egress_list_may.subnets_per_country()
        assert max(counts, key=counts.get) == "US"
        assert set(row.asn for row in table3.rows) == {36183, 20940, 13335, 54113}

    def test_contribution_iii_rotation(self, pipeline):
        world = pipeline["world"]
        report = build_rotation_report(
            pipeline["relay_scan"], egress_list=world.egress_list_may
        )
        assert report.address_change_rate() > 0.6
        assert report.parallel_divergence_rate() > 0.3
        assert report.operators_seen() <= {"Cloudflare", "Akamai_PR"}

    def test_contribution_iii_correlation_surface(self, pipeline):
        world = pipeline["world"]
        scan = pipeline["relay_scan"]
        akamai_ingress = sorted(
            a for a in scan.ingress_addresses()
            if world.routing.origin_of(a) == 36183
        )
        akamai_egress = sorted(
            r.curl.egress_address
            for r in scan.rounds
            if r.curl.egress_asn == 36183
        )
        report = build_overlap_report(
            world.routing,
            world.history,
            pipeline["april"].addresses(),
            pipeline["v6"].addresses,
            world.egress_list_may,
            world.topology,
            world.vantage_router_id,
            akamai_ingress[0] if akamai_ingress else None,
            akamai_egress[0] if akamai_egress else None,
        )
        assert report.overlap_asns == {36183}
        assert report.shared_last_hop
        assert report.shared_prefixes == 0
        assert report.used_fraction > 0.8
        assert report.first_seen == (2021, 6)

    def test_quic_probing_findings(self, pipeline):
        world = pipeline["world"]
        addresses = sorted(pipeline["april"].addresses())[:10]
        report = QuicScanner(world.service).scan(list(addresses))
        assert report.all_handshakes_timed_out
        assert report.dominant_versions() == (
            "QUICv1", "draft-29", "draft-28", "draft-27",
        )

    def test_scan_duration_realistic(self, pipeline):
        # Rate limiting stretches a scan over (simulated) wall time: at
        # full scale ~25 hours; at the test scale still a sizable slice.
        assert pipeline["april"].duration_hours() > 0.5
