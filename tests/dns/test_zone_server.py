"""Tests for repro.dns.zone and repro.dns.server."""

import pytest

from repro.errors import ZoneError
from repro.dns.message import DnsMessage, Rcode
from repro.dns.name import DnsName
from repro.dns.rr import RRClass, RRType, ResourceRecord, a_record
from repro.dns.server import AuthoritativeServer, EcsPolicy, NameServerRegistry
from repro.dns.zone import Zone
from repro.netmodel.addr import IPAddress, Prefix

APEX = "icloud.com."
MASK = DnsName.parse("mask.icloud.com")


def make_zone() -> Zone:
    zone = Zone(APEX)
    zone.add_record(a_record(MASK, IPAddress.parse("17.0.0.1")))
    return zone


class TestZone:
    def test_static_lookup(self):
        zone = make_zone()
        result = zone.lookup(MASK, RRType.A)
        assert result.exists
        assert [r.address for r in result.records] == [IPAddress.parse("17.0.0.1")]

    def test_nxdomain(self):
        zone = make_zone()
        result = zone.lookup(DnsName.parse("nothing.icloud.com"), RRType.A)
        assert not result.exists

    def test_nodata(self):
        zone = make_zone()
        result = zone.lookup(MASK, RRType.AAAA)
        assert result.exists
        assert result.is_nodata

    def test_out_of_zone_rejected(self):
        zone = make_zone()
        with pytest.raises(ZoneError):
            zone.lookup(DnsName.parse("example.org"), RRType.A)
        with pytest.raises(ZoneError):
            zone.add_record(a_record(DnsName.parse("example.org"), IPAddress.parse("1.1.1.1")))

    def test_dynamic_handler_receives_subnet(self):
        zone = Zone(APEX)
        seen = {}

        def handler(name, subnet):
            seen["subnet"] = subnet
            return [a_record(name, IPAddress.parse("172.224.0.1"))], 20

        zone.add_dynamic(MASK, RRType.A, handler)
        subnet = Prefix.parse("203.0.113.0/24")
        result = zone.lookup(MASK, RRType.A, subnet)
        assert seen["subnet"] == subnet
        assert result.scope_override == 20
        assert result.exists

    def test_dynamic_duplicate_rejected(self):
        zone = Zone(APEX)
        handler = lambda name, subnet: ([], None)
        zone.add_dynamic(MASK, RRType.A, handler)
        with pytest.raises(ZoneError):
            zone.add_dynamic(MASK, RRType.A, handler)

    def test_dynamic_name_other_type_is_nodata(self):
        zone = Zone(APEX)
        zone.add_dynamic(MASK, RRType.A, lambda n, s: ([], None))
        result = zone.lookup(MASK, RRType.TXT)
        assert result.exists and result.is_nodata

    def test_cname_chase_in_zone(self):
        zone = make_zone()
        alias = DnsName.parse("alias.icloud.com")
        zone.add_record(
            ResourceRecord(alias, RRType.CNAME, RRClass.IN, 300, MASK)
        )
        result = zone.lookup(alias, RRType.A)
        assert result.records[0].rtype == RRType.CNAME
        assert result.records[1].address == IPAddress.parse("17.0.0.1")

    def test_names(self):
        zone = make_zone()
        zone.add_dynamic(DnsName.parse("dyn.icloud.com"), RRType.A, lambda n, s: ([], None))
        assert MASK in zone.names()
        assert DnsName.parse("dyn.icloud.com") in zone.names()

    def test_soa_record(self):
        zone = make_zone()
        soa = zone.soa_record()
        assert soa.rtype == RRType.SOA
        assert soa.name == DnsName.parse(APEX)


class TestEcsPolicy:
    def test_truncates_long_v4_source(self):
        policy = EcsPolicy(max_source_v4=24)
        subnet = policy.effective_subnet(Prefix.parse("1.2.3.128/25"))
        assert subnet == Prefix.parse("1.2.3.0/24")

    def test_disabled_ignores_subnet(self):
        policy = EcsPolicy(enabled=False)
        assert policy.effective_subnet(Prefix.parse("1.2.3.0/24")) is None

    def test_v6_scope_zero(self):
        policy = EcsPolicy()
        assert policy.response_scope(Prefix.parse("2001:db8::/56"), 48) == 0

    def test_v6_scope_honoured_when_disabled(self):
        policy = EcsPolicy(ipv6_scope_zero=False)
        assert policy.response_scope(Prefix.parse("2001:db8::/56"), 48) == 48

    def test_zone_scope_override(self):
        policy = EcsPolicy()
        assert policy.response_scope(Prefix.parse("1.2.3.0/24"), 16) == 16

    def test_default_scope_echo(self):
        policy = EcsPolicy()
        assert policy.response_scope(Prefix.parse("1.2.3.0/24"), None) == 24


class TestAuthoritativeServer:
    def make_server(self) -> AuthoritativeServer:
        server = AuthoritativeServer(IPAddress.parse("205.251.192.1"))
        server.add_zone(make_zone())
        return server

    def test_answers_in_zone(self):
        server = self.make_server()
        response = server.handle(DnsMessage.query(MASK, RRType.A))
        assert response.rcode == Rcode.NOERROR
        assert response.authoritative
        assert response.answer_addresses() == [IPAddress.parse("17.0.0.1")]
        assert server.stats.answered == 1

    def test_refuses_out_of_zone(self):
        server = self.make_server()
        response = server.handle(DnsMessage.query("example.org", RRType.A))
        assert response.rcode == Rcode.REFUSED
        assert server.stats.refused == 1

    def test_nxdomain_counted(self):
        server = self.make_server()
        response = server.handle(DnsMessage.query("no.icloud.com", RRType.A))
        assert response.rcode == Rcode.NXDOMAIN
        assert server.stats.nxdomain == 1

    def test_nodata(self):
        server = self.make_server()
        response = server.handle(DnsMessage.query(MASK, RRType.AAAA))
        assert response.rcode == Rcode.NOERROR
        assert response.is_nodata

    def test_formerr_on_response_message(self):
        server = self.make_server()
        bogus = DnsMessage.query(MASK, RRType.A).reply()
        assert server.handle(bogus).rcode == Rcode.FORMERR

    def test_ecs_scope_echoed(self):
        server = self.make_server()
        query = DnsMessage.query(MASK, RRType.A, ecs=Prefix.parse("203.0.113.0/24"))
        response = server.handle(query)
        assert response.client_subnet is not None
        assert response.client_subnet.scope_prefix_length == 24
        assert server.stats.ecs_queries == 1

    def test_ecs_v6_scope_zero(self):
        server = self.make_server()
        query = DnsMessage.query(MASK, RRType.A, ecs=Prefix.parse("2001:db8::/56"))
        response = server.handle(query)
        assert response.client_subnet.scope_prefix_length == 0

    def test_source_address_fallback_feeds_zone(self):
        zone = Zone(APEX)
        seen = {}

        def handler(name, subnet):
            seen["subnet"] = subnet
            return [a_record(name, IPAddress.parse("17.0.0.9"))], None

        zone.add_dynamic(MASK, RRType.A, handler)
        server = AuthoritativeServer(IPAddress.parse("205.251.192.1"))
        server.add_zone(zone)
        server.handle(
            DnsMessage.query(MASK, RRType.A),
            source_address=IPAddress.parse("198.51.100.77"),
        )
        assert seen["subnet"] == Prefix.parse("198.51.100.0/24")

    def test_most_specific_zone_wins(self):
        server = AuthoritativeServer(IPAddress.parse("205.251.192.1"))
        outer = Zone("com.")
        outer.add_record(a_record(DnsName.parse("x.icloud.com"), IPAddress.parse("9.9.9.9")))
        inner = make_zone()
        server.add_zone(outer)
        server.add_zone(inner)
        assert server.zone_for(MASK) is inner
        assert server.serves(MASK)


class TestNameServerRegistry:
    def test_routing_by_specificity(self):
        registry = NameServerRegistry()
        a = AuthoritativeServer(IPAddress.parse("205.251.192.1"))
        a.add_zone(Zone("com."))
        b = AuthoritativeServer(IPAddress.parse("205.251.192.2"))
        b.add_zone(Zone("icloud.com."))
        registry.register(a)
        registry.register(b)
        assert registry.authoritative_for(MASK) is b
        assert registry.authoritative_for(DnsName.parse("x.com")) is a
        assert registry.authoritative_for(DnsName.parse("example.org")) is None
