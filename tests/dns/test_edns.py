"""Tests for repro.dns.edns (RFC 7871 Client Subnet)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DnsWireError
from repro.dns.edns import (
    FAMILY_IPV4,
    FAMILY_IPV6,
    ClientSubnetOption,
    EdnsOptions,
)
from repro.netmodel.addr import IPAddress, Prefix


class TestClientSubnetOption:
    def test_family(self):
        assert ClientSubnetOption(Prefix.parse("1.2.3.0/24")).family == FAMILY_IPV4
        assert ClientSubnetOption(Prefix.parse("2001:db8::/56")).family == FAMILY_IPV6

    def test_scope_bounds(self):
        with pytest.raises(DnsWireError):
            ClientSubnetOption(Prefix.parse("1.2.3.0/24"), scope_prefix_length=33)
        ClientSubnetOption(Prefix.parse("2001:db8::/56"), scope_prefix_length=128)

    def test_with_scope(self):
        option = ClientSubnetOption(Prefix.parse("1.2.3.0/24"))
        assert option.with_scope(16).scope_prefix_length == 16

    def test_scope_prefix_widens(self):
        option = ClientSubnetOption(Prefix.parse("1.2.3.0/24"), 16)
        assert option.scope_prefix() == Prefix.parse("1.2.0.0/16")

    def test_scope_prefix_never_narrows(self):
        option = ClientSubnetOption(Prefix.parse("1.2.3.0/24"), 28)
        assert option.scope_prefix() == Prefix.parse("1.2.3.0/24")

    def test_scope_zero_means_everything(self):
        option = ClientSubnetOption(Prefix.parse("2001:db8::/56"), 0)
        assert option.scope_prefix() == Prefix.parse("::/0")

    def test_wire_roundtrip_v4(self):
        option = ClientSubnetOption(Prefix.parse("203.0.113.0/24"), 21)
        assert ClientSubnetOption.from_wire(option.to_wire()) == option

    def test_wire_roundtrip_v6(self):
        option = ClientSubnetOption(Prefix.parse("2001:db8:42::/48"), 0)
        assert ClientSubnetOption.from_wire(option.to_wire()) == option

    def test_wire_truncates_address(self):
        # A /20 source needs ceil(20/8) = 3 address bytes.
        option = ClientSubnetOption(Prefix.parse("10.16.0.0/20"))
        wire = option.to_wire()
        assert len(wire) == 4 + 3

    def test_from_wire_rejects_short(self):
        with pytest.raises(DnsWireError):
            ClientSubnetOption.from_wire(b"\x00\x01")

    def test_from_wire_rejects_bad_family(self):
        with pytest.raises(DnsWireError):
            ClientSubnetOption.from_wire(b"\x00\x09\x18\x00\x01\x02\x03")

    def test_from_wire_rejects_wrong_address_length(self):
        # Family v4, source /24 but 2 address bytes.
        with pytest.raises(DnsWireError):
            ClientSubnetOption.from_wire(b"\x00\x01\x18\x00\x01\x02")

    def test_from_wire_rejects_nonzero_host_bits(self):
        # /20 with low nibble of third byte set.
        with pytest.raises(DnsWireError):
            ClientSubnetOption.from_wire(b"\x00\x01\x14\x00\x0a\x10\x0f")


class TestEdnsOptions:
    def test_defaults(self):
        opts = EdnsOptions()
        assert opts.udp_payload_size == 1232
        assert opts.client_subnet is None

    def test_payload_bounds(self):
        with pytest.raises(DnsWireError):
            EdnsOptions(udp_payload_size=100)

    def test_version_zero_only(self):
        with pytest.raises(DnsWireError):
            EdnsOptions(version=1)

    def test_options_wire_roundtrip(self):
        subnet = ClientSubnetOption(Prefix.parse("198.51.100.0/24"), 24)
        opts = EdnsOptions(client_subnet=subnet, raw_options=((65001, b"xyz"),))
        decoded = EdnsOptions.from_options_wire(opts.options_wire())
        assert decoded.client_subnet == subnet
        assert decoded.raw_options == ((65001, b"xyz"),)

    def test_from_options_wire_truncated(self):
        with pytest.raises(DnsWireError):
            EdnsOptions.from_options_wire(b"\x00\x08\x00\x10\x00")

    def test_empty_options(self):
        assert EdnsOptions.from_options_wire(b"").client_subnet is None


@given(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
    st.integers(min_value=0, max_value=32),
)
def test_ecs_wire_roundtrip_property(value, source_len, scope_len):
    prefix = Prefix.from_address(IPAddress(4, value), source_len)
    option = ClientSubnetOption(prefix, scope_len)
    assert ClientSubnetOption.from_wire(option.to_wire()) == option
