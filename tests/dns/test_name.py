"""Tests for repro.dns.name."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DnsNameError
from repro.dns.name import DnsName


class TestDnsName:
    def test_parse_simple(self):
        name = DnsName.parse("mask.icloud.com")
        assert name.labels == ("mask", "icloud", "com")

    def test_parse_trailing_dot(self):
        assert DnsName.parse("mask.icloud.com.") == DnsName.parse("mask.icloud.com")

    def test_parse_case_folds(self):
        assert DnsName.parse("MASK.iCloud.COM") == DnsName.parse("mask.icloud.com")

    def test_root(self):
        root = DnsName.parse(".")
        assert root.is_root
        assert str(root) == "."

    def test_str_fqdn(self):
        assert str(DnsName.parse("example.org")) == "example.org."

    def test_empty_label_rejected(self):
        with pytest.raises(DnsNameError):
            DnsName.parse("a..b")

    def test_long_label_rejected(self):
        with pytest.raises(DnsNameError):
            DnsName.parse("a" * 64 + ".com")

    def test_max_label_accepted(self):
        DnsName.parse("a" * 63 + ".com")

    def test_long_name_rejected(self):
        labels = ".".join(["a" * 60] * 5)
        with pytest.raises(DnsNameError):
            DnsName.parse(labels)

    def test_uppercase_constructor_rejected(self):
        with pytest.raises(DnsNameError):
            DnsName(("MASK",))

    def test_non_ascii_rejected(self):
        with pytest.raises(DnsNameError):
            DnsName(("münchen",))

    def test_parent(self):
        name = DnsName.parse("mask.icloud.com")
        assert name.parent() == DnsName.parse("icloud.com")

    def test_root_parent_fails(self):
        with pytest.raises(DnsNameError):
            DnsName(()).parent()

    def test_subdomain(self):
        apex = DnsName.parse("icloud.com")
        assert DnsName.parse("mask.icloud.com").is_subdomain_of(apex)
        assert apex.is_subdomain_of(apex)
        assert not DnsName.parse("icloud.org").is_subdomain_of(apex)
        assert not apex.is_subdomain_of(DnsName.parse("mask.icloud.com"))

    def test_everything_is_subdomain_of_root(self):
        assert DnsName.parse("a.b.c").is_subdomain_of(DnsName(()))

    def test_child(self):
        assert DnsName.parse("icloud.com").child("MASK") == DnsName.parse(
            "mask.icloud.com"
        )

    def test_hashable(self):
        assert len({DnsName.parse("a.b"), DnsName.parse("A.B")}) == 1


label_strategy = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1,
    max_size=20,
)


@given(st.lists(label_strategy, min_size=1, max_size=5))
def test_parse_str_roundtrip(labels):
    name = DnsName(tuple(labels))
    assert DnsName.parse(str(name)) == name
