"""Tests for repro.dns.rr and repro.dns.message."""

import pytest

from repro.errors import DnsWireError
from repro.dns.edns import ClientSubnetOption
from repro.dns.message import DnsMessage, Rcode
from repro.dns.name import DnsName
from repro.dns.rr import (
    RRClass,
    RRType,
    ResourceRecord,
    a_record,
    aaaa_record,
    txt_record,
)
from repro.netmodel.addr import IPAddress, Prefix

NAME = DnsName.parse("mask.icloud.com")


class TestResourceRecord:
    def test_a_record(self):
        rr = a_record(NAME, IPAddress.parse("17.0.0.1"))
        assert rr.rtype == RRType.A
        assert rr.address == IPAddress.parse("17.0.0.1")

    def test_aaaa_record(self):
        rr = aaaa_record(NAME, IPAddress.parse("2620:149::1"))
        assert rr.rtype == RRType.AAAA
        assert rr.address.version == 6

    def test_a_with_v6_rejected(self):
        with pytest.raises(DnsWireError):
            a_record(NAME, IPAddress.parse("::1"))

    def test_aaaa_with_v4_rejected(self):
        with pytest.raises(DnsWireError):
            aaaa_record(NAME, IPAddress.parse("1.2.3.4"))

    def test_bad_rdata_type(self):
        with pytest.raises(DnsWireError):
            ResourceRecord(NAME, RRType.A, RRClass.IN, 60, "not-an-address")

    def test_negative_ttl(self):
        with pytest.raises(DnsWireError):
            a_record(NAME, IPAddress.parse("1.2.3.4"), ttl=-1)

    def test_txt_record(self):
        rr = txt_record(NAME, "hello", "world")
        assert rr.rdata == ("hello", "world")

    def test_address_accessor_wrong_type(self):
        rr = txt_record(NAME, "x")
        with pytest.raises(DnsWireError):
            _ = rr.address

    def test_rrtype_for_ip_version(self):
        assert RRType.for_ip_version(4) == RRType.A
        assert RRType.for_ip_version(6) == RRType.AAAA
        with pytest.raises(DnsWireError):
            RRType.for_ip_version(5)


class TestDnsMessage:
    def test_query_construction(self):
        query = DnsMessage.query("mask.icloud.com", RRType.A, message_id=5)
        assert query.question is not None
        assert query.question.name == NAME
        assert not query.is_response
        assert query.recursion_desired

    def test_query_with_ecs(self):
        subnet = Prefix.parse("203.0.113.0/24")
        query = DnsMessage.query(NAME, RRType.A, ecs=subnet)
        assert query.client_subnet == ClientSubnetOption(subnet, 0)

    def test_query_without_ecs(self):
        query = DnsMessage.query(NAME, RRType.A)
        assert query.client_subnet is None

    def test_reply_basics(self):
        query = DnsMessage.query(NAME, RRType.A, message_id=77)
        answer = a_record(NAME, IPAddress.parse("17.0.0.1"))
        response = query.reply(answers=(answer,), authoritative=True)
        assert response.is_response
        assert response.message_id == 77
        assert response.question == query.question
        assert response.answer_addresses() == [IPAddress.parse("17.0.0.1")]

    def test_reply_echoes_ecs_with_scope(self):
        subnet = Prefix.parse("203.0.113.0/24")
        query = DnsMessage.query(NAME, RRType.A, ecs=subnet)
        response = query.reply(ecs_scope=16)
        assert response.client_subnet == ClientSubnetOption(subnet, 16)

    def test_reply_without_scope_keeps_option(self):
        subnet = Prefix.parse("203.0.113.0/24")
        query = DnsMessage.query(NAME, RRType.A, ecs=subnet)
        response = query.reply()
        assert response.client_subnet == ClientSubnetOption(subnet, 0)

    def test_nodata_detection(self):
        query = DnsMessage.query(NAME, RRType.A)
        assert query.reply(rcode=Rcode.NOERROR).is_nodata
        answer = a_record(NAME, IPAddress.parse("17.0.0.1"))
        assert not query.reply(answers=(answer,)).is_nodata
        assert not query.reply(rcode=Rcode.NXDOMAIN).is_nodata

    def test_message_id_range(self):
        with pytest.raises(DnsWireError):
            DnsMessage(message_id=70000)

    def test_with_id(self):
        query = DnsMessage.query(NAME, RRType.A, message_id=1)
        assert query.with_id(2).message_id == 2

    def test_answer_addresses_filters_non_address_records(self):
        query = DnsMessage.query(NAME, RRType.A)
        response = query.reply(
            answers=(txt_record(NAME, "x"), a_record(NAME, IPAddress.parse("1.1.1.1")))
        )
        assert response.answer_addresses() == [IPAddress.parse("1.1.1.1")]
