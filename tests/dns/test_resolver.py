"""Tests for repro.dns.resolver, ratelimit, and whoami."""

import pytest

from repro.errors import RateLimitExceeded, ResolutionTimeout
from repro.dns.message import DnsMessage, Rcode
from repro.dns.name import DnsName
from repro.dns.ratelimit import TokenBucket
from repro.dns.resolver import (
    BlockingResolver,
    HijackingResolver,
    PublicResolver,
    RecursiveResolver,
    TimeoutResolver,
    build_public_resolvers,
)
from repro.dns.rr import RRType, a_record
from repro.dns.server import AuthoritativeServer, EcsPolicy, NameServerRegistry
from repro.dns.whoami import WHOAMI_DOMAIN, WhoamiServer
from repro.dns.zone import Zone
from repro.netmodel.addr import IPAddress, Prefix
from repro.simtime import SimClock

MASK = DnsName.parse("mask.icloud.com")


@pytest.fixture()
def registry() -> NameServerRegistry:
    registry = NameServerRegistry()
    server = AuthoritativeServer(IPAddress.parse("205.251.192.1"))
    zone = Zone("icloud.com.")
    zone.add_record(a_record(MASK, IPAddress.parse("17.0.0.1")))
    zone.add_record(
        a_record(DnsName.parse("other.icloud.com"), IPAddress.parse("17.0.0.2"))
    )
    server.add_zone(zone)
    registry.register(server)
    control = AuthoritativeServer(IPAddress.parse("205.251.192.2"))
    control_zone = Zone("example.org.")
    control_zone.add_record(
        a_record(DnsName.parse("example.org"), IPAddress.parse("93.184.216.34"))
    )
    control.add_zone(control_zone)
    registry.register(control)
    registry.register(WhoamiServer(IPAddress.parse("205.251.192.3")))
    return registry


def make_resolver(registry, **kwargs) -> RecursiveResolver:
    return RecursiveResolver(
        registry, IPAddress.parse("198.51.100.53"), **kwargs
    )


class TestRecursiveResolver:
    def test_resolves(self, registry):
        resolver = make_resolver(registry)
        addresses = resolver.resolve_addresses(MASK, RRType.A)
        assert addresses == [IPAddress.parse("17.0.0.1")]

    def test_servfail_for_unknown_zone(self, registry):
        resolver = make_resolver(registry)
        response = resolver.resolve("unknown.test", RRType.A)
        assert response.rcode == Rcode.SERVFAIL

    def test_cache_hit_avoids_upstream(self, registry):
        resolver = make_resolver(registry)
        resolver.resolve(MASK, RRType.A)
        resolver.resolve(MASK, RRType.A)
        assert resolver.upstream_queries == 1

    def test_cache_expires_with_clock(self, registry):
        clock = SimClock()
        resolver = make_resolver(registry, clock=clock)
        resolver.resolve(MASK, RRType.A)
        clock.advance(120)  # past the 60 s TTL
        resolver.resolve(MASK, RRType.A)
        assert resolver.upstream_queries == 2

    def test_cache_disabled(self, registry):
        resolver = make_resolver(registry, cache_enabled=False)
        resolver.resolve(MASK, RRType.A)
        resolver.resolve(MASK, RRType.A)
        assert resolver.upstream_queries == 2

    def test_flush_cache(self, registry):
        resolver = make_resolver(registry)
        resolver.resolve(MASK, RRType.A)
        resolver.flush_cache()
        resolver.resolve(MASK, RRType.A)
        assert resolver.upstream_queries == 2

    def test_ecs_uses_client_address(self, registry):
        resolver = make_resolver(registry, send_ecs=True)
        client = IPAddress.parse("203.0.113.77")
        response = resolver.resolve(MASK, RRType.A, client_address=client)
        assert response.client_subnet is not None
        assert response.client_subnet.source == Prefix.parse("203.0.113.0/24")

    def test_no_ecs_when_disabled(self, registry):
        resolver = make_resolver(registry, send_ecs=False)
        response = resolver.resolve(MASK, RRType.A, client_address=IPAddress.parse("203.0.113.77"))
        assert response.client_subnet is None

    def test_whoami_sees_resolver_address(self, registry):
        resolver = make_resolver(registry, send_ecs=False)
        addresses = resolver.resolve_addresses(WHOAMI_DOMAIN, RRType.A)
        assert addresses == [resolver.address]


class TestPublicResolvers:
    def test_big_four(self, registry):
        resolvers = build_public_resolvers(registry)
        assert set(resolvers) == {"Google", "Cloudflare", "Quad9", "OpenDNS"}
        assert resolvers["Google"].send_ecs
        assert not resolvers["Cloudflare"].send_ecs
        assert resolvers["Cloudflare"].address == IPAddress.parse("1.1.1.1")

    def test_provider_label(self, registry):
        resolver = PublicResolver(registry, IPAddress.parse("8.8.8.8"), "Google")
        assert resolver.provider == "Google"
        assert resolver.resolve_addresses(MASK, RRType.A)


class TestBlockingResolver:
    def test_blocks_relay_domain(self, registry):
        inner = make_resolver(registry)
        resolver = BlockingResolver(inner, ["mask.icloud.com"], Rcode.NXDOMAIN)
        response = resolver.resolve(MASK, RRType.A)
        assert response.rcode == Rcode.NXDOMAIN
        assert resolver.blocked_queries == 1

    def test_noerror_blocking_is_nodata(self, registry):
        resolver = BlockingResolver(
            make_resolver(registry), ["mask.icloud.com"], Rcode.NOERROR
        )
        response = resolver.resolve(MASK, RRType.A)
        assert response.is_nodata

    def test_other_domains_pass_through(self, registry):
        resolver = BlockingResolver(
            make_resolver(registry), ["mask.icloud.com"], Rcode.REFUSED
        )
        assert resolver.resolve_addresses("example.org", RRType.A) == [
            IPAddress.parse("93.184.216.34")
        ]
        assert resolver.resolve_addresses("other.icloud.com", RRType.A) == [
            IPAddress.parse("17.0.0.2")
        ]

    def test_subdomain_blocking(self, registry):
        resolver = BlockingResolver(make_resolver(registry), ["icloud.com"])
        assert resolver.is_blocked(MASK)
        assert not resolver.is_blocked(DnsName.parse("example.org"))

    def test_unsupported_rcode(self, registry):
        with pytest.raises(ValueError):
            BlockingResolver(make_resolver(registry), ["x.org"], Rcode.NOTIMP)


class TestHijackingResolver:
    def test_redirects(self, registry):
        target = IPAddress.parse("45.90.28.1")
        resolver = HijackingResolver(
            make_resolver(registry), ["mask.icloud.com"], target
        )
        assert resolver.resolve_addresses(MASK, RRType.A) == [target]

    def test_aaaa_without_v6_target_is_nodata(self, registry):
        resolver = HijackingResolver(
            make_resolver(registry), ["mask.icloud.com"], IPAddress.parse("45.90.28.1")
        )
        assert resolver.resolve(MASK, RRType.AAAA).is_nodata

    def test_passthrough(self, registry):
        resolver = HijackingResolver(
            make_resolver(registry), ["mask.icloud.com"], IPAddress.parse("45.90.28.1")
        )
        assert resolver.resolve_addresses("example.org", RRType.A) == [
            IPAddress.parse("93.184.216.34")
        ]

    def test_requires_v4_redirect(self, registry):
        with pytest.raises(ValueError):
            HijackingResolver(
                make_resolver(registry), ["x.org"], IPAddress.parse("::1")
            )


class TestTimeoutResolver:
    def test_always_times_out(self):
        resolver = TimeoutResolver(IPAddress.parse("198.51.100.53"))
        with pytest.raises(ResolutionTimeout):
            resolver.resolve(MASK, RRType.A)


class TestTokenBucket:
    def test_burst_then_wait(self):
        clock = SimClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        assert bucket.take() == 0.0
        assert bucket.take() == 0.0
        waited = bucket.take()
        assert waited == pytest.approx(0.1)
        assert clock.now == pytest.approx(0.1)

    def test_refill(self):
        clock = SimClock()
        bucket = TokenBucket(rate=1.0, burst=5.0, clock=clock)
        for _ in range(5):
            bucket.take()
        clock.advance(3.0)
        assert bucket.tokens == pytest.approx(3.0)

    def test_try_take(self):
        clock = SimClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert bucket.try_take()
        assert not bucket.try_take()
        clock.advance(1.0)
        assert bucket.try_take()

    def test_oversized_request_rejected(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=SimClock())
        with pytest.raises(RateLimitExceeded):
            bucket.take(2.0)

    def test_total_waited_accumulates(self):
        clock = SimClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        bucket.take()
        bucket.take()
        bucket.take()
        assert bucket.total_waited == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0, clock=SimClock())
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5, clock=SimClock())


class TestWhoamiServer:
    def test_returns_requester(self):
        server = WhoamiServer(IPAddress.parse("205.251.192.3"))
        query = DnsMessage.query(WHOAMI_DOMAIN, RRType.A)
        requester = IPAddress.parse("8.8.8.8")
        response = server.handle_from(query, requester)
        assert response.answer_addresses() == [requester]

    def test_aaaa_with_v4_requester_is_nodata(self):
        server = WhoamiServer(IPAddress.parse("205.251.192.3"))
        query = DnsMessage.query(WHOAMI_DOMAIN, RRType.AAAA)
        assert server.handle_from(query, IPAddress.parse("8.8.8.8")).is_nodata

    def test_aaaa_with_v6_requester(self):
        server = WhoamiServer(IPAddress.parse("205.251.192.3"))
        query = DnsMessage.query(WHOAMI_DOMAIN, RRType.AAAA)
        requester = IPAddress.parse("2001:db8::53")
        response = server.handle_from(query, requester)
        assert response.answer_addresses() == [requester]

    def test_plain_handle_is_nodata(self):
        server = WhoamiServer(IPAddress.parse("205.251.192.3"))
        response = server.handle(DnsMessage.query(WHOAMI_DOMAIN, RRType.A))
        assert response.is_nodata
