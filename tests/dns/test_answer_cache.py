"""Tests for the scope-block answer cache (the scan fast path)."""

import pytest

from repro.dns.message import DnsMessage, Rcode
from repro.dns.name import DnsName
from repro.dns.rr import RRType, a_record
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import ANY_SUBNET, UNCACHED, LookupResult, Zone
from repro.netmodel.addr import IPAddress, Prefix


APEX = "example.com."
NAME = "relay.example.com."


def make_server(zone: Zone) -> AuthoritativeServer:
    server = AuthoritativeServer(IPAddress.parse("192.0.2.53"))
    server.add_zone(zone)
    return server


def query(server: AuthoritativeServer, name: str, subnet: str | None = None,
          rtype: RRType = RRType.A) -> DnsMessage:
    ecs = Prefix.parse(subnet) if subnet is not None else None
    return server.handle(DnsMessage.query(name, rtype, ecs=ecs))


class _CountingPlan:
    """An AnswerPlan that counts produce() calls (the per-query tail)."""

    def __init__(self, records, scope):
        self.records = tuple(records)
        self.scope = scope
        self.produced = 0

    def produce(self) -> LookupResult:
        self.produced += 1
        return LookupResult(
            exists=True, records=self.records, scope_override=self.scope
        )


def make_planned_zone(block_len: int = 16, block_value=None, plans=None):
    """A zone whose dynamic name plans per /``block_len`` subnet block."""
    zone = Zone(APEX)
    name = DnsName.parse(NAME)
    answer = IPAddress.parse("198.51.100.7")

    def handler(qname, subnet):
        return [a_record(qname, answer)], block_len

    def planner(qname, subnet):
        if subnet is None:
            return None, _CountingPlan([a_record(qname, answer)], None)
        block = subnet.truncate(block_len) if block_value is None else block_value
        plan = _CountingPlan([a_record(qname, answer)], block_len)
        if plans is not None:
            plans.append((block, plan))
        return block, plan

    zone.add_dynamic(name, RRType.A, handler, planner=planner)
    return zone


class TestBlockCaching:
    def test_hit_within_block_miss_outside(self):
        server = make_server(make_planned_zone(block_len=16))
        stats = server.answer_cache.stats
        query(server, NAME, "10.1.0.0/24")
        assert (stats.hits, stats.misses) == (0, 1)
        query(server, NAME, "10.1.200.0/24")  # same /16 block
        assert (stats.hits, stats.misses) == (1, 1)
        query(server, NAME, "10.2.0.0/24")  # different block
        assert (stats.hits, stats.misses) == (1, 2)

    def test_produce_runs_on_every_query(self):
        plans = []
        server = make_server(make_planned_zone(block_len=16, plans=plans))
        for _ in range(3):
            query(server, NAME, "10.1.0.0/24")
        # One plan stored, produced once per query (side effects replay).
        assert len(plans) == 1
        assert plans[0][1].produced == 3

    def test_answers_identical_with_cache_off(self):
        on = make_server(make_planned_zone(block_len=16))
        off = make_server(make_planned_zone(block_len=16))
        off.answer_cache.enabled = False
        for subnet in ("10.1.0.0/24", "10.1.9.0/24", "172.16.0.0/24"):
            a = query(on, NAME, subnet)
            b = query(off, NAME, subnet)
            assert a.answers == b.answers
            assert a.client_subnet == b.client_subnet
        assert on.stats == off.stats
        assert off.answer_cache.stats.hits == 0
        assert off.answer_cache.stats.misses == 0

    def test_uncached_sentinel_consumes_plan_without_storing(self):
        plans = []
        zone = make_planned_zone(block_len=16, block_value=UNCACHED, plans=plans)
        server = make_server(zone)
        query(server, NAME, "10.1.0.0/24")
        query(server, NAME, "10.1.0.0/24")
        stats = server.answer_cache.stats
        # Same subnet twice: never stored, so never hit — but each query
        # used its planner's plan directly (one produce per plan).
        assert (stats.hits, stats.misses) == (0, 2)
        assert [p.produced for _, p in plans] == [1, 1]

    def test_planner_less_dynamic_name_falls_back_to_lookup(self):
        zone = Zone(APEX)
        calls = []

        def handler(qname, subnet):
            calls.append(subnet)
            return [a_record(qname, IPAddress.parse("198.51.100.8"))], 24

        zone.add_dynamic(DnsName.parse(NAME), RRType.A, handler)
        server = make_server(zone)
        query(server, NAME, "10.1.0.0/24")
        query(server, NAME, "10.1.0.0/24")
        assert len(calls) == 2  # uncached, handler per query
        assert server.answer_cache.stats.hits == 0


class TestStaticAndNegativeCaching:
    def test_static_record_cached_any_subnet(self):
        zone = Zone(APEX)
        name = DnsName.parse("static.example.com.")
        zone.add_record(a_record(name, IPAddress.parse("203.0.113.5")))
        server = make_server(zone)
        first = query(server, "static.example.com.", "10.0.0.0/24")
        second = query(server, "static.example.com.", "172.16.99.0/24")
        third = query(server, "static.example.com.")  # no ECS at all
        assert first.answers == second.answers == third.answers
        stats = server.answer_cache.stats
        assert (stats.hits, stats.misses) == (2, 1)

    def test_nxdomain_cached(self):
        zone = Zone(APEX)
        zone.add_record(
            a_record(DnsName.parse(NAME), IPAddress.parse("203.0.113.5"))
        )
        server = make_server(zone)
        for _ in range(2):
            response = query(server, "missing.example.com.", "10.0.0.0/24")
            assert response.rcode == Rcode.NXDOMAIN
        assert server.answer_cache.stats.hits == 1
        assert server.stats.nxdomain == 2


class TestEpochInvalidation:
    def test_zone_edit_invalidates(self):
        zone = Zone(APEX)
        name = DnsName.parse(NAME)
        zone.add_record(a_record(name, IPAddress.parse("203.0.113.5")))
        server = make_server(zone)
        first = query(server, NAME, "10.0.0.0/24")
        zone.add_record(a_record(name, IPAddress.parse("203.0.113.6")))
        second = query(server, NAME, "10.0.0.0/24")
        assert len(second.answers) == len(first.answers) + 1
        assert server.answer_cache.stats.invalidations == 1
        assert server.answer_cache.stats.hits == 0

    def test_epoch_source_change_invalidates(self):
        epoch = [0]
        zone = make_planned_zone(block_len=16)
        zone.add_epoch_source(lambda: epoch[0])
        server = make_server(zone)
        query(server, NAME, "10.1.0.0/24")
        query(server, NAME, "10.1.1.0/24")
        assert server.answer_cache.stats.hits == 1
        epoch[0] = 1  # e.g. a relay activated mid-scan
        query(server, NAME, "10.1.2.0/24")
        stats = server.answer_cache.stats
        assert stats.invalidations == 1
        assert (stats.hits, stats.misses) == (1, 2)

    def test_clear_counts_invalidation(self):
        server = make_server(make_planned_zone())
        query(server, NAME, "10.1.0.0/24")
        server.answer_cache.clear()
        assert server.answer_cache.stats.invalidations == 1
        query(server, NAME, "10.1.0.0/24")
        assert server.answer_cache.stats.hits == 0


class TestOverlappingBlocks:
    def test_most_specific_block_wins_after_overlap(self):
        """Overlapping stored blocks migrate to the per-length layout."""
        zone = Zone(APEX)
        name = DnsName.parse(NAME)
        wide = IPAddress.parse("198.51.100.1")
        narrow = IPAddress.parse("198.51.100.2")

        def handler(qname, subnet):
            chosen = narrow if subnet and subnet.length >= 24 else wide
            return [a_record(qname, chosen)], None

        def planner(qname, subnet):
            if subnet is None:
                return None, _CountingPlan([a_record(qname, wide)], None)
            if subnet.length >= 24:
                return subnet, _CountingPlan([a_record(qname, narrow)], None)
            return (
                subnet.truncate(8),
                _CountingPlan([a_record(qname, wide)], None),
            )

        zone.add_dynamic(name, RRType.A, handler, planner=planner)
        server = make_server(zone)
        # Store the /24 block first, then a /8 overlapping it.
        query(server, NAME, "10.0.0.0/24")
        server.ecs_policy = server.ecs_policy.__class__(max_source_v4=16)
        query(server, NAME, "10.99.0.0/16")
        # A /24 query inside both blocks must get the /24 (more specific)
        # plan, exactly as the pre-migration probe would.
        server.ecs_policy = server.ecs_policy.__class__(max_source_v4=24)
        response = query(server, NAME, "10.0.0.0/24")
        assert response.answers[0].rdata == narrow
        assert server.answer_cache.stats.hits == 1

    def test_any_subnet_block_constant(self):
        zone = Zone(APEX)
        name = DnsName.parse(NAME)
        plan = _CountingPlan(
            [a_record(name, IPAddress.parse("198.51.100.9"))], None
        )
        zone.add_dynamic(
            name,
            RRType.A,
            lambda qname, subnet: (list(plan.records), None),
            planner=lambda qname, subnet: (ANY_SUBNET, plan),
        )
        server = make_server(zone)
        query(server, NAME, "10.0.0.0/24")
        query(server, NAME, "172.16.0.0/24")
        query(server, NAME)
        stats = server.answer_cache.stats
        assert (stats.hits, stats.misses) == (2, 1)
        assert plan.produced == 3
