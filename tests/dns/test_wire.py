"""Tests for the RFC 1035 wire codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DnsWireError
from repro.dns.message import DnsMessage, Opcode, Question, Rcode
from repro.dns.name import DnsName
from repro.dns.rr import (
    RRClass,
    RRType,
    ResourceRecord,
    SoaData,
    a_record,
    aaaa_record,
    txt_record,
)
from repro.dns.wire import decode_message, encode_message
from repro.netmodel.addr import IPAddress, Prefix

NAME = DnsName.parse("mask.icloud.com")


def roundtrip(message: DnsMessage) -> DnsMessage:
    return decode_message(encode_message(message))


class TestWireRoundtrip:
    def test_plain_query(self):
        message = DnsMessage.query(NAME, RRType.A, message_id=1234)
        assert roundtrip(message) == message

    def test_ecs_query(self):
        message = DnsMessage.query(
            NAME, RRType.A, message_id=9, ecs=Prefix.parse("203.0.113.0/24")
        )
        decoded = roundtrip(message)
        assert decoded.client_subnet == message.client_subnet
        assert decoded.question == message.question

    def test_response_with_answers(self):
        query = DnsMessage.query(NAME, RRType.A, message_id=3)
        response = query.reply(
            answers=(
                a_record(NAME, IPAddress.parse("17.0.0.1")),
                a_record(NAME, IPAddress.parse("172.224.0.1")),
            ),
            authoritative=True,
            ecs_scope=None,
        )
        decoded = roundtrip(response)
        assert decoded.answer_addresses() == response.answer_addresses()
        assert decoded.authoritative
        assert decoded.is_response

    def test_aaaa_response(self):
        query = DnsMessage.query(NAME, RRType.AAAA, message_id=3)
        response = query.reply(
            answers=(aaaa_record(NAME, IPAddress.parse("2a02:26f7::1")),)
        )
        assert roundtrip(response).answer_addresses() == [
            IPAddress.parse("2a02:26f7::1")
        ]

    def test_nxdomain(self):
        query = DnsMessage.query(NAME, RRType.A)
        decoded = roundtrip(query.reply(rcode=Rcode.NXDOMAIN))
        assert decoded.rcode == Rcode.NXDOMAIN
        assert not decoded.answers

    def test_all_rcodes(self):
        for rcode in (Rcode.NOERROR, Rcode.FORMERR, Rcode.SERVFAIL,
                      Rcode.NXDOMAIN, Rcode.REFUSED):
            decoded = roundtrip(DnsMessage.query(NAME, RRType.A).reply(rcode=rcode))
            assert decoded.rcode == rcode

    def test_txt_record(self):
        rr = txt_record(NAME, "v=spf1", "-all")
        decoded = roundtrip(
            DnsMessage.query(NAME, RRType.TXT).reply(answers=(rr,))
        )
        assert decoded.answers[0].rdata == ("v=spf1", "-all")

    def test_cname_record(self):
        target = DnsName.parse("mask-alias.icloud.com")
        rr = ResourceRecord(NAME, RRType.CNAME, RRClass.IN, 300, target)
        decoded = roundtrip(DnsMessage.query(NAME, RRType.A).reply(answers=(rr,)))
        assert decoded.answers[0].rdata == target

    def test_soa_record(self):
        soa = SoaData(
            mname=DnsName.parse("ns1.icloud.com"),
            rname=DnsName.parse("hostmaster.icloud.com"),
            serial=2022050100,
        )
        rr = ResourceRecord(
            DnsName.parse("icloud.com"), RRType.SOA, RRClass.IN, 900, soa
        )
        message = DnsMessage(
            message_id=1,
            is_response=True,
            question=Question(NAME, RRType.A),
            authorities=(rr,),
        )
        decoded = roundtrip(message)
        assert decoded.authorities[0].rdata == soa

    def test_name_compression_shrinks_output(self):
        answers = tuple(
            a_record(NAME, IPAddress(4, (17 << 24) + i)) for i in range(8)
        )
        response = DnsMessage.query(NAME, RRType.A).reply(answers=answers)
        wire = encode_message(response)
        # With compression each extra record costs ~16 bytes, far less
        # than the 17-byte owner name repeated uncompressed.
        assert len(wire) < 12 + 21 + 8 * 17 + 40

    def test_flags_roundtrip(self):
        message = DnsMessage(
            message_id=11,
            is_response=True,
            opcode=Opcode.QUERY,
            authoritative=True,
            truncated=True,
            recursion_desired=False,
            recursion_available=True,
            rcode=Rcode.REFUSED,
            question=Question(NAME, RRType.A),
        )
        decoded = roundtrip(message)
        assert decoded.truncated
        assert not decoded.recursion_desired
        assert decoded.recursion_available


class TestWireErrors:
    def test_decode_empty(self):
        with pytest.raises(DnsWireError):
            decode_message(b"")

    def test_decode_truncated_header(self):
        with pytest.raises(DnsWireError):
            decode_message(b"\x00" * 11)

    def test_decode_truncated_question(self):
        message = DnsMessage.query(NAME, RRType.A)
        wire = encode_message(message)
        with pytest.raises(DnsWireError):
            decode_message(wire[:-3])

    def test_pointer_loop_rejected(self):
        # Header + a name that points at itself.
        header = (0).to_bytes(2, "big") + (0).to_bytes(2, "big") + (1).to_bytes(2, "big") + b"\x00" * 6
        loop_name = b"\xc0\x0c"  # pointer to offset 12 (itself)
        question = loop_name + (1).to_bytes(2, "big") + (1).to_bytes(2, "big")
        with pytest.raises(DnsWireError):
            decode_message(header + question)

    def test_decode_garbage(self):
        with pytest.raises(DnsWireError):
            decode_message(b"\xff" * 40)


# ----------------------------------------------------------------------
# Property: arbitrary response messages survive the wire
# ----------------------------------------------------------------------

names = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=10),
    min_size=1,
    max_size=4,
).map(lambda labels: DnsName(tuple(labels)))

v4_addresses = st.integers(min_value=0, max_value=(1 << 32) - 1).map(
    lambda v: IPAddress(4, v)
)


@given(
    names,
    st.lists(v4_addresses, min_size=0, max_size=8),
    st.integers(min_value=0, max_value=0xFFFF),
    st.sampled_from(list(Rcode)),
)
def test_response_roundtrip_property(name, addresses, message_id, rcode):
    query = DnsMessage.query(name, RRType.A, message_id=message_id)
    response = query.reply(
        rcode=rcode, answers=tuple(a_record(name, a) for a in addresses)
    )
    decoded = roundtrip(response)
    assert decoded.rcode == rcode
    assert decoded.message_id == message_id
    assert decoded.answer_addresses() == list(addresses)


@given(names, st.integers(min_value=0, max_value=32), st.integers(0, (1 << 32) - 1))
def test_ecs_query_roundtrip_property(name, source_len, value):
    subnet = Prefix.from_address(IPAddress(4, value), source_len)
    query = DnsMessage.query(name, RRType.A, ecs=subnet)
    decoded = roundtrip(query)
    assert decoded.client_subnet is not None
    assert decoded.client_subnet.source == subnet
