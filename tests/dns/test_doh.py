"""Tests for the RFC 8484 DoH framing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.doh import (
    DNS_MESSAGE_TYPE,
    DohClient,
    DohError,
    DohServer,
    HttpRequest,
    HttpResponse,
    decode_doh_request,
    decode_doh_response,
    encode_doh_get,
    encode_doh_post,
)
from repro.dns.message import DnsMessage, Rcode
from repro.dns.name import DnsName
from repro.dns.resolver import RecursiveResolver
from repro.dns.rr import RRType, a_record
from repro.dns.server import AuthoritativeServer, NameServerRegistry
from repro.dns.zone import Zone
from repro.netmodel.addr import IPAddress, Prefix

NAME = DnsName.parse("mask.icloud.com")


@pytest.fixture()
def doh_server():
    registry = NameServerRegistry()
    auth = AuthoritativeServer(IPAddress.parse("205.251.192.1"))
    zone = Zone("icloud.com.")
    zone.add_record(a_record(NAME, IPAddress.parse("17.0.0.1")))
    auth.add_zone(zone)
    registry.register(auth)
    resolver = RecursiveResolver(registry, IPAddress.parse("1.1.1.1"))
    return DohServer(resolver)


class TestFraming:
    def test_post_roundtrip(self):
        query = DnsMessage.query(NAME, RRType.A, message_id=1234)
        request = encode_doh_post(query)
        assert request.headers["content-type"] == DNS_MESSAGE_TYPE
        decoded = decode_doh_request(request)
        assert decoded.question == query.question
        # RFC 8484 §4.1: id zeroed for caching.
        assert decoded.message_id == 0

    def test_get_roundtrip(self):
        query = DnsMessage.query(NAME, RRType.AAAA)
        request = encode_doh_get(query)
        assert "dns=" in request.path
        assert "=" not in request.path.split("dns=")[1]  # unpadded base64url
        decoded = decode_doh_request(request)
        assert decoded.question == query.question

    def test_ecs_survives_framing(self):
        subnet = Prefix.parse("203.0.113.0/24")
        query = DnsMessage.query(NAME, RRType.A, ecs=subnet)
        decoded = decode_doh_request(encode_doh_post(query))
        assert decoded.client_subnet.source == subnet

    def test_bad_content_type(self):
        request = HttpRequest("POST", "/dns-query", {"content-type": "text/plain"})
        with pytest.raises(DohError):
            decode_doh_request(request)

    def test_bad_method(self):
        with pytest.raises(DohError):
            decode_doh_request(HttpRequest("PUT", "/dns-query"))

    def test_get_requires_dns_parameter(self):
        with pytest.raises(DohError):
            decode_doh_request(HttpRequest("GET", "/dns-query?other=1"))

    def test_get_wrong_path(self):
        with pytest.raises(DohError):
            decode_doh_request(HttpRequest("GET", "/resolve?dns=AAAA"))

    def test_response_decode_requires_ok(self):
        with pytest.raises(DohError):
            decode_doh_response(HttpResponse(status=500))

    def test_response_decode_requires_type(self):
        with pytest.raises(DohError):
            decode_doh_response(
                HttpResponse(status=200, headers={"content-type": "text/html"})
            )


class TestDohServer:
    def test_end_to_end_post(self, doh_server):
        client = DohClient(doh_server)
        answer = client.resolve(DnsMessage.query(NAME, RRType.A))
        assert answer.answer_addresses() == [IPAddress.parse("17.0.0.1")]
        assert doh_server.requests_served == 1

    def test_end_to_end_get(self, doh_server):
        client = DohClient(doh_server, use_get=True)
        answer = client.resolve(DnsMessage.query(NAME, RRType.A))
        assert answer.answer_addresses() == [IPAddress.parse("17.0.0.1")]

    def test_cache_control_from_ttl(self, doh_server):
        response = doh_server.handle(
            encode_doh_post(DnsMessage.query(NAME, RRType.A))
        )
        assert response.headers["cache-control"] == "max-age=60"

    def test_nxdomain_passes_through(self, doh_server):
        client = DohClient(doh_server)
        answer = client.resolve(DnsMessage.query("nothing.icloud.com", RRType.A))
        assert answer.rcode == Rcode.NXDOMAIN

    def test_garbage_body_is_400(self, doh_server):
        response = doh_server.handle(
            HttpRequest(
                "POST", "/dns-query",
                {"content-type": DNS_MESSAGE_TYPE},
                b"\xff\xff\xff",
            )
        )
        assert response.status == 400
        assert doh_server.bad_requests == 1

    def test_ecs_hint_reaches_resolver(self, doh_server):
        subnet = Prefix.parse("198.51.100.0/24")
        query = DnsMessage.query(NAME, RRType.A, ecs=subnet)
        response = doh_server.handle(encode_doh_post(query))
        assert response.ok


v4_values = st.integers(min_value=0, max_value=(1 << 32) - 1)


@given(v4_values, st.booleans())
def test_framing_roundtrip_property(value, use_get):
    subnet = Prefix.from_address(IPAddress(4, value), 24)
    query = DnsMessage.query(NAME, RRType.A, ecs=subnet)
    request = encode_doh_get(query) if use_get else encode_doh_post(query)
    decoded = decode_doh_request(request)
    assert decoded.question == query.question
    assert decoded.client_subnet.source == subnet
