"""TokenBucket refill boundaries, denial accounting and error paths."""

import pytest

from repro.dns.ratelimit import TokenBucket
from repro.errors import RateLimitExceeded
from repro.simtime import SimClock


def _bucket(rate=2.0, burst=4.0):
    clock = SimClock()
    return TokenBucket(rate, burst, clock), clock


class TestConstruction:
    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 4.0, SimClock())

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(-1.0, 4.0, SimClock())

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(2.0, 0.0, SimClock())

    def test_starts_full(self):
        bucket, _ = _bucket()
        assert bucket.tokens == 4.0


class TestRefillBoundaries:
    def test_exact_refill_instant(self):
        """Advancing by exactly count/rate seconds re-arms the bucket."""
        bucket, clock = _bucket(rate=2.0, burst=4.0)
        for _ in range(4):
            assert bucket.try_take()
        assert not bucket.try_take()
        clock.advance(0.5)  # exactly one token at 2 tokens/s
        assert bucket.tokens == 1.0
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        bucket, clock = _bucket(rate=2.0, burst=4.0)
        clock.advance(1000.0)
        assert bucket.tokens == 4.0

    def test_take_waits_exactly_the_deficit(self):
        bucket, clock = _bucket(rate=2.0, burst=4.0)
        for _ in range(4):
            assert bucket.take() == 0.0
        before = clock.now
        waited = bucket.take()
        assert waited == 0.5  # (1 - 0) / rate
        assert clock.now == before + waited
        assert bucket.total_waited == 0.5

    def test_take_many_replays_individual_takes(self):
        many, many_clock = _bucket(rate=2.2, burst=10.0)
        single, single_clock = _bucket(rate=2.2, burst=10.0)
        total = many.take_many(500)
        waited = sum(single.take() for _ in range(500))
        assert total == waited
        assert many_clock.now == single_clock.now
        assert many.total_waited == single.total_waited
        assert many.tokens == single.tokens


class TestDenialAccounting:
    def test_denied_counts_only_failed_try_takes(self):
        bucket, clock = _bucket(rate=1.0, burst=2.0)
        assert bucket.denied == 0
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()
        assert not bucket.try_take()
        assert bucket.denied == 2
        clock.advance(1.0)
        assert bucket.try_take()
        assert bucket.denied == 2  # successes never touch the counter

    def test_blocking_take_never_counts_as_denial(self):
        bucket, _ = _bucket(rate=1.0, burst=1.0)
        for _ in range(5):
            bucket.take()
        assert bucket.denied == 0


class TestErrors:
    def test_take_beyond_burst_raises(self):
        bucket, _ = _bucket(rate=2.0, burst=4.0)
        with pytest.raises(RateLimitExceeded):
            bucket.take(5.0)
        with pytest.raises(RateLimitExceeded):
            bucket.try_take(5.0)

    def test_oversized_request_leaves_state_untouched(self):
        bucket, _ = _bucket(rate=2.0, burst=4.0)
        with pytest.raises(RateLimitExceeded):
            bucket.take(100.0)
        assert bucket.tokens == 4.0
        assert bucket.denied == 0
        assert bucket.total_waited == 0.0
