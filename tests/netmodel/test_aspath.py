"""Tests for the AS-relationship graph and valley-free routing."""

import pytest

from repro.errors import RoutingError
from repro.netmodel.aspath import ASGraph, AsPath, PathLoad


def simple_hierarchy() -> ASGraph:
    """Two tier-1 peers, two regionals, four stubs.

        T1 ──── T2        (peer)
        /\\       /\\
      R1  \\    R2 \\
      /\\   \\   /\\  \\
     A  B    C D  E  F   (customers)
    """
    graph = ASGraph()
    graph.add_peer(101, 102)
    graph.add_customer(101, 201)  # R1
    graph.add_customer(102, 202)  # R2
    graph.add_customer(201, 1)    # A
    graph.add_customer(201, 2)    # B
    graph.add_customer(101, 3)    # C directly on T1
    graph.add_customer(202, 4)    # D
    graph.add_customer(102, 5)    # E directly on T2
    graph.add_customer(102, 6)    # F
    return graph


class TestASGraphStructure:
    def test_relationship_bookkeeping(self):
        graph = simple_hierarchy()
        assert graph.providers_of(1) == {201}
        assert graph.customers_of(201) == {1, 2}
        assert graph.peers_of(101) == {102}
        assert graph.degree(101) == 3  # one peer + two customers

    def test_self_relationships_rejected(self):
        graph = ASGraph()
        with pytest.raises(RoutingError):
            graph.add_customer(1, 1)
        with pytest.raises(RoutingError):
            graph.add_peer(2, 2)

    def test_mutual_provider_rejected(self):
        graph = ASGraph()
        graph.add_customer(1, 2)
        with pytest.raises(RoutingError):
            graph.add_customer(2, 1)

    def test_contains_and_len(self):
        graph = simple_hierarchy()
        assert 201 in graph
        assert 999 not in graph
        assert len(graph) == 10


class TestValleyFreePaths:
    def test_same_as(self):
        graph = simple_hierarchy()
        assert graph.best_path(1, 1) == AsPath((1,))

    def test_sibling_via_shared_provider(self):
        graph = simple_hierarchy()
        assert graph.best_path(1, 2) == AsPath((1, 201, 2))

    def test_cross_hierarchy_via_peering(self):
        graph = simple_hierarchy()
        path = graph.best_path(1, 4)
        assert path == AsPath((1, 201, 101, 102, 202, 4))

    def test_unknown_as_rejected(self):
        graph = simple_hierarchy()
        with pytest.raises(RoutingError):
            graph.best_path(1, 999)

    def test_valley_forbidden(self):
        # A provider cannot reach one customer's sibling via another
        # customer's provider chain that would create a valley: build a
        # topology where the only physical connection is a valley.
        graph = ASGraph()
        graph.add_customer(10, 1)  # 1 is customer of 10
        graph.add_customer(20, 1)  # 1 is also customer of 20
        # 10 -> 1 -> 20 would be customer->up? From 10, step to customer 1
        # (down phase); from 1 up to 20 is forbidden after going down.
        assert graph.best_path(10, 20) is None

    def test_peer_then_peer_forbidden(self):
        graph = ASGraph()
        graph.add_peer(1, 2)
        graph.add_peer(2, 3)
        # Crossing two peer links violates valley-freeness.
        assert graph.best_path(1, 3) is None

    def test_up_peer_down_allowed(self):
        graph = ASGraph()
        graph.add_customer(10, 1)
        graph.add_peer(10, 20)
        graph.add_customer(20, 2)
        assert graph.best_path(1, 2) == AsPath((1, 10, 20, 2))

    def test_shortest_wins(self):
        graph = simple_hierarchy()
        # C sits directly on T1: its path to A goes down through R1.
        assert graph.best_path(3, 1) == AsPath((3, 101, 201, 1))

    def test_deterministic_tiebreak(self):
        graph = ASGraph()
        graph.add_customer(50, 1)
        graph.add_customer(40, 1)
        graph.add_customer(50, 2)
        graph.add_customer(40, 2)
        # Both 40 and 50 give 3-AS paths; the smaller sequence wins.
        assert graph.best_path(1, 2) == AsPath((1, 40, 2))

    def test_reachable(self):
        graph = simple_hierarchy()
        assert graph.reachable(1, 6)
        graph2 = ASGraph()
        graph2.add_peer(1, 2)
        graph2.add_peer(3, 4)
        assert not graph2.reachable(1, 3)


class TestPathLoad:
    def test_transit_shares_and_bottleneck(self):
        load = PathLoad()
        load.add(AsPath((1, 201, 101, 714)))
        load.add(AsPath((2, 201, 101, 714)))
        load.add(AsPath((3, 202, 102, 714)))
        shares = load.transit_shares()
        assert shares[201] == pytest.approx(2 / 3)
        assert shares[101] == pytest.approx(2 / 3)
        bottleneck = load.bottleneck()
        assert bottleneck is not None
        assert bottleneck[1] == pytest.approx(2 / 3)

    def test_average_hops(self):
        load = PathLoad()
        load.add(AsPath((1, 2)))
        load.add(AsPath((1, 2, 3, 4)))
        assert load.average_hops() == 2.0

    def test_empty(self):
        load = PathLoad()
        assert load.transit_shares() == {}
        assert load.bottleneck() is None
        assert load.average_hops() == 0.0


class TestWorldAsGraph:
    def test_relay_as_single_peer(self, tiny_world):
        # The paper: AS36183 has one publicly visible peering link, to
        # Akamai's AS20940.
        assert tiny_world.as_graph.peers_of(36183) == {20940}

    def test_clients_reach_both_ingress_operators(self, tiny_world):
        graph = tiny_world.as_graph
        for client in tiny_world.ground.client_ases[:40]:
            assert graph.reachable(client.asys.number, 714)
            assert graph.reachable(client.asys.number, 36183)

    def test_vantage_reaches_relay(self, tiny_world):
        path = tiny_world.as_graph.best_path(64496, 36183)
        assert path is not None
        assert path.hops >= 2  # through regional transit and a tier-1

    def test_operators_multihomed(self, tiny_world):
        graph = tiny_world.as_graph
        for asn in (714, 36183, 13335, 54113):
            assert len(graph.providers_of(asn)) == 3
