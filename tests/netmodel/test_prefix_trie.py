"""Tests for repro.netmodel.prefix_trie."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.prefix_trie import DualStackTrie, PrefixTrie


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestPrefixTrie:
    def test_insert_and_exact(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.0.0.0/8"), "a")
        assert trie.exact(p("10.0.0.0/8")) == "a"
        assert trie.exact(p("10.0.0.0/16")) is None

    def test_longest_prefix_match(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.0.0.0/8"), "short")
        trie.insert(p("10.1.0.0/16"), "long")
        hit = trie.lookup(IPAddress.parse("10.1.2.3"))
        assert hit == (p("10.1.0.0/16"), "long")
        hit = trie.lookup(IPAddress.parse("10.2.2.3"))
        assert hit == (p("10.0.0.0/8"), "short")

    def test_lookup_miss(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.0.0.0/8"), "a")
        assert trie.lookup(IPAddress.parse("11.0.0.1")) is None

    def test_default_route(self):
        trie = PrefixTrie(4)
        trie.insert(p("0.0.0.0/0"), "default")
        assert trie.lookup(IPAddress.parse("8.8.8.8")) == (p("0.0.0.0/0"), "default")

    def test_replace_value(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.0.0.0/8"), "a")
        trie.insert(p("10.0.0.0/8"), "b")
        assert trie.exact(p("10.0.0.0/8")) == "b"
        assert len(trie) == 1

    def test_remove(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.0.0.0/8"), "a")
        assert trie.remove(p("10.0.0.0/8"))
        assert not trie.remove(p("10.0.0.0/8"))
        assert trie.lookup(IPAddress.parse("10.0.0.1")) is None
        assert len(trie) == 0

    def test_remove_missing_deep(self):
        trie = PrefixTrie(4)
        assert not trie.remove(p("10.0.0.0/24"))

    def test_covering_requires_full_containment(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.0.0.0/16"), "a")
        assert trie.covering(p("10.0.1.0/24")) == (p("10.0.0.0/16"), "a")
        # The /8 is wider than the stored /16: no entry covers it fully.
        assert trie.covering(p("10.0.0.0/8")) is None

    def test_covering_exact(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.0.0.0/16"), "a")
        assert trie.covering(p("10.0.0.0/16")) == (p("10.0.0.0/16"), "a")

    def test_version_checks(self):
        trie = PrefixTrie(4)
        with pytest.raises(AddressError):
            trie.insert(p("2001:db8::/32"), "x")
        with pytest.raises(AddressError):
            trie.lookup(IPAddress.parse("::1"))

    def test_items_roundtrip(self):
        trie = PrefixTrie(4)
        inserted = {p("10.0.0.0/8"): 1, p("10.1.0.0/16"): 2, p("192.0.2.0/24"): 3}
        for prefix, value in inserted.items():
            trie.insert(prefix, value)
        assert dict(trie.items()) == inserted

    def test_v6_lookup(self):
        trie = PrefixTrie(6)
        trie.insert(p("2001:db8::/32"), "doc")
        hit = trie.lookup(IPAddress.parse("2001:db8::42"))
        assert hit == (p("2001:db8::/32"), "doc")

    def test_bad_version_construction(self):
        with pytest.raises(AddressError):
            PrefixTrie(7)


class TestDualStackTrie:
    def test_routes_by_version(self):
        trie = DualStackTrie()
        trie.insert(p("10.0.0.0/8"), "v4")
        trie.insert(p("2001:db8::/32"), "v6")
        assert trie.lookup(IPAddress.parse("10.1.1.1"))[1] == "v4"
        assert trie.lookup(IPAddress.parse("2001:db8::1"))[1] == "v6"
        assert len(trie) == 2

    def test_items_spans_versions(self):
        trie = DualStackTrie()
        trie.insert(p("10.0.0.0/8"), "v4")
        trie.insert(p("2001:db8::/32"), "v6")
        assert len(list(trie.items())) == 2

    def test_remove(self):
        trie = DualStackTrie()
        trie.insert(p("10.0.0.0/8"), "v4")
        assert trie.remove(p("10.0.0.0/8"))
        assert len(trie) == 0


# ----------------------------------------------------------------------
# Property: trie agrees with brute-force longest-prefix match
# ----------------------------------------------------------------------

prefix_strategy = st.tuples(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
).map(lambda t: Prefix.from_address(IPAddress(4, t[0]), t[1]))


@given(st.lists(prefix_strategy, min_size=1, max_size=40), st.integers(0, (1 << 32) - 1))
def test_trie_matches_bruteforce(prefixes, probe_value):
    trie = PrefixTrie(4)
    table = {}
    for i, prefix in enumerate(prefixes):
        trie.insert(prefix, i)
        table[prefix] = i  # later insert wins, as in the trie
    expected = None
    for prefix, value in table.items():
        if prefix.contains_value(probe_value):
            if expected is None or prefix.length > expected[0].length:
                expected = (prefix, value)
    result = trie.lookup_value(probe_value)
    if expected is None:
        assert result is None
    else:
        assert result == expected
