"""Tests for repro.netmodel.asn and repro.netmodel.bgp."""

import pytest

from repro.errors import RoutingError
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.asn import (
    ASRegistry,
    AutonomousSystem,
    WellKnownAS,
    operator_name,
)
from repro.netmodel.bgp import BgpHistory, RoutingTable


class TestWellKnownAS:
    def test_numbers_match_paper(self):
        assert WellKnownAS.APPLE == 714
        assert WellKnownAS.AKAMAI_PR == 36183
        assert WellKnownAS.AKAMAI_EG == 20940
        assert WellKnownAS.CLOUDFLARE == 13335
        assert WellKnownAS.FASTLY == 54113

    def test_operator_names(self):
        assert operator_name(714) == "Apple"
        assert operator_name(36183) == "Akamai_PR"
        assert operator_name(99999) == "AS99999"


class TestASRegistry:
    def test_register_and_get(self):
        registry = ASRegistry()
        asys = registry.register(AutonomousSystem(714, "Apple", "US"))
        assert registry.get(714) is asys
        assert 714 in registry
        assert len(registry) == 1

    def test_register_duplicate_fails(self):
        registry = ASRegistry()
        registry.register(AutonomousSystem(714, "Apple"))
        with pytest.raises(RoutingError):
            registry.register(AutonomousSystem(714, "Apple2"))

    def test_get_unknown_fails(self):
        with pytest.raises(RoutingError):
            ASRegistry().get(1)

    def test_ensure_is_idempotent(self):
        registry = ASRegistry()
        a = registry.ensure(100, "x")
        b = registry.ensure(100, "y")
        assert a is b
        assert a.name == "x"

    def test_bad_as_number(self):
        with pytest.raises(RoutingError):
            AutonomousSystem(0, "zero")
        with pytest.raises(RoutingError):
            AutonomousSystem(2**32, "big")

    def test_prefixes_by_version(self):
        asys = AutonomousSystem(100, "x")
        asys.add_prefix(Prefix.parse("10.0.0.0/8"))
        asys.add_prefix(Prefix.parse("2001:db8::/32"))
        assert len(asys.prefixes_v(4)) == 1
        assert len(asys.prefixes_v(6)) == 1

    def test_numbers_sorted(self):
        registry = ASRegistry()
        registry.ensure(5)
        registry.ensure(2)
        assert registry.numbers() == [2, 5]


class TestRoutingTable:
    def test_announce_and_lookup(self):
        table = RoutingTable()
        table.announce(Prefix.parse("10.0.0.0/8"), 100)
        assert table.origin_of(IPAddress.parse("10.1.2.3")) == 100
        assert table.origin_of(IPAddress.parse("11.0.0.1")) is None

    def test_longest_match_wins(self):
        table = RoutingTable()
        table.announce(Prefix.parse("10.0.0.0/8"), 100)
        table.announce(Prefix.parse("10.1.0.0/16"), 200)
        assert table.origin_of(IPAddress.parse("10.1.0.1")) == 200
        assert table.routed_prefix_of(IPAddress.parse("10.1.0.1")) == Prefix.parse(
            "10.1.0.0/16"
        )

    def test_conflicting_origin_rejected(self):
        table = RoutingTable()
        table.announce(Prefix.parse("10.0.0.0/8"), 100)
        with pytest.raises(RoutingError):
            table.announce(Prefix.parse("10.0.0.0/8"), 200)

    def test_same_origin_reannounce_ok(self):
        table = RoutingTable()
        first = table.announce(Prefix.parse("10.0.0.0/8"), 100)
        second = table.announce(Prefix.parse("10.0.0.0/8"), 100)
        assert first is second
        assert len(table) == 1

    def test_withdraw(self):
        table = RoutingTable()
        table.announce(Prefix.parse("10.0.0.0/8"), 100)
        assert table.withdraw(Prefix.parse("10.0.0.0/8"))
        assert not table.withdraw(Prefix.parse("10.0.0.0/8"))
        assert table.origin_of(IPAddress.parse("10.0.0.1")) is None
        assert table.prefixes_by_origin(100) == []

    def test_is_routed(self):
        table = RoutingTable()
        table.announce(Prefix.parse("10.0.0.0/8"), 100)
        assert table.is_routed(IPAddress.parse("10.0.0.1"))
        assert not table.is_routed(IPAddress.parse("192.0.2.1"))

    def test_covering_route(self):
        table = RoutingTable()
        table.announce(Prefix.parse("10.0.0.0/8"), 100)
        ann = table.covering_route(Prefix.parse("10.5.0.0/16"))
        assert ann is not None and ann.origin_asn == 100
        assert table.covering_route(Prefix.parse("11.0.0.0/16")) is None

    def test_prefixes_by_origin_version_filter(self):
        table = RoutingTable()
        table.announce(Prefix.parse("10.0.0.0/8"), 100)
        table.announce(Prefix.parse("2001:db8::/32"), 100)
        assert table.prefixes_by_origin(100, version=4) == [Prefix.parse("10.0.0.0/8")]
        assert table.prefixes_by_origin(100, version=6) == [
            Prefix.parse("2001:db8::/32")
        ]

    def test_origins(self):
        table = RoutingTable()
        table.announce(Prefix.parse("10.0.0.0/8"), 100)
        table.announce(Prefix.parse("11.0.0.0/8"), 200)
        assert table.origins() == {100, 200}

    def test_routed_v4_prefixes_excludes_v6(self):
        table = RoutingTable()
        table.announce(Prefix.parse("10.0.0.0/8"), 100)
        table.announce(Prefix.parse("2001:db8::/32"), 100)
        assert table.routed_v4_prefixes() == [Prefix.parse("10.0.0.0/8")]


class TestBgpHistory:
    def test_first_occurrence(self):
        history = BgpHistory()
        history.record_origins(2021, 5, {100})
        history.record_origins(2021, 6, {100, 36183})
        history.record_origins(2021, 7, {100, 36183})
        assert history.first_occurrence(36183) == (2021, 6)
        assert history.first_occurrence(100) == (2021, 5)
        assert history.first_occurrence(999) is None

    def test_months_chronological(self):
        history = BgpHistory()
        history.record_origins(2022, 1, set())
        history.record_origins(2016, 1, set())
        assert history.months() == [(2016, 1), (2022, 1)]

    def test_visible_in(self):
        history = BgpHistory()
        history.record_origins(2020, 3, {1, 2})
        assert history.visible_in(2020, 3) == {1, 2}
        assert history.visible_in(2020, 4) == set()

    def test_record_from_table(self):
        table = RoutingTable()
        table.announce(Prefix.parse("10.0.0.0/8"), 42)
        history = BgpHistory()
        history.record(2020, 1, table, keep_table=True)
        assert history.visible_in(2020, 1) == {42}
        assert history.table_for(2020, 1) is table
        assert history.table_for(2020, 2) is None

    def test_visibility_series(self):
        history = BgpHistory()
        history.record_origins(2021, 5, {1})
        history.record_origins(2021, 6, {1, 2})
        series = history.visibility_series(2)
        assert series == [("2021-05", False), ("2021-06", True)]
