"""Tests for repro.netmodel.topology and traceroute."""

import pytest

from repro.errors import TopologyError
from repro.netmodel.addr import IPAddress
from repro.netmodel.topology import Router, Topology
from repro.netmodel.traceroute import traceroute


def build_line_topology() -> Topology:
    """vantage -- t1 -- t2 -- edge, host behind edge."""
    topo = Topology()
    for name, asn, ip in (
        ("vantage", 64496, "192.0.2.1"),
        ("t1", 3356, "192.0.2.2"),
        ("t2", 3356, "192.0.2.3"),
        ("edge", 36183, "192.0.2.4"),
    ):
        topo.add_router(Router(name, asn, IPAddress.parse(ip)))
    topo.add_link("vantage", "t1", 2.0)
    topo.add_link("t1", "t2", 5.0)
    topo.add_link("t2", "edge", 1.0)
    topo.attach_host(IPAddress.parse("172.224.0.1"), "edge")
    return topo


class TestTopology:
    def test_duplicate_router_rejected(self):
        topo = Topology()
        topo.add_router(Router("r", 1, IPAddress.parse("10.0.0.1")))
        with pytest.raises(TopologyError):
            topo.add_router(Router("r", 2, IPAddress.parse("10.0.0.2")))

    def test_unknown_router(self):
        with pytest.raises(TopologyError):
            Topology().router("nope")

    def test_link_requires_routers(self):
        topo = Topology()
        topo.add_router(Router("a", 1, IPAddress.parse("10.0.0.1")))
        with pytest.raises(TopologyError):
            topo.add_link("a", "b")

    def test_self_link_rejected(self):
        topo = Topology()
        topo.add_router(Router("a", 1, IPAddress.parse("10.0.0.1")))
        with pytest.raises(TopologyError):
            topo.add_link("a", "a")

    def test_nonpositive_latency_rejected(self):
        topo = Topology()
        topo.add_router(Router("a", 1, IPAddress.parse("10.0.0.1")))
        topo.add_router(Router("b", 1, IPAddress.parse("10.0.0.2")))
        with pytest.raises(TopologyError):
            topo.add_link("a", "b", 0.0)

    def test_host_attachment(self):
        topo = build_line_topology()
        host = IPAddress.parse("172.224.0.1")
        assert topo.has_host(host)
        assert topo.host_router(host).router_id == "edge"

    def test_detach_host(self):
        topo = build_line_topology()
        host = IPAddress.parse("172.224.0.1")
        topo.detach_host(host)
        assert not topo.has_host(host)
        with pytest.raises(TopologyError):
            topo.host_router(host)

    def test_router_path(self):
        topo = build_line_topology()
        path = topo.router_path("vantage", "edge")
        assert [r.router_id for r in path] == ["vantage", "t1", "t2", "edge"]

    def test_path_latency(self):
        topo = build_line_topology()
        path = topo.router_path("vantage", "edge")
        assert topo.path_latency_ms(path) == 8.0

    def test_no_path(self):
        topo = build_line_topology()
        topo.add_router(Router("island", 9, IPAddress.parse("10.9.9.9")))
        with pytest.raises(TopologyError):
            topo.router_path("vantage", "island")

    def test_shortest_path_by_latency(self):
        topo = build_line_topology()
        # Add a shortcut with lower total latency.
        topo.add_router(Router("fast", 3356, IPAddress.parse("192.0.2.9")))
        topo.add_link("vantage", "fast", 1.0)
        topo.add_link("fast", "edge", 1.0)
        path = topo.router_path("vantage", "edge")
        assert [r.router_id for r in path] == ["vantage", "fast", "edge"]


class TestTraceroute:
    def test_hops_exclude_vantage(self):
        topo = build_line_topology()
        result = traceroute(topo, "vantage", IPAddress.parse("172.224.0.1"))
        assert [h.address for h in result.hops] == [
            IPAddress.parse("192.0.2.2"),
            IPAddress.parse("192.0.2.3"),
            IPAddress.parse("192.0.2.4"),
        ]
        assert result.last_hop.asn == 36183

    def test_ttl_sequence(self):
        topo = build_line_topology()
        result = traceroute(topo, "vantage", IPAddress.parse("172.224.0.1"))
        assert [h.ttl for h in result.hops] == [1, 2, 3]

    def test_rtt_monotonic(self):
        topo = build_line_topology()
        result = traceroute(topo, "vantage", IPAddress.parse("172.224.0.1"))
        rtts = [h.rtt_ms for h in result.hops]
        assert rtts == sorted(rtts)
        assert rtts[-1] == 16.0  # 2 * (2 + 5 + 1)

    def test_shared_last_hop_detection(self):
        topo = build_line_topology()
        second = IPAddress.parse("172.232.0.1")
        topo.attach_host(second, "edge")
        a = traceroute(topo, "vantage", IPAddress.parse("172.224.0.1"))
        b = traceroute(topo, "vantage", second)
        assert a.shares_last_hop_with(b)

    def test_distinct_last_hops(self):
        topo = build_line_topology()
        topo.add_router(Router("other", 13335, IPAddress.parse("192.0.2.8")))
        topo.add_link("t2", "other", 1.0)
        second = IPAddress.parse("104.16.0.1")
        topo.attach_host(second, "other")
        a = traceroute(topo, "vantage", IPAddress.parse("172.224.0.1"))
        b = traceroute(topo, "vantage", second)
        assert not a.shares_last_hop_with(b)

    def test_host_behind_vantage(self):
        topo = build_line_topology()
        local = IPAddress.parse("192.0.2.200")
        topo.attach_host(local, "vantage")
        result = traceroute(topo, "vantage", local)
        assert len(result.hops) == 1
        assert result.last_hop.address == IPAddress.parse("192.0.2.1")

    def test_unattached_destination(self):
        topo = build_line_topology()
        with pytest.raises(TopologyError):
            traceroute(topo, "vantage", IPAddress.parse("8.8.8.8"))
