"""Tests for repro.netmodel.addr."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.netmodel.addr import IPAddress, Prefix, summarize_covered_slash24s


class TestIPAddress:
    def test_parse_v4(self):
        addr = IPAddress.parse("203.0.113.7")
        assert addr.version == 4
        assert addr.value == (203 << 24) | (0 << 16) | (113 << 8) | 7

    def test_parse_v6(self):
        addr = IPAddress.parse("2001:db8::1")
        assert addr.version == 6
        assert addr.value == (0x20010DB8 << 96) | 1

    def test_parse_rejects_garbage(self):
        with pytest.raises(AddressError):
            IPAddress.parse("not-an-ip")

    def test_parse_rejects_overflow_octet(self):
        with pytest.raises(AddressError):
            IPAddress.parse("256.1.1.1")

    def test_str_roundtrip_v4(self):
        assert str(IPAddress.parse("192.0.2.1")) == "192.0.2.1"

    def test_str_roundtrip_v6(self):
        assert str(IPAddress.parse("2001:db8::1")) == "2001:db8::1"

    def test_value_out_of_range(self):
        with pytest.raises(AddressError):
            IPAddress(4, 1 << 32)

    def test_negative_value(self):
        with pytest.raises(AddressError):
            IPAddress(4, -1)

    def test_bad_version(self):
        with pytest.raises(AddressError):
            IPAddress(5, 1)

    def test_bits(self):
        assert IPAddress.parse("1.2.3.4").bits == 32
        assert IPAddress.parse("::1").bits == 128

    def test_packed_roundtrip_v4(self):
        addr = IPAddress.parse("10.20.30.40")
        assert IPAddress.from_packed(addr.packed()) == addr
        assert len(addr.packed()) == 4

    def test_packed_roundtrip_v6(self):
        addr = IPAddress.parse("2001:db8::42")
        assert IPAddress.from_packed(addr.packed()) == addr
        assert len(addr.packed()) == 16

    def test_from_packed_bad_length(self):
        with pytest.raises(AddressError):
            IPAddress.from_packed(b"\x01\x02\x03")

    def test_ordering(self):
        a = IPAddress.parse("1.0.0.1")
        b = IPAddress.parse("1.0.0.2")
        assert a < b

    def test_to_prefix_host(self):
        assert IPAddress.parse("1.2.3.4").to_prefix() == Prefix.parse("1.2.3.4/32")

    def test_to_prefix_truncates(self):
        assert IPAddress.parse("1.2.3.4").to_prefix(24) == Prefix.parse("1.2.3.0/24")


class TestPrefix:
    def test_parse(self):
        prefix = Prefix.parse("198.51.100.0/24")
        assert prefix.length == 24
        assert str(prefix) == "198.51.100.0/24"

    def test_parse_rejects_host_bits(self):
        with pytest.raises(AddressError):
            Prefix.parse("198.51.100.1/24")

    def test_constructor_rejects_host_bits(self):
        with pytest.raises(AddressError):
            Prefix(4, 1, 24)

    def test_length_out_of_range(self):
        with pytest.raises(AddressError):
            Prefix(4, 0, 33)

    def test_num_addresses(self):
        assert Prefix.parse("10.0.0.0/24").num_addresses() == 256
        assert Prefix.parse("10.0.0.0/31").num_addresses() == 2

    def test_contains_address(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains_address(IPAddress.parse("10.255.0.1"))
        assert not prefix.contains_address(IPAddress.parse("11.0.0.1"))

    def test_contains_address_version_mismatch(self):
        assert not Prefix.parse("10.0.0.0/8").contains_address(
            IPAddress.parse("::1")
        )

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_truncate(self):
        assert Prefix.parse("10.1.2.0/24").truncate(16) == Prefix.parse("10.1.0.0/16")

    def test_truncate_longer_fails(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0/16").truncate(24)

    def test_subnets(self):
        subs = list(Prefix.parse("10.0.0.0/22").subnets(24))
        assert len(subs) == 4
        assert subs[0] == Prefix.parse("10.0.0.0/24")
        assert subs[-1] == Prefix.parse("10.0.3.0/24")

    def test_subnets_shorter_fails(self):
        with pytest.raises(AddressError):
            list(Prefix.parse("10.0.0.0/24").subnets(16))

    def test_count_subnets(self):
        assert Prefix.parse("10.0.0.0/16").count_subnets(24) == 256

    def test_address_at(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert prefix.address_at(0) == IPAddress.parse("192.0.2.0")
        assert prefix.address_at(255) == IPAddress.parse("192.0.2.255")

    def test_address_at_out_of_range(self):
        with pytest.raises(AddressError):
            Prefix.parse("192.0.2.0/24").address_at(256)

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.5.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_broadcast_value(self):
        prefix = Prefix.parse("10.0.0.0/24")
        assert prefix.broadcast_value == prefix.value + 255

    def test_v6_subnet_mask(self):
        prefix = Prefix.parse("2001:db8::/64")
        assert prefix.num_addresses() == 1 << 64

    def test_ipv6_zero_length(self):
        prefix = Prefix.parse("::/0")
        assert prefix.num_addresses() == 1 << 128


class TestSlash24Summary:
    def test_counts_disjoint(self):
        prefixes = [Prefix.parse("10.0.0.0/24"), Prefix.parse("10.0.1.0/24")]
        assert summarize_covered_slash24s(prefixes) == 2

    def test_longer_than_24_counts_one(self):
        prefixes = [Prefix.parse("10.0.0.0/30"), Prefix.parse("10.0.0.128/25")]
        assert summarize_covered_slash24s(prefixes) == 1

    def test_overlap_not_double_counted(self):
        prefixes = [Prefix.parse("10.0.0.0/16"), Prefix.parse("10.0.5.0/24")]
        assert summarize_covered_slash24s(prefixes) == 256

    def test_large_span_merging(self):
        prefixes = [Prefix.parse("10.0.0.0/8"), Prefix.parse("11.0.0.0/8")]
        assert summarize_covered_slash24s(prefixes) == 2 * 65536

    def test_small_inside_large_span(self):
        prefixes = [Prefix.parse("10.0.0.0/8"), Prefix.parse("10.1.2.0/24")]
        assert summarize_covered_slash24s(prefixes) == 65536

    def test_rejects_v6(self):
        with pytest.raises(AddressError):
            summarize_covered_slash24s([Prefix.parse("2001:db8::/64")])


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------

v4_values = st.integers(min_value=0, max_value=(1 << 32) - 1)
v6_values = st.integers(min_value=0, max_value=(1 << 128) - 1)


@given(v4_values)
def test_v4_text_roundtrip(value):
    addr = IPAddress(4, value)
    assert IPAddress.parse(str(addr)) == addr


@given(v6_values)
def test_v6_packed_roundtrip(value):
    addr = IPAddress(6, value)
    assert IPAddress.from_packed(addr.packed()) == addr


@given(v4_values, st.integers(min_value=0, max_value=32))
def test_prefix_contains_its_addresses(value, length):
    prefix = Prefix.from_address(IPAddress(4, value), length)
    assert prefix.contains_value(prefix.value)
    assert prefix.contains_value(prefix.broadcast_value)
    assert prefix.contains_address(IPAddress(4, value))


@given(v4_values, st.integers(min_value=8, max_value=32))
def test_truncate_is_monotone(value, length):
    prefix = Prefix.from_address(IPAddress(4, value), length)
    shorter = prefix.truncate(length - 8)
    assert shorter.contains_prefix(prefix)


@given(v4_values, st.integers(min_value=16, max_value=24))
def test_subnet_count_matches_iteration(value, length):
    prefix = Prefix.from_address(IPAddress(4, value), length)
    subs = list(prefix.subnets(24))
    assert len(subs) == prefix.count_subnets(24)
    assert all(prefix.contains_prefix(s) for s in subs)
    assert len({s.value for s in subs}) == len(subs)
