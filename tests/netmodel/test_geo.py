"""Tests for repro.netmodel.geo, geodb, and population."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MeasurementError, WorldGenError
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.geo import REGIONS, Gazetteer, GeoPoint
from repro.netmodel.geodb import GeoDatabase, GeoRecord
from repro.netmodel.population import ASPopulationDataset


class TestGeoPoint:
    def test_valid(self):
        point = GeoPoint(48.15, 11.57)
        assert point.lat == 48.15

    def test_latitude_bounds(self):
        with pytest.raises(WorldGenError):
            GeoPoint(91.0, 0.0)

    def test_longitude_bounds(self):
        with pytest.raises(WorldGenError):
            GeoPoint(0.0, -181.0)

    def test_distance_zero(self):
        point = GeoPoint(10.0, 10.0)
        assert point.distance_km(point) == 0.0

    def test_distance_known(self):
        munich = GeoPoint(48.137, 11.575)
        berlin = GeoPoint(52.52, 13.405)
        distance = munich.distance_km(berlin)
        assert 480 < distance < 520  # ~504 km

    def test_distance_symmetric(self):
        a = GeoPoint(10.0, 20.0)
        b = GeoPoint(-30.0, 100.0)
        assert math.isclose(a.distance_km(b), b.distance_km(a))


class TestGazetteer:
    @pytest.fixture(scope="class")
    def gaz(self):
        return Gazetteer(seed=7, num_countries=60, cities_per_country=(2, 50))

    def test_country_count(self, gaz):
        assert len(gaz.country_codes) == 60

    def test_us_first(self, gaz):
        assert gaz.country_codes[0] == "US"

    def test_codes_unique(self, gaz):
        assert len(set(gaz.country_codes)) == 60

    def test_regions_valid(self, gaz):
        for code in gaz.country_codes:
            assert gaz.region_of(code) in REGIONS

    def test_de_is_eu(self, gaz):
        assert gaz.region_of("DE") == "EU"

    def test_unknown_country(self, gaz):
        with pytest.raises(WorldGenError):
            gaz.region_of("!!")

    def test_cities_decay_with_rank(self, gaz):
        first = len(gaz.cities_in(gaz.country_codes[0]))
        last = len(gaz.cities_in(gaz.country_codes[-1]))
        assert first > last

    def test_city_lookup(self, gaz):
        city = gaz.cities_in("US")[0]
        assert gaz.city("US", city.name) is city
        assert gaz.city("US", "no-such-city") is None

    def test_city_country_matches(self, gaz):
        for city in gaz.cities_in("DE"):
            assert city.country == "DE"

    def test_deterministic(self):
        a = Gazetteer(seed=3, num_countries=55)
        b = Gazetteer(seed=3, num_countries=55)
        assert a.country_codes == b.country_codes

    def test_too_few_countries(self):
        with pytest.raises(WorldGenError):
            Gazetteer(seed=1, num_countries=3)

    def test_all_cities(self, gaz):
        total = sum(len(gaz.cities_in(c)) for c in gaz.country_codes)
        assert len(gaz.all_cities()) == total


class TestGeoDatabase:
    def test_lookup(self):
        db = GeoDatabase()
        record = GeoRecord("US", "US-City-000", None, "egress-list")
        db.add(Prefix.parse("172.224.0.0/16"), record)
        assert db.lookup(IPAddress.parse("172.224.1.1")) is record
        assert db.lookup(IPAddress.parse("10.0.0.1")) is None

    def test_lookup_prefix_covering(self):
        db = GeoDatabase()
        record = GeoRecord("DE", None, None)
        db.add(Prefix.parse("172.224.0.0/16"), record)
        assert db.lookup_prefix(Prefix.parse("172.224.5.0/24")) is record
        assert db.lookup_prefix(Prefix.parse("172.0.0.0/8")) is None

    def test_adoption_rate(self):
        db = GeoDatabase()
        db.add(Prefix.parse("10.0.0.0/24"), GeoRecord("US", None, None, "egress-list"))
        db.add(Prefix.parse("10.0.1.0/24"), GeoRecord("US", None, None, "vendor"))
        assert db.adoption_rate() == 0.5

    def test_adoption_rate_empty(self):
        assert GeoDatabase().adoption_rate() == 0.0


class TestPopulation:
    def test_set_and_get(self):
        ds = ASPopulationDataset()
        ds.set_population(714, 1000)
        assert ds.population(714) == 1000
        assert ds.population(1) == 0
        assert 714 in ds and 1 not in ds

    def test_negative_rejected(self):
        with pytest.raises(MeasurementError):
            ASPopulationDataset().set_population(1, -5)

    def test_total_deduplicates(self):
        ds = ASPopulationDataset()
        ds.set_population(1, 10)
        ds.set_population(2, 20)
        assert ds.total_population([1, 2, 1]) == 30

    def test_format_users(self):
        fmt = ASPopulationDataset.format_users
        assert fmt(994_000_000) == "994M"
        assert fmt(2_373_000_000) == "2.4B"
        assert fmt(105_000_000) == "105M"
        assert fmt(4_200) == "4.2k"
        assert fmt(12) == "12"


@given(
    st.floats(min_value=-89.0, max_value=89.0),
    st.floats(min_value=-179.0, max_value=179.0),
    st.floats(min_value=-89.0, max_value=89.0),
    st.floats(min_value=-179.0, max_value=179.0),
)
def test_distance_triangle_bounds(lat1, lon1, lat2, lon2):
    a = GeoPoint(lat1, lon1)
    b = GeoPoint(lat2, lon2)
    distance = a.distance_km(b)
    assert 0.0 <= distance <= 20016.0  # half the Earth's circumference
