"""Public-API surface guards.

Catches packaging regressions: every subpackage export must resolve,
every public module and exported symbol carries a docstring, and the
top-level convenience imports stay intact.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.netmodel",
    "repro.dns",
    "repro.quic",
    "repro.masque",
    "repro.relay",
    "repro.atlas",
    "repro.scan",
    "repro.analysis",
    "repro.worldgen",
    "repro.telemetry",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(f"{package_name}.{info.name}")


class TestApiSurface:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_exports_resolve(self, package_name):
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        for name in exported:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_every_module_has_docstring(self):
        for module in iter_modules():
            assert module.__doc__, f"{module.__name__} lacks a module docstring"

    def test_exported_callables_documented(self):
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                obj = getattr(package, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    assert obj.__doc__, f"{package_name}.{name} lacks a docstring"

    def test_top_level_convenience(self):
        assert callable(repro.build_world)
        assert callable(repro.read_archive)
        assert repro.__version__

    def test_public_methods_documented(self):
        """Public methods of exported classes carry docstrings."""
        undocumented = []
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                obj = getattr(package, name)
                if not inspect.isclass(obj):
                    continue
                for method_name, method in inspect.getmembers(
                    obj, inspect.isfunction
                ):
                    if method_name.startswith("_"):
                        continue
                    if method.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited
                    if not method.__doc__:
                        undocumented.append(f"{name}.{method_name}")
        assert not undocumented, f"undocumented public methods: {undocumented}"
