"""Statistical sanity tests of the stochastic components (scipy-based).

These check that the seeded random processes actually follow their
configured distributions, rather than accidentally degenerate ones —
the kind of bug a plain unit test cannot see.
"""

import random

import pytest
from scipy import stats

from repro.netmodel.addr import IPAddress
from repro.relay.egress import EgressFleet, EgressPool


class TestOperatorSelectionDistribution:
    def test_weighted_choice_matches_presence(self):
        fleet = EgressFleet()
        fleet.set_presence("DE", {13335: 0.55, 36183: 0.45})
        rng = random.Random(9)
        draws = [fleet.choose_operator("DE", rng) for _ in range(4000)]
        observed = [draws.count(13335), draws.count(36183)]
        expected = [4000 * 0.55, 4000 * 0.45]
        _stat, p_value = stats.chisquare(observed, expected)
        assert p_value > 0.001  # not significantly off the configured weights


class TestRotationUniformity:
    def test_unsticky_selection_is_uniform(self):
        addresses = [IPAddress(4, (10 << 24) + i) for i in range(6)]
        pool = EgressPool(36183, "DE", addresses, stickiness=0.0)
        rng = random.Random(5)
        draws = [pool.select("c", rng) for _ in range(6000)]
        counts = [draws.count(a) for a in addresses]
        _stat, p_value = stats.chisquare(counts)
        assert p_value > 0.001

    def test_stickiness_biases_toward_repeats(self):
        addresses = [IPAddress(4, (10 << 24) + i) for i in range(6)]
        sticky = EgressPool(36183, "DE", addresses, stickiness=0.5)
        rng = random.Random(5)
        draws = [sticky.select("c", rng) for _ in range(4000)]
        repeats = sum(1 for a, b in zip(draws, draws[1:]) if a == b)
        repeat_rate = repeats / (len(draws) - 1)
        # Expected: 0.5 + 0.5/6 ~ 0.583; binomial CI is tight at n=4000.
        assert 0.55 < repeat_rate < 0.62


class TestWorldgenDistributions:
    def test_population_power_law_is_heavy_tailed(self, tiny_world):
        populations = sorted(
            (
                tiny_world.population.population(c.asys.number)
                for c in tiny_world.ground.client_ases
            ),
            reverse=True,
        )
        total = sum(populations)
        top_decile = populations[: max(1, len(populations) // 10)]
        # A heavy-tailed distribution: the top 10 % of ASes hold well
        # over a proportional share of users.
        assert sum(top_decile) / total > 0.3

    def test_probe_regions_match_configured_shares(self, small_world):
        shares = small_world.config.atlas_region_shares
        by_region = small_world.atlas.probes_by_region()
        total = sum(by_region.values())
        observed = []
        expected = []
        for region, share in shares.items():
            observed.append(by_region.get(region, 0))
            expected.append(total * share)
        _stat, p_value = stats.chisquare(observed, f_exp=expected)
        assert p_value > 1e-4

    def test_egress_country_counts_are_us_heavy(self, small_world):
        counts = small_world.egress_list_may.subnets_per_country()
        ranked = sorted(counts.values(), reverse=True)
        # Strict dominance of the head over the median country.
        assert ranked[0] > 10 * ranked[len(ranked) // 2]
