"""Shared fixtures.

World generation is the expensive part, so worlds are session-scoped:
``tiny_world`` for cheap structural checks and ``small_world`` for
integration tests that run the measurement pipeline.  Tests must not
mutate world state destructively; tests that advance the shared clock
should only ever advance it (the clock is monotonic anyway).
"""

from __future__ import annotations

import pytest

from repro.worldgen import WorldConfig, build_world


@pytest.fixture(scope="session")
def tiny_world():
    """A scale-0.004 world (sub-second build)."""
    return build_world(WorldConfig.tiny())


@pytest.fixture(scope="session")
def small_world():
    """A scale-0.02 world for pipeline integration tests."""
    return build_world(WorldConfig.small())


@pytest.fixture(scope="session")
def small_world_scans(small_world):
    """The four monthly ECS scans (default + fallback) on small_world."""
    from repro.scan import EcsScanner
    from repro.relay.service import RELAY_DOMAIN_FALLBACK, RELAY_DOMAIN_QUIC

    world = small_world
    scanner = EcsScanner(world.route53, world.routing, world.clock)
    monthly = []
    for year, month in world.scan_months():
        world.clock.advance_to(world.scan_start(year, month))
        default = scanner.scan(RELAY_DOMAIN_QUIC)
        fallback = (
            scanner.scan(RELAY_DOMAIN_FALLBACK) if (year, month) != (2022, 1) else None
        )
        monthly.append((year, month, default, fallback))
    return monthly
