"""Tests for the research-data archive bundle."""

import json

import pytest

from repro.archive import read_archive, write_archive
from repro.errors import MeasurementError
from repro.scan.campaign import ScanCampaign


@pytest.fixture(scope="module")
def archived(tmp_path_factory):
    """Run a tiny campaign and write its archive once."""
    from repro.worldgen import WorldConfig, build_world

    world = build_world(WorldConfig.tiny(seed=123))
    campaign = ScanCampaign(world.route53, world.routing, world.clock)
    campaign.run(world.scan_months())
    directory = tmp_path_factory.mktemp("archive")
    write_archive(
        directory,
        campaign,
        world.egress_list_may,
        world.egress_list_jan,
        world.history,
        metadata={"seed": 123, "scale": world.config.scale},
    )
    return world, campaign, directory


class TestWriteArchive:
    def test_files_present(self, archived):
        _world, _campaign, directory = archived
        for name in (
            "MANIFEST.json",
            "ingress-default.csv",
            "ingress-fallback.csv",
            "egress-ip-ranges.csv",
            "egress-ip-ranges-jan.csv",
            "bgp-origins.csv",
        ):
            assert (directory / name).exists(), name

    def test_manifest_contents(self, archived):
        _world, campaign, directory = archived
        manifest = json.loads((directory / "MANIFEST.json").read_text())
        assert manifest["format"] == "relay-networks-archive/1"
        assert len(manifest["scans"]) == 4
        assert manifest["scans"][0]["fallback_addresses"] is None
        assert manifest["metadata"]["seed"] == 123

    def test_bgp_csv_shape(self, archived):
        _world, _campaign, directory = archived
        lines = (directory / "bgp-origins.csv").read_text().splitlines()
        assert lines[0] == "month,relay_as_visible"
        assert len(lines) == 78  # header + 77 months


class TestReadArchive:
    def test_roundtrip(self, archived):
        world, campaign, directory = archived
        bundle = read_archive(directory)
        assert len(bundle.ingress_default) == len(campaign.default_archive)
        assert len(bundle.egress_may) == len(world.egress_list_may)
        assert len(bundle.egress_jan) == len(world.egress_list_jan)

    def test_relay_visibility(self, archived):
        _world, _campaign, directory = archived
        bundle = read_archive(directory)
        assert bundle.first_relay_visibility() == "2021-06"

    def test_downstream_analysis_from_files(self, archived):
        """Tables 3/4 rebuild from the archived CSVs alone."""
        world, _campaign, directory = archived
        from repro.analysis import build_table3

        bundle = read_archive(directory)
        table3 = build_table3(bundle.egress_may, world.routing)
        assert {row.asn for row in table3.rows} == {36183, 20940, 13335, 54113}

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(MeasurementError):
            read_archive(tmp_path)

    def test_bad_format(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text('{"format": "other/9"}')
        with pytest.raises(MeasurementError):
            read_archive(tmp_path)
