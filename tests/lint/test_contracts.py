"""CONTRACT001: event-kind drift between emitters, the schema registry
and monitor readers; telemetry counter shape drift; and the tests-vs-
runtime counter cross-reference with its family-prefix guard.
"""

import textwrap

from repro.lint.contracts import (
    check_counter_contract,
    check_event_contract,
)
from repro.lint.findings import STATUS_SUPPRESSED
from repro.lint.graph import ProgramGraph, extract_summary
from repro.lint.rules import RULES


def make_graph(files):
    summaries = [
        extract_summary(rel, textwrap.dedent(source))
        for rel, source in sorted(files.items())
    ]
    return ProgramGraph(summaries)


RULE = RULES["CONTRACT001"]


# -- event kinds -----------------------------------------------------------


EVENT_TREE = {
    "src/repro/monitor/events.py": """\
        EVENT_KINDS = frozenset({"known_kind", "quiet_kind", "ghost_kind"})

        class EventLog:
            def emit(self, event, **fields):
                return {"event": event}
    """,
    "src/repro/producer.py": """\
        def produce(log):
            log.emit("known_kind", x=1)
            log.emit("quiet_kind")
            log.emit("mystery_kind")
    """,
    "src/repro/monitor/reader.py": """\
        def fold(record):
            if record["event"] == "known_kind":
                return 1
            return 0
    """,
}


def event_findings(files):
    return check_event_contract(make_graph(files), RULE)


def test_event_contract_flags_all_three_drift_directions():
    findings = event_findings(EVENT_TREE)
    by_message = {f.message.split("'")[1]: f for f in findings}
    assert set(by_message) == {"mystery_kind", "ghost_kind", "quiet_kind"}

    # (a) emitted but missing from the registry: anchored at the emit.
    mystery = by_message["mystery_kind"]
    assert mystery.path == "src/repro/producer.py"
    assert "missing from repro.monitor.events.EVENT_KINDS" in mystery.message

    # (b) declared but never emitted: anchored at the registry line.
    ghost = by_message["ghost_kind"]
    assert ghost.path == "src/repro/monitor/events.py"
    assert "never emitted" in ghost.message

    # (c) emitted and declared but no monitor reader examines it.
    quiet = by_message["quiet_kind"]
    assert quiet.path == "src/repro/producer.py"
    assert "never examined" in quiet.message


def test_event_contract_clean_when_all_surfaces_agree():
    files = dict(EVENT_TREE)
    files["src/repro/monitor/events.py"] = """\
        EVENT_KINDS = frozenset({"known_kind", "quiet_kind", "mystery_kind"})
    """
    files["src/repro/monitor/reader.py"] = """\
        def fold(record):
            if record["event"] in ("known_kind", "quiet_kind",
                                   "mystery_kind"):
                return 1
            return 0
    """
    assert event_findings(files) == []


def test_event_contract_without_a_registry_only_checks_handling():
    # A tree with no EVENT_KINDS constant cannot check declaration
    # drift, but unexamined kinds still fire.
    files = {
        "src/repro/producer.py": EVENT_TREE["src/repro/producer.py"],
        "src/repro/monitor/reader.py":
            EVENT_TREE["src/repro/monitor/reader.py"],
    }
    findings = event_findings(files)
    kinds = {f.message.split("'")[1] for f in findings}
    assert kinds == {"mystery_kind", "quiet_kind"}
    assert all("never examined" in f.message for f in findings)


# -- counter shapes --------------------------------------------------------


COUNTER_TREE = {
    "src/repro/m1.py": """\
        def record(registry):
            registry.counter("probe.retries", surface="ecs").inc()
            registry.counter("probe.ok").inc()
    """,
    "src/repro/m2.py": """\
        def record(registry):
            registry.counter("probe.retries", kind="atlas").inc()
    """,
}


def test_counter_shape_drift_lists_every_site():
    graph = make_graph(COUNTER_TREE)
    findings, _untested = check_counter_contract(graph, RULE)
    (finding,) = findings
    assert "metric 'probe.retries'" in finding.message
    assert "2 different shapes" in finding.message
    assert "counter{kind}" in finding.message
    assert "counter{surface}" in finding.message
    assert sorted(finding.witness) == [
        "src/repro/m1.py:2 counter{surface}",
        "src/repro/m2.py:2 counter{kind}",
    ]


def test_counter_same_shape_everywhere_is_clean():
    graph = make_graph({
        "src/repro/m1.py": """\
            def record(registry):
                registry.counter("probe.retries", surface="ecs").inc()
        """,
        "src/repro/m2.py": """\
            def record(registry):
                registry.counter("probe.retries", surface="atlas").inc()
        """,
    })
    findings, _untested = check_counter_contract(graph, RULE)
    assert findings == []


# -- tests-vs-runtime cross-reference -------------------------------------


#: Shape-consistent counters, so cross-ref tests see no drift noise.
CLEAN_COUNTER_TREE = {
    "src/repro/m1.py": """\
        def record(registry):
            registry.counter("probe.retries", surface="ecs").inc()
            registry.counter("probe.ok").inc()
    """,
    "src/repro/m2.py": """\
        def record(registry):
            registry.counter("probe.retries", surface="atlas").inc()
    """,
}


def write_test_file(tmp_path, body):
    tests = tmp_path / "tests"
    tests.mkdir()
    (tests / "test_counts.py").write_text(textwrap.dedent(body))
    return tests


def test_asserted_counter_nobody_emits_is_flagged(tmp_path):
    tests = write_test_file(tmp_path, """\
        def test_counts(registry):
            assert registry.counter("probe.gone").value == 1
    """)
    graph = make_graph(CLEAN_COUNTER_TREE)
    findings, _untested = check_counter_contract(
        graph, RULE, tests_root=tests)
    hits = [f for f in findings if "probe.gone" in f.message]
    (finding,) = hits
    assert "no runtime path in src emits it" in finding.message
    assert finding.path.endswith("tests/test_counts.py")
    assert finding.line == 2


def test_fixture_counters_outside_every_family_are_ignored(tmp_path):
    tests = write_test_file(tmp_path, """\
        def test_fixture(registry):
            assert registry.counter("fixture.local").value == 2
    """)
    graph = make_graph(CLEAN_COUNTER_TREE)
    findings, _untested = check_counter_contract(
        graph, RULE, tests_root=tests)
    assert findings == []


def test_asserted_counter_can_be_suppressed_in_the_test(tmp_path):
    tests = write_test_file(tmp_path, """\
        def test_counts(registry):
            # repro: allow[CONTRACT001] pinned to the renamed legacy metric
            assert registry.counter("probe.legacy").value == 1
    """)
    graph = make_graph(CLEAN_COUNTER_TREE)
    findings, _untested = check_counter_contract(
        graph, RULE, tests_root=tests)
    (finding,) = findings
    assert finding.status == STATUS_SUPPRESSED


def test_untested_counters_are_informational_not_findings(tmp_path):
    tests = write_test_file(tmp_path, """\
        def test_counts(registry):
            assert registry.counter("probe.retries").value == 1
    """)
    graph = make_graph(CLEAN_COUNTER_TREE)
    findings, untested = check_counter_contract(
        graph, RULE, tests_root=tests)
    assert findings == []
    assert untested == ["probe.ok"]
