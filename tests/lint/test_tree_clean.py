"""Tier-1 gate: the source tree is lint-clean against the committed baseline.

This is the static half of the determinism story: the equivalence
matrices prove runs *are* bit-identical, this proves the tree contains
no construct that could make them stop being so.  A new wall-clock
read, unsorted set iteration, or fork-shared mutation fails this test
until it is fixed, suppressed with a reasoned ``# repro: allow[...]``,
or (exceptionally) added to lint_baseline.json.
"""

from pathlib import Path

from repro.lint import LintEngine, load_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
SOURCE_TREE = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint_baseline.json"


def run_tree_lint():
    engine = LintEngine()
    return engine.run([SOURCE_TREE], root=REPO_ROOT,
                      baseline=load_baseline(BASELINE))


def test_tree_is_clean_against_baseline():
    report = run_tree_lint()
    new = report.new_findings
    details = "\n".join(f.render() for f in new)
    assert not new, (
        f"{len(new)} new lint finding(s); fix them, or suppress with "
        f"'# repro: allow[RULE] reason', or baseline them:\n{details}"
    )


def test_baseline_has_no_stale_entries():
    # Fixing a grandfathered finding must also shrink the baseline
    # (repro lint --baseline lint_baseline.json --update-baseline),
    # so the allowlist only ever shrinks toward zero.
    report = run_tree_lint()
    stale = "\n".join(
        f"{e.rule} {e.path} :: {e.content!r}" for e in report.stale_baseline
    )
    assert not report.stale_baseline, (
        f"stale baseline entries (fixed findings still grandfathered); "
        f"run --update-baseline:\n{stale}"
    )


def test_baseline_is_small_and_justified():
    # The baseline is a shrinking allowlist, not a dumping ground: keep
    # it bounded so new findings get fixed or reason-suppressed instead.
    entries = load_baseline(BASELINE)
    assert len(entries) <= 8, (
        "lint_baseline.json grew; fix findings or use a reasoned inline "
        "suppression instead of grandfathering more debt"
    )
