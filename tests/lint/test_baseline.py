"""Baseline add/match/expire behaviour."""

import json

import pytest

from repro.errors import LintError
from repro.lint import (
    STATUS_BASELINED,
    STATUS_NEW,
    BaselineEntry,
    LintEngine,
    apply_baseline,
    load_baseline,
    write_baseline,
)

DIRTY = "import time\nstamp = time.time()\n"


def lint(source):
    return LintEngine().lint_source(source, "mod.py")


def test_baselined_finding_is_not_new():
    findings = lint(DIRTY)
    stale = apply_baseline(findings, [
        BaselineEntry("DET001", "mod.py", "stamp = time.time()"),
    ])
    assert findings[0].status == STATUS_BASELINED
    assert stale == []


def test_extra_occurrence_beyond_count_stays_new():
    source = "import time\na = time.time()\nb = time.time()\n"
    findings = lint(source)
    # Both lines share neither content nor count: baseline only one.
    apply_baseline(findings, [
        BaselineEntry("DET001", "mod.py", "a = time.time()"),
    ])
    statuses = sorted(f.status for f in findings)
    assert statuses == [STATUS_BASELINED, STATUS_NEW]


def test_count_matches_multiple_identical_lines():
    source = "import time\nstamp = time.time()\nstamp = time.time()\n"
    findings = lint(source)
    apply_baseline(findings, [
        BaselineEntry("DET001", "mod.py", "stamp = time.time()", count=2),
    ])
    assert all(f.status == STATUS_BASELINED for f in findings)


def test_stale_entries_reported_when_finding_fixed():
    findings = lint("value = 1\n")
    stale = apply_baseline(findings, [
        BaselineEntry("DET001", "mod.py", "stamp = time.time()"),
    ])
    assert len(stale) == 1
    assert stale[0].rule == "DET001"
    assert stale[0].count == 1


def test_line_moves_do_not_invalidate_baseline():
    moved = "import time\n\n\n# padding\nstamp = time.time()\n"
    findings = lint(moved)
    stale = apply_baseline(findings, [
        BaselineEntry("DET001", "mod.py", "stamp = time.time()"),
    ])
    assert findings[-1].status == STATUS_BASELINED
    assert stale == []


def test_write_and_load_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    findings = lint(DIRTY)
    written = write_baseline(path, findings)
    loaded = load_baseline(path)
    assert loaded == written
    assert loaded[0].rule == "DET001"
    assert loaded[0].count == 1


def test_write_aggregates_duplicate_fingerprints(tmp_path):
    path = tmp_path / "baseline.json"
    source = "import time\nstamp = time.time()\nstamp = time.time()\n"
    entries = write_baseline(path, lint(source))
    assert len(entries) == 1
    assert entries[0].count == 2


def test_missing_baseline_is_an_error(tmp_path):
    with pytest.raises(LintError, match="not found"):
        load_baseline(tmp_path / "absent.json")


def test_malformed_baseline_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("not json")
    with pytest.raises(LintError, match="not valid JSON"):
        load_baseline(path)
    path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(LintError, match="unsupported version"):
        load_baseline(path)
    path.write_text(json.dumps({"version": 1, "entries": [{"rule": "X"}]}))
    with pytest.raises(LintError, match="malformed entry"):
        load_baseline(path)


def test_engine_run_applies_baseline(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(DIRTY)
    entries = [BaselineEntry("DET001", "mod.py", "stamp = time.time()")]
    report = LintEngine().run([module], root=tmp_path, baseline=entries)
    assert report.ok
    assert report.count(STATUS_BASELINED) == 1
    assert report.stale_baseline == []
