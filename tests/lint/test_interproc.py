"""Interprocedural passes: DET101 taint witnesses, CONC101 fork-safety
reachability (static entries and discovered submit() targets), DET102
cross-module set-order, and suppression scoping — an inline allow at
the *source site* silences a finding whose evidence spans three files.
"""

import textwrap

from repro.lint import LintEngine
from repro.lint.findings import STATUS_NEW, STATUS_SUPPRESSED
from repro.lint.graph import ProgramGraph, extract_summary
from repro.lint.interproc import (
    check_fork_safety,
    check_set_order,
    check_taint,
    entry_points,
)
from repro.lint.rules import RULES


def build_tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def make_graph(files):
    summaries = [
        extract_summary(rel, textwrap.dedent(source))
        for rel, source in sorted(files.items())
    ]
    return ProgramGraph(summaries)


# -- DET101: interprocedural taint ----------------------------------------


TAINT_TREE = {
    "src/repro/leaf.py": """\
        import time

        def stamp():
            return time.time()
    """,
    "src/repro/mid.py": """\
        from repro.leaf import stamp

        def wrap():
            return stamp()
    """,
    "src/repro/store.py": """\
        from repro.mid import wrap

        def save():
            return wrap()

        def display():
            return 0
    """,
}

SINKS = {"repro.store:save": "store writer"}


def test_taint_finding_carries_the_full_witness_chain():
    graph = make_graph(TAINT_TREE)
    (finding,) = check_taint(graph, RULES["DET101"], sinks=SINKS)
    # Anchored at the source site, where the fix belongs.
    assert finding.path == "src/repro/leaf.py"
    assert finding.line == 4
    assert "repro.store:save" in finding.message
    assert "through 2 call(s)" in finding.message
    # Witness in reading order: the read, then source -> ... -> sink.
    assert finding.witness == [
        "time.time() reads the wall clock @ src/repro/leaf.py:4",
        "repro.leaf:stamp",
        "repro.mid:wrap",
        "repro.store:save",
    ]


def test_taint_ignores_reads_no_sink_can_reach():
    files = dict(TAINT_TREE)
    files["src/repro/ui.py"] = """\
        import time

        def banner():
            return time.time()
    """
    graph = make_graph(files)
    findings = check_taint(graph, RULES["DET101"], sinks=SINKS)
    assert {f.path for f in findings} == {"src/repro/leaf.py"}


def test_taint_direct_read_inside_the_sink():
    graph = make_graph({
        "src/repro/store.py": """\
            import time

            def save():
                return time.time()
        """,
    })
    (finding,) = check_taint(graph, RULES["DET101"], sinks=SINKS)
    assert "directly" in finding.message
    assert finding.witness[-1] == "repro.store:save"


def test_allow_at_the_source_site_suppresses_the_chain(tmp_path):
    files = dict(TAINT_TREE)
    files["src/repro/leaf.py"] = """\
        import time

        def stamp():
            # repro: allow[DET001,DET101] boundary stamp, display only
            return time.time()
    """
    build_tree(tmp_path, files)
    report = LintEngine(rules=["DET101"]).run(
        [tmp_path / "src"], root=tmp_path, sinks=SINKS)
    (finding,) = report.findings
    assert finding.status == STATUS_SUPPRESSED
    assert finding.suppress_reason == "boundary stamp, display only"
    assert report.new_findings == []


# -- CONC101: fork-safety reachability ------------------------------------


STATE_TREE = {
    "src/repro/state.py": """\
        _CACHE = {}

        def remember(key, value):
            _CACHE[key] = value

        def reset():
            _CACHE.clear()
    """,
    "src/repro/work.py": """\
        from repro.state import remember

        def entry(task):
            remember(task, 1)
    """,
}


def test_fork_safety_flags_only_reachable_mutations():
    graph = make_graph(STATE_TREE)
    findings = check_fork_safety(
        graph, RULES["CONC101"],
        static_entry_points=(("repro.work", "entry"),))
    (finding,) = findings
    assert finding.path == "src/repro/state.py"
    assert finding.content == "_CACHE[key] = value"
    assert "reachable through 1 call(s)" in finding.message
    assert finding.witness == ["repro.work:entry", "repro.state:remember"]
    # reset() mutates too but nothing forked reaches it: no finding.


def test_fork_safety_silent_without_entry_points():
    graph = make_graph(STATE_TREE)
    assert check_fork_safety(
        graph, RULES["CONC101"], static_entry_points=()) == []


def test_submit_targets_become_entry_points():
    files = dict(STATE_TREE)
    files["src/repro/pool_mod.py"] = """\
        from repro.state import remember

        def worker(task):
            remember(task, 2)

        def launch(pool, tasks):
            for task in tasks:
                pool.submit(worker, task)
    """
    graph = make_graph(files)
    assert entry_points(graph, static=()) == ["repro.pool_mod:worker"]
    findings = check_fork_safety(
        graph, RULES["CONC101"], static_entry_points=())
    (finding,) = findings
    assert finding.witness[0] == "repro.pool_mod:worker"


# -- DET102: cross-module set order ---------------------------------------


SET_TREE = {
    "src/repro/cols.py": """\
        def addresses() -> set:
            return {"a", "b"}
    """,
    "src/repro/use.py": """\
        from repro.cols import addresses

        def render():
            out = []
            for address in addresses():
                out.append(address)
            return out

        def render_sorted():
            return [a for a in sorted(addresses())]

        def via_variable():
            addrs = addresses()
            return list(addrs)
    """,
}


def test_set_order_direct_and_variable_mediated():
    graph = make_graph(SET_TREE)
    findings = check_set_order(graph, RULES["DET102"])
    by_line = {f.line: f for f in findings}
    assert set(by_line) == {5, 14}
    direct = by_line[5]
    assert "repro.cols:addresses" in direct.message
    assert direct.witness == ["repro.use:render", "repro.cols:addresses"]
    mediated = by_line[14]
    assert "'addrs' holds the set returned" in mediated.message


def test_set_order_sorted_call_is_clean():
    files = {
        "src/repro/cols.py": SET_TREE["src/repro/cols.py"],
        "src/repro/use.py": """\
            from repro.cols import addresses

            def render_sorted():
                return [a for a in sorted(addresses())]
        """,
    }
    graph = make_graph(files)
    assert check_set_order(graph, RULES["DET102"]) == []


def test_set_order_annotation_marks_the_callee(tmp_path):
    # End to end through the engine: restricted to DET102, the one
    # finding is the unsorted cross-module iteration.
    build_tree(tmp_path, SET_TREE)
    report = LintEngine(rules=["DET102"]).run(
        [tmp_path / "src"], root=tmp_path)
    assert [f.line for f in report.new_findings] == [5, 14]
    assert all(f.rule == "DET102" for f in report.new_findings)
    assert all(f.status == STATUS_NEW for f in report.new_findings)
