"""JSON report schema and CLI behaviour (exit codes, flags, telemetry)."""

import json

import pytest

from repro.cli import main
from repro.lint import RULES, LintEngine
from repro.lint.baseline import BaselineEntry

DIRTY = "import time\nstamp = time.time()\n"
CLEAN = "value = 1\n"


@pytest.fixture
def dirty_tree(tmp_path):
    (tmp_path / "mod.py").write_text(DIRTY)
    return tmp_path


# -- JSON schema -----------------------------------------------------------


def test_json_report_schema(dirty_tree):
    report = LintEngine().run([dirty_tree / "mod.py"], root=dirty_tree)
    data = report.to_json()
    assert data["version"] == 1
    assert data["files_scanned"] == 1
    assert {r["id"] for r in data["rules"]} == set(RULES)
    for rule in data["rules"]:
        assert set(rule) == {"id", "name", "severity", "summary"}
    (finding,) = data["findings"]
    assert set(finding) == {
        "rule", "path", "line", "col", "severity", "message",
        "content", "status",
    }
    assert finding["rule"] == "DET001"
    assert finding["path"] == "mod.py"
    assert finding["status"] == "new"
    summary = data["summary"]
    assert summary["total"] == 1
    assert summary["new"] == 1
    assert summary["baselined"] == 0
    assert summary["suppressed"] == 0
    assert summary["stale_baseline_entries"] == 0
    assert summary["by_rule"] == {"DET001": 1}
    assert data["stale_baseline"] == []


def test_json_report_includes_suppress_reason(tmp_path):
    (tmp_path / "mod.py").write_text(
        "import time\nt = time.time()  # repro: allow[DET001] boundary\n"
    )
    report = LintEngine().run([tmp_path / "mod.py"], root=tmp_path)
    (finding,) = report.to_json()["findings"]
    assert finding["status"] == "suppressed"
    assert finding["suppress_reason"] == "boundary"


def test_json_report_stale_baseline_entries(tmp_path):
    (tmp_path / "mod.py").write_text(CLEAN)
    entries = [BaselineEntry("DET001", "mod.py", "stamp = time.time()")]
    report = LintEngine().run([tmp_path / "mod.py"], root=tmp_path,
                              baseline=entries)
    data = report.to_json()
    assert data["summary"]["stale_baseline_entries"] == 1
    (stale,) = data["stale_baseline"]
    assert stale == {
        "rule": "DET001", "path": "mod.py",
        "content": "stamp = time.time()", "count": 1,
    }


# -- CLI -------------------------------------------------------------------


def test_cli_exit_1_on_new_findings(dirty_tree, capsys):
    code = main(["lint", str(dirty_tree), "--root", str(dirty_tree)])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET001" in out
    assert "1 new" in out


def test_cli_exit_0_on_clean_tree(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(CLEAN)
    code = main(["lint", str(tmp_path), "--root", str(tmp_path)])
    assert code == 0
    assert "0 new" in capsys.readouterr().out


def test_cli_update_then_gate_round_trip(dirty_tree, capsys):
    baseline = dirty_tree / "baseline.json"
    assert main(["lint", str(dirty_tree), "--root", str(dirty_tree),
                 "--baseline", str(baseline), "--update-baseline"]) == 0
    assert baseline.exists()
    capsys.readouterr()
    assert main(["lint", str(dirty_tree), "--root", str(dirty_tree),
                 "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_cli_stale_baseline_warns_but_passes(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(CLEAN)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"version": 1, "entries": [{
        "rule": "DET001", "path": "mod.py",
        "content": "stamp = time.time()", "count": 1,
    }]}))
    code = main(["lint", str(tmp_path), "--root", str(tmp_path),
                 "--baseline", str(baseline)])
    assert code == 0
    assert "stale baseline entry" in capsys.readouterr().out


def test_cli_update_baseline_requires_baseline(dirty_tree):
    assert main(["lint", str(dirty_tree), "--update-baseline"]) == 2


def test_cli_json_flag_writes_report(dirty_tree):
    out = dirty_tree / "report.json"
    main(["lint", str(dirty_tree), "--root", str(dirty_tree),
          "--json", str(out)])
    data = json.loads(out.read_text())
    assert data["summary"]["new"] == 1


def test_cli_json_format_prints_report(dirty_tree, capsys):
    main(["lint", str(dirty_tree), "--root", str(dirty_tree),
          "--format", "json"])
    data = json.loads(capsys.readouterr().out)
    assert data["summary"]["by_rule"] == {"DET001": 1}


def test_cli_list_rules_documents_every_rule(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id, rule in RULES.items():
        assert rule_id in out
        assert rule.summary in out
    assert "repro: allow[RULE-ID]" in out


def test_cli_rules_filter(dirty_tree, capsys):
    code = main(["lint", str(dirty_tree), "--root", str(dirty_tree),
                 "--rules", "HYG001,HYG002"])
    assert code == 0  # DET001 not selected, so the dirty file passes


def test_cli_bad_rule_id_exits_2(dirty_tree, capsys):
    assert main(["lint", str(dirty_tree), "--rules", "NOPE1"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_missing_path_exits_2(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "absent")]) == 2


def test_cli_telemetry_out_counters(dirty_tree):
    tel_path = dirty_tree / "telemetry.json"
    main(["lint", str(dirty_tree), "--root", str(dirty_tree),
          "--telemetry-out", str(tel_path)])
    snapshot = json.loads(tel_path.read_text())
    counters = {
        (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
        for c in snapshot["metrics"]["counters"]
    }
    assert counters[("lint.findings", (("rule", "DET001"),))] == 1
    # Every rule gets a counter, zeros included, so artifacts can trend.
    for rule_id in RULES:
        assert ("lint.findings", (("rule", rule_id),)) in counters
    assert counters[("lint.files_scanned", ())] == 1
    assert counters[("lint.new", ())] == 1


def test_zero_count_rules_survive_export(dirty_tree):
    """Zero-valued rule counters must round-trip and render, not vanish.

    Trend dashboards diff successive scrapes; a rule that disappears
    when its count hits zero reads as "no data" instead of "clean".
    The dirty tree trips only DET001, so every other rule is the
    zero-count case.
    """
    from repro.telemetry import prometheus_text

    tel_path = dirty_tree / "telemetry.json"
    main(["lint", str(dirty_tree), "--root", str(dirty_tree),
          "--telemetry-out", str(tel_path)])
    snapshot = json.loads(tel_path.read_text())

    # JSON round-trip: one lint.findings counter per rule, zeros intact.
    by_rule = {
        c["labels"]["rule"]: c["value"]
        for c in snapshot["metrics"]["counters"]
        if c["name"] == "lint.findings"
    }
    assert by_rule["DET001"] == 1
    zero_rules = [rule_id for rule_id in RULES if rule_id != "DET001"]
    assert zero_rules  # the guard is vacuous with a one-rule registry
    for rule_id in zero_rules:
        assert by_rule[rule_id] == 0

    # Prometheus render: the zero samples appear as explicit `... 0` lines.
    text = prometheus_text(snapshot)
    assert 'lint_findings_total{rule="DET001"} 1' in text
    for rule_id in zero_rules:
        assert f'lint_findings_total{{rule="{rule_id}"}} 0' in text
