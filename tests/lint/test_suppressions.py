"""Inline ``# repro: allow[RULE-ID] <reason>`` suppression handling."""

from repro.lint import STATUS_NEW, STATUS_SUPPRESSED, LintEngine


def lint(source):
    return LintEngine().lint_source(source, "snippet.py")


def test_same_line_suppression():
    source = (
        "import time\n"
        "t = time.time()  # repro: allow[DET001] wall display only\n"
    )
    (finding,) = lint(source)
    assert finding.status == STATUS_SUPPRESSED
    assert finding.suppress_reason == "wall display only"


def test_comment_above_suppression():
    source = (
        "import time\n"
        "# repro: allow[DET001] wall display only\n"
        "t = time.time()\n"
    )
    (finding,) = lint(source)
    assert finding.status == STATUS_SUPPRESSED


def test_suppression_on_code_line_above_does_not_apply():
    # The line above carries code, not a dedicated comment: a trailing
    # allow there must only cover that line's own findings.
    source = (
        "import time\n"
        "a = 1  # repro: allow[DET001] misplaced\n"
        "t = time.time()\n"
    )
    (finding,) = lint(source)
    assert finding.status == STATUS_NEW


def test_wrong_rule_id_does_not_suppress():
    source = (
        "import time\n"
        "t = time.time()  # repro: allow[HYG001] wrong rule\n"
    )
    (finding,) = lint(source)
    assert finding.status == STATUS_NEW


def test_suppression_covers_only_its_line():
    source = (
        "import time\n"
        "a = time.time()  # repro: allow[DET001] one-off\n"
        "b = time.time()\n"
    )
    statuses = {f.line: f.status for f in lint(source)}
    assert statuses[2] == STATUS_SUPPRESSED
    assert statuses[3] == STATUS_NEW


def test_reason_is_optional_but_captured():
    source = "import time\nt = time.time()  # repro: allow[DET001]\n"
    (finding,) = lint(source)
    assert finding.status == STATUS_SUPPRESSED
    assert finding.suppress_reason == ""


def test_suppressed_findings_do_not_gate_reports(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import time\n"
        "t = time.time()  # repro: allow[DET001] boundary\n"
    )
    report = LintEngine().run([target], root=tmp_path)
    assert report.ok
    assert report.count(STATUS_SUPPRESSED) == 1
