"""Incremental mode: ``--changed-since`` cone filtering at the engine
level, the git-backed changed-file discovery, and the ``--graph-out``
debug export through the real CLI.
"""

import json
import subprocess
import textwrap

import pytest

from repro.cli import main
from repro.lint import LintEngine
from repro.lint.cli import changed_files_since


def build_tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


TREE = {
    "src/repro/base.py": """\
        def double(x):
            return 2 * x
    """,
    "src/repro/uses_base.py": """\
        import time

        from repro.base import double

        def stamp():
            return double(time.time())
    """,
    "src/repro/other.py": """\
        import time

        def unrelated():
            return time.time()
    """,
}


# -- engine-level cone filtering ------------------------------------------


def test_changed_since_limits_findings_to_the_cone(tmp_path):
    build_tree(tmp_path, TREE)
    report = LintEngine(rules=["DET001"]).run(
        [tmp_path / "src"], root=tmp_path,
        changed_files=["src/repro/base.py"])
    # base.py changed; uses_base.py imports it and is in the cone;
    # other.py's finding is out of scope for this run.
    assert report.changed == {
        "files": ["src/repro/base.py"],
        "cone": ["src/repro/base.py", "src/repro/uses_base.py"],
    }
    assert {f.path for f in report.new_findings} == {
        "src/repro/uses_base.py",
    }


def test_changed_since_suppresses_stale_baseline_reporting(tmp_path):
    from repro.lint.baseline import BaselineEntry

    build_tree(tmp_path, TREE)
    ghost = [BaselineEntry("DET001", "src/repro/gone.py", "x = t()")]
    full = LintEngine(rules=["DET001"]).run(
        [tmp_path / "src"], root=tmp_path, baseline=ghost)
    assert full.stale_baseline  # the full run reports it
    partial = LintEngine(rules=["DET001"]).run(
        [tmp_path / "src"], root=tmp_path, baseline=ghost,
        changed_files=["src/repro/base.py"])
    assert partial.stale_baseline == []  # the partial run cannot judge


# -- git-backed discovery --------------------------------------------------


GIT_ENV = [
    "git", "-c", "user.email=lint@test", "-c", "user.name=lint",
]


def git_repo(tmp_path):
    build_tree(tmp_path, TREE)
    subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
    subprocess.run(["git", "add", "."], cwd=tmp_path, check=True)
    subprocess.run(GIT_ENV + ["commit", "-qm", "seed"],
                   cwd=tmp_path, check=True)
    return tmp_path


def test_changed_files_since_sees_edits_and_untracked(tmp_path):
    root = git_repo(tmp_path)
    (root / "src/repro/base.py").write_text(
        "def double(x):\n    return x + x\n")
    (root / "src/repro/fresh.py").write_text("VALUE = 1\n")
    assert changed_files_since(root, "HEAD") == [
        "src/repro/base.py", "src/repro/fresh.py",
    ]


def test_changed_files_since_bad_ref_raises(tmp_path):
    from repro.errors import LintError

    root = git_repo(tmp_path)
    with pytest.raises(LintError, match="no-such-ref"):
        changed_files_since(root, "no-such-ref")


def test_cli_changed_since_skips_untouched_findings(tmp_path, capsys):
    root = git_repo(tmp_path)
    (root / "src/repro/base.py").write_text(
        "def double(x):\n    return x + x\n")
    code = main([
        "lint", str(root / "src"), "--root", str(root),
        "--rules", "DET001", "--changed-since", "HEAD",
    ])
    out = capsys.readouterr().out
    # other.py's DET001 sits outside the cone: the incremental run
    # still fails, but only on the cone's finding.
    assert code == 1
    assert "changed-since: 1 changed file(s), 2 in re-analysis cone" in out
    assert "uses_base.py" in out
    assert "other.py" not in out


def test_cli_changed_since_clean_cone_passes(tmp_path, capsys):
    root = git_repo(tmp_path)
    (root / "src/repro/fresh.py").write_text("VALUE = 1\n")
    code = main([
        "lint", str(root / "src"), "--root", str(root),
        "--rules", "DET001", "--changed-since", "HEAD",
    ])
    assert code == 0


# -- --graph-out and the cache through the CLI -----------------------------


def test_cli_graph_out_writes_the_debug_document(tmp_path, capsys):
    build_tree(tmp_path, TREE)
    graph_path = tmp_path / "graph.json"
    main([
        "lint", str(tmp_path / "src"), "--root", str(tmp_path),
        "--graph-out", str(graph_path),
    ])
    document = json.loads(graph_path.read_text())
    assert set(document) == {
        "version", "modules", "import_edges", "call_edges",
        "unresolved", "untested_counters",
    }
    assert {m["module"] for m in document["modules"]} == {
        "repro.base", "repro.uses_base", "repro.other",
    }
    assert any(
        e["src"] == "repro.uses_base" and e["dst"] == "repro.base"
        for e in document["import_edges"]
    )


def test_cli_caches_by_default_and_reports_reuse(tmp_path, capsys):
    build_tree(tmp_path, TREE)
    argv = ["lint", str(tmp_path / "src"), "--root", str(tmp_path)]
    main(argv)
    assert (tmp_path / ".lint_cache.json").exists()
    capsys.readouterr()
    main(argv)
    out = capsys.readouterr().out
    assert "(cache: 3 hit, 0 miss)" in out


def test_cli_no_cache_opts_out(tmp_path, capsys):
    build_tree(tmp_path, TREE)
    main([
        "lint", str(tmp_path / "src"), "--root", str(tmp_path),
        "--no-cache",
    ])
    assert not (tmp_path / ".lint_cache.json").exists()
    out = capsys.readouterr().out
    assert "(cache: 0 hit, 3 miss)" in out
