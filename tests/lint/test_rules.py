"""Per-rule positive/negative fixtures, linted in memory.

Each rule gets at least one snippet that must fire and one that must
stay silent; the helper asserts on rule ids so a fixture firing the
wrong rule fails loudly.
"""

import pytest

from repro.lint import LintEngine


def rule_ids(source, path="snippet.py"):
    engine = LintEngine()
    return [f.rule for f in engine.lint_source(source, path)]


def findings(source, path="snippet.py"):
    return LintEngine().lint_source(source, path)


# -- DET001 ----------------------------------------------------------------

@pytest.mark.parametrize("snippet", [
    "import time\nstamp = time.time()\n",
    "import time\nstamp = time.perf_counter()\n",
    "import datetime\nnow = datetime.datetime.now()\n",
    "import uuid\ntoken = uuid.uuid4()\n",
    "import os\nnoise = os.urandom(8)\n",
    "import random\nvalue = random.random()\n",
    "import random\nrandom.shuffle(items)\n",
    "import random\nrng = random.Random()\n",
    "import secrets\ntoken = secrets.token_hex()\n",
    "from random import choice\n",
    "from time import perf_counter\n",
])
def test_det001_positive(snippet):
    assert "DET001" in rule_ids(snippet)


@pytest.mark.parametrize("snippet", [
    "import random\nrng = random.Random(2022)\n",
    "value = self.clock.now\n" .replace("self.", "obj."),
    "import random\nrng = random.Random(seed)\n",
    "from random import Random\nrng = Random(7)\n",
    "stamp = clock.time_of_day()\n",
])
def test_det001_negative(snippet):
    assert "DET001" not in rule_ids(snippet)


def test_det001_boundary_modules_exempt():
    snippet = "import time\nstamp = time.perf_counter()\n"
    assert rule_ids(snippet, path="src/repro/telemetry/spans.py") == []
    assert rule_ids(snippet, path="src/repro/faults/plan.py") == []
    assert "DET001" in rule_ids(snippet, path="src/repro/scan/kernel.py")


# -- DET002 ----------------------------------------------------------------

@pytest.mark.parametrize("snippet", [
    "for item in set(values):\n    emit(item)\n",
    "for item in {1, 2, 3}:\n    emit(item)\n",
    "out = [f(x) for x in frozenset(values)]\n",
    "out = {k: 1 for k in set(values)}\n",
    "total = sum(weight[x] for x in set(values))\n",
    "out = list(set(values))\n",
    "out = tuple(frozenset(values))\n",
    "text = ', '.join({str(x) for x in values})\n",
])
def test_det002_positive(snippet):
    assert "DET002" in rule_ids(snippet)


@pytest.mark.parametrize("snippet", [
    "for item in sorted(set(values)):\n    emit(item)\n",
    "out = [f(x) for x in sorted(frozenset(values))]\n",
    "for item in values:\n    emit(item)\n",
    "for key in mapping:\n    emit(key)\n",
    "unique = {f(x) for x in set(values)}\n",  # set-to-set is order-free
    "out = list(sorted(set(values)))\n",
])
def test_det002_negative(snippet):
    assert "DET002" not in rule_ids(snippet)


# -- DET003 ----------------------------------------------------------------

@pytest.mark.parametrize("snippet", [
    "import os\nnames = os.listdir(path)\n",
    "import os\nfor _ in os.walk(path):\n    pass\n",
    "import glob\nfiles = glob.glob(pattern)\n",
    "files = list(path.iterdir())\n",
    "files = list(path.rglob('*.py'))\n",
    "import os\nhome = os.environ['HOME']\n",
    "import os\nhome = os.environ.get('HOME')\n",
    "import os\nscale = os.getenv('SCALE')\n",
])
def test_det003_positive(snippet):
    assert "DET003" in rule_ids(snippet)


@pytest.mark.parametrize("snippet", [
    "import os\nnames = sorted(os.listdir(path))\n",
    "files = sorted(path.iterdir())\n",
    "files = sorted(p for p in path.glob('*.py'))\n",
    "names = parse(environ)\n",
])
def test_det003_negative(snippet):
    assert "DET003" not in rule_ids(snippet)


# -- CONC001 ---------------------------------------------------------------

def test_conc001_positive_mutation_sites():
    source = (
        "_CACHE = {}\n"
        "_SEEN = set()\n"
        "def remember(key, value):\n"
        "    _CACHE[key] = value\n"
        "    _SEEN.add(key)\n"
        "def forget():\n"
        "    _CACHE.clear()\n"
    )
    assert rule_ids(source).count("CONC001") == 3


def test_conc001_positive_global_rebind_and_attr():
    source = (
        "stats = Stats()\n"
        "def bump():\n"
        "    stats.hits += 1\n"
        "def reset():\n"
        "    global stats\n"
        "    stats = Stats()\n"
    )
    ids = rule_ids(source)
    assert ids.count("CONC001") == 2


@pytest.mark.parametrize("snippet", [
    # Local shadowing: the mutated name is function-local.
    "_CACHE = {}\ndef build():\n    _CACHE = {}\n    _CACHE['k'] = 1\n",
    # Read-only access to a module global is fine.
    "_TABLE = {1: 'a'}\ndef lookup(k):\n    return _TABLE.get(k)\n",
    # Module-level construction (import time) is fine.
    "_TABLE = {c: i for i, c in enumerate('abc')}\n",
    # Mutating a parameter is the caller's business, not module state.
    "def add(cache, k, v):\n    cache[k] = v\n",
    # Immutable module global rebinding is outside this rule's scope.
    "_WORKER = None\ndef init(w):\n    global _WORKER\n    _WORKER = w\n",
])
def test_conc001_negative(snippet):
    assert "CONC001" not in rule_ids(snippet)


# -- CONC002 ---------------------------------------------------------------

@pytest.mark.parametrize("snippet", [
    "import os\nos._exit(70)\n",
    "import os\npid = os.fork()\n",
    "import os, signal\nos.kill(pid, signal.SIGKILL)\n",
    "import signal\nsignal.signal(signal.SIGTERM, handler)\n",
])
def test_conc002_positive(snippet):
    assert "CONC002" in rule_ids(snippet)


def test_conc002_negative_and_boundary():
    ok = "import sys\nraise SystemExit(2)\n"
    assert "CONC002" not in rule_ids(ok)
    drill = "import os\nos._exit(70)\n"
    assert rule_ids(drill, path="src/repro/faults/drill.py") == []


# -- HYG001 ----------------------------------------------------------------

@pytest.mark.parametrize("snippet", [
    "def f(items=[]):\n    return items\n",
    "def f(table={}):\n    return table\n",
    "def f(seen=set()):\n    return seen\n",
    "def f(*, extras=list()):\n    return extras\n",
    "g = lambda acc=[]: acc\n",
])
def test_hyg001_positive(snippet):
    assert "HYG001" in rule_ids(snippet)


@pytest.mark.parametrize("snippet", [
    "def f(items=None):\n    return items or []\n",
    "def f(items=()):\n    return items\n",
    "def f(count=0, name=''):\n    return name * count\n",
])
def test_hyg001_negative(snippet):
    assert "HYG001" not in rule_ids(snippet)


# -- HYG002 ----------------------------------------------------------------

@pytest.mark.parametrize("snippet", [
    "try:\n    work()\nexcept:\n    pass\n",
    "try:\n    work()\nexcept Exception:\n    pass\n",
    "try:\n    work()\nexcept Exception as exc:\n    log(exc)\n",
    "try:\n    work()\nexcept (ValueError, Exception):\n    pass\n",
    "try:\n    work()\nexcept BaseException:\n    cleanup()\n",
])
def test_hyg002_positive(snippet):
    assert "HYG002" in rule_ids(snippet)


@pytest.mark.parametrize("snippet", [
    "try:\n    work()\nexcept ValueError:\n    pass\n",
    "try:\n    work()\nexcept ReproError as exc:\n    handle(exc)\n",
    # Bare re-raise makes a broad catch acceptable.
    "try:\n    work()\nexcept Exception:\n    cleanup()\n    raise\n",
])
def test_hyg002_negative(snippet):
    assert "HYG002" not in rule_ids(snippet)


# -- engine behaviour shared by all rules ----------------------------------

def test_findings_carry_location_severity_and_content():
    source = "import time\nstamp = time.time()\n"
    (finding,) = findings(source)
    assert finding.rule == "DET001"
    assert finding.path == "snippet.py"
    assert finding.line == 2
    assert finding.severity == "error"
    assert finding.content == "stamp = time.time()"
    assert "wall clock" in finding.message


def test_unknown_rule_id_rejected():
    from repro.errors import LintError

    with pytest.raises(LintError):
        LintEngine(rules=["DET999"])


def test_rule_subset_only_runs_selected_rules():
    source = "import time\nstamp = time.time()\ndef f(x=[]):\n    return x\n"
    ids = [f.rule for f in LintEngine(rules=["HYG001"]).lint_source(source)]
    assert ids == ["HYG001"]


def test_syntax_error_raises_lint_error():
    from repro.errors import LintError

    with pytest.raises(LintError, match="cannot parse"):
        LintEngine().lint_source("def broken(:\n", "bad.py")
