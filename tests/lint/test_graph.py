"""The program graph itself: module naming, import/call resolution,
explicit unresolved edges, the reverse-dependency cone, layering, and
the content-hash summary cache.

Fixtures build miniature ``src/repro/...`` trees on disk (the graph
derives module names from paths), then either summarise them directly
or run the full engine when cache/report behaviour is under test.
"""

import json
import textwrap

from repro.lint import LintEngine
from repro.lint.graph import (
    ModuleSummary,
    ProgramGraph,
    check_layering,
    extract_summary,
    layer_of,
    module_name,
)
from repro.lint.rules import RULES


def build_tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def make_graph(files):
    summaries = [
        extract_summary(rel, textwrap.dedent(source))
        for rel, source in sorted(files.items())
    ]
    return ProgramGraph(summaries)


# -- module naming ---------------------------------------------------------


def test_module_name_strips_src_and_suffix():
    assert module_name("src/repro/scan/campaign.py") == "repro.scan.campaign"
    assert module_name("src/repro/__init__.py") == "repro"
    assert module_name("src/repro/scan/__init__.py") == "repro.scan"
    assert module_name("tools/helper.py") == "tools.helper"


# -- summary serialisation -------------------------------------------------


def test_summary_json_round_trip():
    source = textwrap.dedent("""\
        import time
        from repro.other import helper

        KINDS = frozenset({"a", "b"})
        _CACHE = {}

        def stamp():
            # repro: allow[DET001] display only
            value = time.time()
            _CACHE["last"] = value
            return helper(value)
    """)
    summary = extract_summary("src/repro/mod.py", source)
    wire = json.loads(json.dumps(summary.to_json()))
    restored = ModuleSummary.from_json(wire)
    assert restored.to_json() == summary.to_json()
    assert restored.module == "repro.mod"
    assert restored.string_sets["KINDS"]["values"] == ["a", "b"]
    assert restored.suppressions  # int keys survive the str round trip
    assert set(restored.suppressions) == set(summary.suppressions)


# -- import edges and the reverse cone ------------------------------------


CYCLE = {
    "src/repro/a.py": """\
        from repro.b import g

        def f():
            return g()
    """,
    "src/repro/b.py": """\
        from repro.a import f

        def g():
            return 1
    """,
}


def test_cyclic_imports_terminate():
    graph = make_graph(CYCLE)
    edges = {(e["src"], e["dst"]) for e in graph.import_edges}
    assert edges == {("repro.a", "repro.b"), ("repro.b", "repro.a")}


def test_importers_cone_over_a_cycle():
    graph = make_graph(CYCLE)
    cone = graph.importers_cone({"src/repro/a.py"})
    assert cone == {"src/repro/a.py", "src/repro/b.py"}


def test_importers_cone_is_transitive():
    graph = make_graph({
        "src/repro/base.py": "def f():\n    return 1\n",
        "src/repro/mid.py": "from repro.base import f\n",
        "src/repro/top.py": "import repro.mid\n",
        "src/repro/island.py": "def g():\n    return 2\n",
    })
    cone = graph.importers_cone({"src/repro/base.py"})
    assert cone == {
        "src/repro/base.py", "src/repro/mid.py", "src/repro/top.py",
    }


# -- call resolution -------------------------------------------------------


def edge_pairs(graph):
    return {
        (caller, callee, kind)
        for caller, edges in graph.call_edges.items()
        for callee, _site, kind in edges
    }


def test_from_import_call_resolves_direct():
    graph = make_graph({
        "src/repro/util.py": "def helper(x):\n    return x\n",
        "src/repro/use.py": """\
            from repro.util import helper

            def run():
                return helper(1)
        """,
    })
    assert ("repro.use:run", "repro.util:helper", "direct") \
        in edge_pairs(graph)


def test_module_alias_call_resolves_direct():
    graph = make_graph({
        "src/repro/util.py": "def helper(x):\n    return x\n",
        "src/repro/use.py": """\
            import repro.util as u

            def run():
                return u.helper(1)
        """,
    })
    assert ("repro.use:run", "repro.util:helper", "direct") \
        in edge_pairs(graph)


def test_relative_import_call_resolves_direct():
    graph = make_graph({
        "src/repro/pkg/__init__.py": "",
        "src/repro/pkg/other.py": "def f():\n    return 1\n",
        "src/repro/pkg/mod.py": """\
            from .other import f

            def g():
                return f()
        """,
    })
    assert ("repro.pkg.mod:g", "repro.pkg.other:f", "direct") \
        in edge_pairs(graph)
    assert ("repro.pkg.mod", "repro.pkg.other") in {
        (e["src"], e["dst"]) for e in graph.import_edges
    }


def test_self_method_call_resolves_within_class():
    graph = make_graph({
        "src/repro/svc.py": """\
            class Service:
                def step(self):
                    return self.refresh()

                def refresh(self):
                    return 1
        """,
    })
    assert ("repro.svc:Service.step", "repro.svc:Service.refresh",
            "direct") in edge_pairs(graph)


def test_unique_method_name_resolves_as_fallback():
    graph = make_graph({
        "src/repro/svc.py": """\
            class Zones:
                def refresh_zones(self):
                    return 1
        """,
        "src/repro/use.py": """\
            def run(zones):
                return zones.refresh_zones()
        """,
    })
    assert ("repro.use:run", "repro.svc:Zones.refresh_zones",
            "fallback") in edge_pairs(graph)


# -- unresolved edges are explicit, never dropped --------------------------


def unresolved_reasons(graph):
    return {(e["caller"], e["reason"]) for e in graph.unresolved}


def test_getattr_call_is_a_dynamic_callee_edge():
    graph = make_graph({
        "src/repro/dyn.py": """\
            def run(obj, name):
                return getattr(obj, name)()
        """,
    })
    assert ("repro.dyn:run", "dynamic-callee") in unresolved_reasons(graph)


def test_callback_parameter_is_an_unknown_callable_edge():
    graph = make_graph({
        "src/repro/cb.py": """\
            def run(callback):
                return callback(1)
        """,
    })
    assert ("repro.cb:run", "unknown-callable") in unresolved_reasons(graph)


def test_unknown_method_is_recorded():
    graph = make_graph({
        "src/repro/use.py": """\
            def run(obj):
                return obj.zzz_missing_method()
        """,
    })
    assert ("repro.use:run", "unknown-method") in unresolved_reasons(graph)


def test_too_common_method_name_is_ambiguous():
    classes = "\n".join(
        f"class C{i}:\n    def frobnicate(self):\n        return {i}\n"
        for i in range(7)
    )
    graph = make_graph({
        "src/repro/many.py": classes,
        "src/repro/use.py": """\
            def run(obj):
                return obj.frobnicate()
        """,
    })
    assert ("repro.use:run", "ambiguous-method (7 candidates)") \
        in unresolved_reasons(graph)
    # No guessed edges out of an ambiguous call.
    assert not any(caller == "repro.use:run"
                   for caller, _callee, _kind in edge_pairs(graph))


# -- reachability witnesses ------------------------------------------------


def test_reachable_from_returns_shortest_witness_paths():
    graph = make_graph({
        "src/repro/chain.py": """\
            def leaf():
                return 1

            def mid():
                return leaf()

            def top():
                mid()
                return leaf()
        """,
    })
    paths = graph.reachable_from(["repro.chain:top"])
    # top reaches leaf both directly and through mid; BFS keeps the
    # direct (shortest) witness.
    assert paths["repro.chain:leaf"] == (
        "repro.chain:top", "repro.chain:leaf")
    assert paths["repro.chain:mid"] == (
        "repro.chain:top", "repro.chain:mid")


# -- export ----------------------------------------------------------------


def test_export_is_json_serialisable_and_complete():
    graph = make_graph(CYCLE)
    document = json.loads(json.dumps(graph.export()))
    assert set(document) == {
        "version", "modules", "import_edges", "call_edges", "unresolved",
    }
    assert {m["module"] for m in document["modules"]} == {
        "repro.a", "repro.b",
    }
    assert all(
        set(e) >= {"caller", "callee", "lineno", "resolution"}
        for e in document["call_edges"]
    )


# -- layering --------------------------------------------------------------


def test_layer_of_assignments():
    assert layer_of("repro") == "app"
    assert layer_of("repro.cli") == "app"
    assert layer_of("repro.scan.campaign") == "scan"
    assert layer_of("repro.mystery.thing") == "?"
    assert layer_of("json") is None


def layer_findings(files):
    graph = make_graph(files)
    return check_layering(graph, RULES["LAYER001"])


def test_layering_flags_upward_import():
    findings = layer_findings({
        "src/repro/dns/zone.py": "from repro.scan.kernel import run\n",
        "src/repro/scan/kernel.py": "def run():\n    return 1\n",
    })
    (finding,) = findings
    assert finding.path == "src/repro/dns/zone.py"
    assert "layer 'dns' may not import layer 'scan'" in finding.message
    assert finding.witness == ["repro.dns.zone", "repro.scan.kernel"]


def test_layering_allows_utilities_and_closure():
    findings = layer_findings({
        # telemetry is a utility plane: importable from anywhere.
        "src/repro/scan/kernel.py": "from repro.telemetry.reg import c\n",
        "src/repro/telemetry/reg.py": "def c():\n    return 1\n",
        # scan -> dns is allowed through the declared transitive
        # closure (scan -> worldgen -> atlas -> dns).
        "src/repro/scan/probe.py": "from repro.dns.zone import z\n",
        "src/repro/dns/zone.py": "def z():\n    return 1\n",
    })
    assert findings == []


def test_layering_flags_module_outside_the_dag():
    findings = layer_findings({
        "src/repro/mystery/thing.py": "def f():\n    return 1\n",
    })
    (finding,) = findings
    assert finding.line == 1
    assert "outside the declared layer DAG" in finding.message


# -- the summary/finding cache --------------------------------------------


CACHED_TREE = {
    "src/repro/clock.py": """\
        import time

        def stamp():
            return time.time()
    """,
    "src/repro/pure.py": """\
        def double(x):
            return 2 * x
    """,
}


def report_key(report):
    return [
        (f.rule, f.path, f.line, f.status) for f in report.findings
    ]


def test_cache_reuses_every_unchanged_file(tmp_path):
    build_tree(tmp_path, CACHED_TREE)
    cache = tmp_path / "cache.json"
    first = LintEngine().run(
        [tmp_path / "src"], root=tmp_path, cache_path=cache)
    assert first.graph_summary["cache"] == {"hits": 0, "misses": 2}
    second = LintEngine().run(
        [tmp_path / "src"], root=tmp_path, cache_path=cache)
    assert second.graph_summary["cache"] == {"hits": 2, "misses": 0}
    # A warm run reproduces the cold run's findings exactly.
    assert report_key(second) == report_key(first)


def test_cache_invalidates_only_the_edited_file(tmp_path):
    build_tree(tmp_path, CACHED_TREE)
    cache = tmp_path / "cache.json"
    LintEngine().run([tmp_path / "src"], root=tmp_path, cache_path=cache)
    (tmp_path / "src/repro/pure.py").write_text(
        "def double(x):\n    return x + x\n")
    report = LintEngine().run(
        [tmp_path / "src"], root=tmp_path, cache_path=cache)
    assert report.graph_summary["cache"] == {"hits": 1, "misses": 1}


def test_corrupt_cache_is_discarded_not_fatal(tmp_path):
    build_tree(tmp_path, CACHED_TREE)
    cache = tmp_path / "cache.json"
    cache.write_text("{not json")
    report = LintEngine().run(
        [tmp_path / "src"], root=tmp_path, cache_path=cache)
    assert report.graph_summary["cache"] == {"hits": 0, "misses": 2}
    # And the bad file was replaced with a valid one.
    assert json.loads(cache.read_text())["entries"]
