"""StatusBoard: publishes, counters, shard liveness, thread safety."""

import threading

from repro.monitor import StatusBoard


def test_publish_and_snapshot():
    board = StatusBoard()
    board.publish(phase="scan", year=2022, month=1)
    board.publish(month=2)
    snapshot = board.snapshot()
    assert snapshot["phase"] == "scan"
    assert snapshot["year"] == 2022
    assert snapshot["month"] == 2


def test_counters_accumulate():
    board = StatusBoard()
    board.add("queries_sent", 100)
    board.add("queries_sent", 50)
    board.add("scans_completed")
    counters = board.snapshot()["counters"]
    assert counters["queries_sent"] == 150
    assert counters["scans_completed"] == 1


def test_shard_liveness_map():
    board = StatusBoard()
    board.shard_state(2, "running")
    board.shard_state(0, "done")
    board.shard_state(2, "crashed")
    assert board.snapshot()["shards"] == {"0": "done", "2": "crashed"}
    board.clear_shards()
    assert board.snapshot()["shards"] == {}


def test_record_checkpoint_stamps_sim_and_wall():
    board = StatusBoard()
    board.record_checkpoint(1234.5, kind="snapshot")
    snapshot = board.snapshot()
    assert snapshot["checkpoint_sim"] == 1234.5
    assert snapshot["checkpoint_kind"] == "snapshot"
    assert snapshot["checkpoint_wall"] > 0


def test_snapshot_is_a_copy():
    board = StatusBoard()
    board.publish(phase="scan")
    board.add("n", 1)
    snapshot = board.snapshot()
    snapshot["phase"] = "mutated"
    snapshot["counters"]["n"] = 999
    snapshot["shards"]["7"] = "bogus"
    fresh = board.snapshot()
    assert fresh["phase"] == "scan"
    assert fresh["counters"] == {"n": 1}
    assert fresh["shards"] == {}


def test_concurrent_adds_are_exact():
    board = StatusBoard()
    threads = [
        threading.Thread(
            target=lambda: [board.add("hits") for _ in range(1000)]
        )
        for _ in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert board.snapshot()["counters"]["hits"] == 8000
