"""EventLog: JSONL schema, sim/wall stamping, canonicalisation, tailing."""

import json

from repro.monitor import (
    EVENT_SCHEMA_VERSION,
    WALL_FIELD,
    EventLog,
    canonical_lines,
    read_events,
)
from repro.monitor.events import EVENT_KINDS
from repro.simtime import SimClock


def test_log_opened_header_first(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path):
        pass
    records = read_events(path)
    assert records[0]["event"] == "log_opened"
    assert records[0]["schema"] == EVENT_SCHEMA_VERSION


def test_emit_stamps_schema_sim_and_wall(tmp_path):
    clock = SimClock()
    clock.advance(42.0)
    with EventLog(tmp_path / "events.jsonl", clock=clock) as log:
        record = log.emit("round_summary", round=3, queries=17)
    assert record["v"] == EVENT_SCHEMA_VERSION
    assert record["sim"] == 42.0
    assert record[WALL_FIELD] > 0
    assert record["round"] == 3
    saved = read_events(tmp_path / "events.jsonl")[-1]
    assert saved == record


def test_lines_are_canonical_json(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path, clock=SimClock()) as log:
        log.emit("churn_detected", domain="x.", value=5, latency=1)
    for line in path.read_text().splitlines():
        record = json.loads(line)
        assert line == json.dumps(record, sort_keys=True, separators=(",", ":"))


def test_canonical_lines_strip_only_wall(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path, clock=SimClock()) as log:
        log.emit("month_started", year=2022, month=1)
    for line in canonical_lines(path):
        record = json.loads(line)
        assert WALL_FIELD not in record
    assert read_events(path)[-1]["year"] == 2022  # original intact


def test_flushed_per_record_for_tailing(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path)
    log.emit("campaign_started", mode="delta")
    # Readable while the writer still holds the handle open.
    assert read_events(path)[-1]["event"] == "campaign_started"
    log.close()


def test_append_only_across_reopens(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        log.emit("campaign_finished", rounds=1)
    with EventLog(path) as log:
        log.emit("campaign_finished", rounds=2)
    kinds = [r["event"] for r in read_events(path)]
    assert kinds == [
        "log_opened",
        "campaign_finished",
        "log_opened",
        "campaign_finished",
    ]


def test_emitted_counter(tmp_path):
    with EventLog(tmp_path / "events.jsonl") as log:
        assert log.emitted == 1  # the header
        log.emit("month_started", year=2022, month=1)
        assert log.emitted == 2


def test_known_kinds_cover_the_emitting_sites():
    # The schema's documented kind set must include everything the
    # pipeline emits (grep-level guard: emission sites use literals).
    for kind in (
        "campaign_started",
        "month_started",
        "month_completed",
        "month_restored",
        "delta_seeded",
        "round_summary",
        "churn_detected",
        "budget_deferral",
        "checkpoint_written",
        "shard_crash",
        "shard_respawn",
        "campaign_finished",
    ):
        assert kind in EVENT_KINDS
