"""EventLog: JSONL schema, sim/wall stamping, canonicalisation, tailing."""

import json

import pytest

from repro.faults import FaultPlan
from repro.faults.profiles import FaultProfile
from repro.monitor import (
    EVENT_SCHEMA_VERSION,
    WALL_FIELD,
    EventLog,
    StatusBoard,
    canonical_lines,
    read_events,
)
from repro.monitor.events import EVENT_KINDS
from repro.simtime import SimClock
from repro.telemetry import Telemetry


def test_log_opened_header_first(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path):
        pass
    records = read_events(path)
    assert records[0]["event"] == "log_opened"
    assert records[0]["schema"] == EVENT_SCHEMA_VERSION


def test_emit_stamps_schema_sim_and_wall(tmp_path):
    clock = SimClock()
    clock.advance(42.0)
    with EventLog(tmp_path / "events.jsonl", clock=clock) as log:
        record = log.emit("round_summary", round=3, queries=17)
    assert record["v"] == EVENT_SCHEMA_VERSION
    assert record["sim"] == 42.0
    assert record[WALL_FIELD] > 0
    assert record["round"] == 3
    saved = read_events(tmp_path / "events.jsonl")[-1]
    assert saved == record


def test_lines_are_canonical_json(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path, clock=SimClock()) as log:
        log.emit("churn_detected", domain="x.", value=5, latency=1)
    for line in path.read_text().splitlines():
        record = json.loads(line)
        assert line == json.dumps(record, sort_keys=True, separators=(",", ":"))


def test_canonical_lines_strip_only_wall(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path, clock=SimClock()) as log:
        log.emit("month_started", year=2022, month=1)
    for line in canonical_lines(path):
        record = json.loads(line)
        assert WALL_FIELD not in record
    assert read_events(path)[-1]["year"] == 2022  # original intact


def test_flushed_per_record_for_tailing(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path)
    log.emit("campaign_started", mode="delta")
    # Readable while the writer still holds the handle open.
    assert read_events(path)[-1]["event"] == "campaign_started"
    log.close()


def test_append_only_across_reopens(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        log.emit("campaign_finished", rounds=1)
    with EventLog(path) as log:
        log.emit("campaign_finished", rounds=2)
    kinds = [r["event"] for r in read_events(path)]
    assert kinds == [
        "log_opened",
        "campaign_finished",
        "log_opened",
        "campaign_finished",
    ]


def test_emitted_counter(tmp_path):
    with EventLog(tmp_path / "events.jsonl") as log:
        assert log.emitted == 1  # the header
        log.emit("month_started", year=2022, month=1)
        assert log.emitted == 2


class TestTornTail:
    """Crash-mid-append footprints: a final line with no terminator."""

    def _torn_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, clock=SimClock()) as log:
            log.emit("campaign_started", mode="delta")
            log.emit("round_summary", round=0, queries=9)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"v":1,"event":"round_su')  # no newline
        return path

    def test_read_events_skips_torn_final_line(self, tmp_path):
        path = self._torn_log(tmp_path)
        kinds = [r["event"] for r in read_events(path)]
        assert kinds == ["log_opened", "campaign_started", "round_summary"]

    def test_canonical_lines_skip_torn_final_line(self, tmp_path):
        path = self._torn_log(tmp_path)
        assert len(canonical_lines(path)) == 3

    def test_mid_file_garbage_still_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("campaign_finished", rounds=1)
        lines = path.read_text().splitlines()
        lines.insert(1, "{corrupt")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_events(path)

    def test_reopen_truncates_torn_tail_before_appending(self, tmp_path):
        path = self._torn_log(tmp_path)
        with EventLog(path, clock=SimClock()) as log:
            log.emit("campaign_finished", rounds=1)
        # Every record parses again: the torn fragment did not swallow
        # or corrupt the reopening log's appends.
        kinds = [r["event"] for r in read_events(path)]
        assert kinds == [
            "log_opened",
            "campaign_started",
            "round_summary",
            "log_opened",
            "campaign_finished",
        ]
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_reopen_keeps_newline_terminated_logs_intact(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("campaign_finished", rounds=1)
        before = path.read_text()
        with EventLog(path):
            pass
        assert path.read_text().startswith(before)


class TestDegradedMode:
    def _gate(self, **rates):
        profile = FaultProfile(name="none", **rates)
        return FaultPlan(profile, seed=7).storage

    def test_write_failure_degrades_instead_of_raising(self, tmp_path):
        telemetry = Telemetry()
        status = StatusBoard()
        log = EventLog(
            tmp_path / "events.jsonl",
            registry=telemetry.registry,
            status=status,
        )
        def _full_disk(_line):
            raise OSError(28, "No space left on device")

        log._handle.write = _full_disk  # every further write fails
        record = log.emit("round_summary", round=1, queries=3)
        assert record["event"] == "round_summary"
        assert log.degraded and log.dropped == 1
        assert status.snapshot()["event_log_degraded"] is True
        assert telemetry.registry.counter("events.dropped").value == 1

    def test_gate_drops_are_content_keyed_and_accounted(self, tmp_path):
        telemetry = Telemetry()
        gate = self._gate(storage_error=0.5)
        with EventLog(
            tmp_path / "a.jsonl",
            clock=SimClock(),
            gate=gate,
            registry=telemetry.registry,
        ) as log:
            for n in range(40):
                log.emit("round_summary", round=n, queries=n)
            dropped_a = log.dropped
        assert 0 < dropped_a < 41  # the gate dropped some, not all
        # Same records, same gate → the same drops, independent of any
        # other stream: content keying, not sequence keying.
        with EventLog(
            tmp_path / "b.jsonl", clock=SimClock(), gate=gate
        ) as log:
            log.emit("checkpoint_written", year=2022, month=1)  # extra
            for n in range(40):
                log.emit("round_summary", round=n, queries=n)
        a = [line for line in canonical_lines(tmp_path / "a.jsonl")
             if "round_summary" in line]
        b = [line for line in canonical_lines(tmp_path / "b.jsonl")
             if "round_summary" in line]
        assert a == b
        counters = telemetry.registry.snapshot()["counters"]
        by_name: dict[str, int] = {}
        for entry in counters:
            by_name[entry["name"]] = by_name.get(entry["name"], 0) + entry["value"]
        injected = by_name.get("faults.storage.injected", 0)
        surfaced = by_name.get("faults.storage.surfaced", 0)
        assert injected == dropped_a == surfaced


def test_known_kinds_cover_the_emitting_sites():
    # The schema's documented kind set must include everything the
    # pipeline emits (grep-level guard: emission sites use literals).
    for kind in (
        "campaign_started",
        "month_started",
        "month_completed",
        "month_restored",
        "delta_seeded",
        "round_summary",
        "churn_detected",
        "budget_deferral",
        "checkpoint_written",
        "shard_crash",
        "shard_respawn",
        "shard_hung",
        "campaign_interrupted",
        "persistence_degraded",
        "round_skipped",
        "campaign_finished",
    ):
        assert kind in EVENT_KINDS
