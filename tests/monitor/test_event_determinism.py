"""Event-log determinism: byte-identical streams across worker counts.

The event schema's contract (DESIGN.md §11): every field except the
wall stamp is a pure function of (seed, scale, settings).  These tests
run the same campaign at workers 1/2/4 and compare the canonical
byte streams (``canonical_lines`` — records minus the wall field)
line for line, for the delta loop (clean and churned) and the full
monthly calendar.
"""

import pytest

from repro.monitor import EventLog, canonical_lines, read_events
from repro.scan.campaign import ScanCampaign
from repro.scan.ecs_scanner import EcsScanSettings
from repro.worldgen import WorldConfig, build_world
from repro.worldgen.deployment import DeploymentChurn, scan_time

SEED = 2022
WORKER_COUNTS = (1, 2, 4)


def _delta_log(tmp_path, workers, churn_after=False):
    """Run seed + 4 delta rounds, optionally injecting churn midway.

    The campaign builds its own scanner/sharded executor from
    ``settings.workers`` and fans the event log out to them — exactly
    the wiring the CLI uses.
    """
    world = build_world(WorldConfig.tiny(seed=SEED))
    settings = EcsScanSettings(workers=workers, campaign_seed=SEED)
    tmp_path.mkdir(parents=True, exist_ok=True)
    path = tmp_path / f"events-w{workers}.jsonl"
    with EventLog(path, clock=world.clock) as events:
        with ScanCampaign(
            world.route53,
            world.routing,
            world.clock,
            settings,
            mode="delta",
            events=events,
        ) as campaign:
            world.clock.advance_to(scan_time(2022, 1))
            engine = campaign.delta_engine()
            engine.ensure_seeded()
            engine.run_round()
            if churn_after:
                churn = DeploymentChurn(
                    world.assignment, world.ingress_v4, world.clock.now
                )
                churn.inject_standard(seed=SEED)
            for _ in range(3):
                engine.run_round()
    return path


@pytest.mark.parametrize("churn", [False, True], ids=["clean", "churned"])
def test_delta_event_stream_identical_across_workers(tmp_path, churn):
    streams = {
        workers: canonical_lines(
            _delta_log(tmp_path / f"w{workers}", workers, churn_after=churn)
        )
        for workers in WORKER_COUNTS
    }
    reference = streams[WORKER_COUNTS[0]]
    assert len(reference) > 4  # header + seeds + round summaries
    if churn:
        assert any('"event":"churn_detected"' in line for line in reference)
    for workers in WORKER_COUNTS[1:]:
        assert streams[workers] == reference, (
            f"workers={workers} event stream diverges from workers=1"
        )


def _full_log(tmp_path, workers):
    world = build_world(WorldConfig.tiny(seed=SEED))
    settings = EcsScanSettings(workers=workers, campaign_seed=SEED)
    tmp_path.mkdir(parents=True, exist_ok=True)
    path = tmp_path / f"full-w{workers}.jsonl"
    with EventLog(path, clock=world.clock) as events:
        with ScanCampaign(
            world.route53,
            world.routing,
            world.clock,
            settings,
            events=events,
        ) as campaign:
            campaign.run(world.scan_months()[:2])
    return path


def test_full_campaign_event_stream_identical_across_workers(tmp_path):
    streams = {
        workers: canonical_lines(_full_log(tmp_path / f"w{workers}", workers))
        for workers in WORKER_COUNTS
    }
    reference = streams[WORKER_COUNTS[0]]
    months = [line for line in reference if '"event":"month_completed"' in line]
    assert len(months) == 2
    for workers in WORKER_COUNTS[1:]:
        assert streams[workers] == reference


def test_wall_field_is_the_only_difference(tmp_path):
    """Two same-seed runs differ in nothing but the wall stamps."""
    first = _delta_log(tmp_path / "a", 1)
    second = _delta_log(tmp_path / "b", 1)
    assert canonical_lines(first) == canonical_lines(second)
    # The raw streams DO carry wall stamps (the field is present).
    assert all("wall" in record for record in read_events(first))
