"""The ``repro-relay monitor`` subcommand and campaign CLI wiring."""

import pytest

from repro.cli import main
from repro.monitor import EventLog, MonitorServer, StatusBoard, read_events
from repro.monitor.cli import fold_events, render_dashboard, render_report
from repro.simtime import SimClock

SCALE = ["--scale", "0.004"]


def _write_demo_log(path):
    clock = SimClock()
    with EventLog(path, clock=clock) as log:
        log.emit("campaign_started", mode="delta", year=2022, month=1, rounds=3)
        log.emit("delta_seeded", domain="mask.icloud.com.", rows=10, queries=50)
        clock.advance(60.0)
        log.emit(
            "round_summary", round=0, queries=12, frac=0.24,
            full_cost=50, changed=0, new=0, removed=0, events=0,
        )
        clock.advance(60.0)
        log.emit(
            "churn_detected", domain="mask.icloud.com.", value=167837696,
            scope=24, change="structure", round=1, latency=1,
        )
        log.emit(
            "churn_detected", domain="mask.icloud.com.", value=167838208,
            scope=24, change="answers", round=1, latency=2,
        )
        log.emit("budget_deferral", round=1, deferred=4)
        log.emit(
            "round_summary", round=1, queries=20, frac=0.40,
            full_cost=50, changed=2, new=0, removed=0, events=2,
        )
        log.emit("shard_crash", domain="mask.icloud.com.", shard=1, attempt=0)
        log.emit("shard_respawn", domain="mask.icloud.com.", shards=[1], attempt=1)
        log.emit("campaign_finished", rounds=2)
    return path


class TestRenderers:
    def test_report_contents(self, tmp_path):
        path = _write_demo_log(tmp_path / "events.jsonl")
        state = fold_events(read_events(path))
        report = render_report(state, str(path))
        assert "mode=delta" in report
        assert "finished=yes" in report
        assert "structure" in report and "answers" in report
        assert "1 crashes, 0 hangs, 1 pool respawns" in report
        assert "baseline" in report
        assert "4 rows total" in report

    def test_dashboard_contents(self, tmp_path):
        path = _write_demo_log(tmp_path / "events.jsonl")
        state = fold_events(read_events(path))
        screen = render_dashboard(state, str(path))
        assert "mode=delta" in screen
        assert "2 done" in screen  # rounds
        assert "2 detected" in screen  # churn
        assert "campaign_finished" in screen

    def test_fold_ignores_unknown_kinds(self):
        state = fold_events(
            [{"v": 99, "event": "from_the_future", "mystery": 1}]
        )
        assert state.total_events == 1
        assert not state.finished


class TestMonitorCommand:
    def test_once_report(self, tmp_path, capsys):
        path = _write_demo_log(tmp_path / "events.jsonl")
        assert main(["monitor", "--event-log", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "monitoring report" in out
        assert "detection latency" in out

    def test_follow_terminates_on_finished(self, tmp_path, capsys):
        path = _write_demo_log(tmp_path / "events.jsonl")
        assert main(["monitor", "--event-log", str(path)]) == 0
        assert "repro-relay monitor" in capsys.readouterr().out

    def test_follow_iterations_cap(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:  # never finishes
            log.emit("campaign_started", mode="delta")
        assert main(
            ["monitor", "--event-log", str(path), "--iterations", "2",
             "--refresh", "0.01"]
        ) == 0

    def test_requires_exactly_one_source(self, tmp_path, capsys):
        assert main(["monitor", "--once"]) == 2
        assert "exactly one" in capsys.readouterr().err
        path = _write_demo_log(tmp_path / "events.jsonl")
        assert main(
            ["monitor", "--event-log", str(path), "--status", "x:1", "--once"]
        ) == 2

    def test_missing_event_log(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["monitor", "--event-log", str(missing), "--once"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_status_once_against_live_server(self, capsys):
        board = StatusBoard()
        board.publish(phase="delta_round", round=7)
        server = MonitorServer(board).start()
        try:
            target = f"127.0.0.1:{server.port}"
            assert main(["monitor", "--status", target, "--once"]) == 0
            out = capsys.readouterr().out
            assert "phase: delta_round" in out
            assert "round: 7" in out
        finally:
            server.stop()

    def test_status_once_unreachable(self, capsys):
        assert main(["monitor", "--status", "127.0.0.1:9", "--once"]) == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_bad_host_port(self, capsys):
        with pytest.raises(SystemExit):
            main(["monitor", "--status", "nocolon", "--once"])


class TestCampaignWiring:
    def test_campaign_event_log_and_serve_status(self, tmp_path, capsys):
        """A delta campaign writes events and serves status while running.

        The ephemeral port announcement proves the server came up before
        the campaign ran; live polling against a scanning campaign is
        exercised by the CI monitoring smoke drill
        (benchmarks/perf/monitor_smoke.py).
        """
        log_path = tmp_path / "events.jsonl"
        snapshot_dir = tmp_path / "snapshots"
        assert main(
            ["campaign", *SCALE, "--mode", "delta",
             "--snapshot-dir", str(snapshot_dir),
             "--rounds", "2",
             "--serve-status", "127.0.0.1:0",
             "--event-log", str(log_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "serving status on http://127.0.0.1:" in out
        assert "http://127.0.0.1:0" not in out  # real bound port announced

        records = read_events(log_path)
        kinds = [record["event"] for record in records]
        assert kinds[0] == "log_opened"
        assert "campaign_started" in kinds
        assert kinds.count("round_summary") == 2
        assert kinds[-1] == "campaign_finished"

    def test_campaign_full_mode_event_log(self, tmp_path, capsys):
        log_path = tmp_path / "events.jsonl"
        assert main(
            ["campaign", *SCALE, "--event-log", str(log_path)]
        ) == 0
        kinds = [record["event"] for record in read_events(log_path)]
        assert kinds.count("month_started") == 4
        assert kinds.count("month_completed") == 4
        assert "checkpoint_written" not in kinds  # no --checkpoint-dir
