"""MonitorServer: endpoint contract, liveness, concurrency, lifecycle."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.monitor import MonitorServer, StatusBoard
from repro.telemetry import Telemetry


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.headers, response.read().decode()


@pytest.fixture()
def server():
    board = StatusBoard()
    telemetry = Telemetry()
    server = MonitorServer(board, telemetry).start()
    yield server
    server.stop()


def test_health_endpoint(server):
    status, headers, body = _get(server.url + "/health")
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    assert json.loads(body)["status"] == "ok"


def test_status_reflects_board_publishes(server):
    server.status.publish(phase="scan", year=2022, month=3)
    server.status.add("queries_sent", 7342)
    _, _, body = _get(server.url + "/status")
    payload = json.loads(body)
    assert payload["phase"] == "scan"
    assert payload["month"] == 3
    assert payload["counters"]["queries_sent"] == 7342


def test_status_derives_checkpoint_age(server):
    server.status.record_checkpoint(100.0)
    _, _, body = _get(server.url + "/status")
    payload = json.loads(body)
    assert payload["checkpoint_sim"] == 100.0
    assert payload["checkpoint_age_s"] >= 0


def test_metrics_renders_live_registry(server):
    server.telemetry.registry.counter("ecs.probes_sent", domain="x.").inc(42)
    status, headers, body = _get(server.url + "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    assert '# TYPE ecs_probes_sent_total counter' in body
    assert 'ecs_probes_sent_total{domain="x."} 42' in body


def test_unknown_path_404(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server.url + "/nope")
    assert excinfo.value.code == 404


def test_non_get_405(server):
    request = urllib.request.Request(server.url + "/status", method="POST")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=5.0)
    assert excinfo.value.code == 405


def test_concurrent_updates_while_polling(server):
    stop = threading.Event()

    def writer():
        i = 0
        while not stop.is_set():
            server.status.publish(round=i)
            server.status.add("ticks")
            server.telemetry.registry.counter("demo.tick", n=str(i % 13)).inc()
            i += 1

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        for _ in range(20):
            _, _, body = _get(server.url + "/status")
            json.loads(body)
            status, _, _ = _get(server.url + "/metrics")
            assert status == 200
    finally:
        stop.set()
        thread.join()


def test_ephemeral_port_reported():
    server = MonitorServer(StatusBoard(), port=0)
    server.start()
    try:
        assert server.port != 0
        status, _, _ = _get(server.url + "/health")
        assert status == 200
    finally:
        server.stop()


def test_stop_releases_and_refuses_double_start():
    server = MonitorServer(StatusBoard()).start()
    port = server.port
    with pytest.raises(RuntimeError):
        server.start()
    server.stop()
    with pytest.raises((urllib.error.URLError, OSError)):
        _get(f"http://127.0.0.1:{port}/health", timeout=1.0)


def test_bind_failure_is_an_oserror():
    first = MonitorServer(StatusBoard()).start()
    try:
        clash = MonitorServer(StatusBoard(), port=first.port)
        with pytest.raises(OSError):
            clash.start()
    finally:
        first.stop()
