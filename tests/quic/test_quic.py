"""Tests for the QUIC packet codec and the ingress endpoint behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QuicError
from repro.quic.endpoint import RELAY_ACCESS_TOKEN, RelayQuicEndpoint
from repro.quic.packet import (
    InitialPacket,
    VersionNegotiationPacket,
    decode_packet,
)
from repro.quic.versions import (
    DRAFT_27,
    DRAFT_28,
    DRAFT_29,
    QUIC_V1,
    RELAY_SUPPORTED_VERSIONS,
    is_forcing_version_negotiation,
    version_name,
)


class TestVersions:
    def test_names(self):
        assert version_name(QUIC_V1) == "QUICv1"
        assert version_name(DRAFT_29) == "draft-29"
        assert version_name(DRAFT_28) == "draft-28"
        assert version_name(DRAFT_27) == "draft-27"
        assert version_name(0xDEADBEEF) == "0xdeadbeef"

    def test_supported_order_matches_paper(self):
        assert RELAY_SUPPORTED_VERSIONS == (QUIC_V1, DRAFT_29, DRAFT_28, DRAFT_27)

    def test_grease_detection(self):
        assert is_forcing_version_negotiation(0x1A2A3A4A)
        assert not is_forcing_version_negotiation(QUIC_V1)


class TestPacketCodec:
    def test_initial_roundtrip(self):
        packet = InitialPacket(
            version=QUIC_V1,
            destination_cid=b"\x01" * 8,
            source_cid=b"\x02" * 5,
            token=b"tok",
            payload=b"hello",
        )
        decoded = decode_packet(packet.to_wire())
        assert decoded == packet

    def test_initial_empty_fields(self):
        packet = InitialPacket(QUIC_V1, b"", b"")
        assert decode_packet(packet.to_wire()) == packet

    def test_vn_roundtrip(self):
        packet = VersionNegotiationPacket(
            destination_cid=b"\x0a" * 4,
            source_cid=b"\x0b" * 4,
            supported_versions=RELAY_SUPPORTED_VERSIONS,
        )
        decoded = decode_packet(packet.to_wire())
        assert isinstance(decoded, VersionNegotiationPacket)
        assert decoded.supported_versions == RELAY_SUPPORTED_VERSIONS

    def test_vn_requires_versions(self):
        with pytest.raises(QuicError):
            VersionNegotiationPacket(b"", b"", ())

    def test_cid_length_limit(self):
        with pytest.raises(QuicError):
            InitialPacket(QUIC_V1, b"\x00" * 21, b"")

    def test_decode_empty(self):
        with pytest.raises(QuicError):
            decode_packet(b"")

    def test_decode_short_header_rejected(self):
        with pytest.raises(QuicError):
            decode_packet(b"\x40\x01\x02")

    def test_decode_truncated(self):
        packet = InitialPacket(QUIC_V1, b"\x01" * 8, b"\x02" * 8, payload=b"x" * 20)
        with pytest.raises(QuicError):
            decode_packet(packet.to_wire()[:10])

    def test_long_token(self):
        packet = InitialPacket(QUIC_V1, b"\x01", b"\x02", token=b"t" * 300)
        assert decode_packet(packet.to_wire()).token == b"t" * 300


class TestRelayEndpoint:
    def test_foreign_handshake_is_dropped(self):
        endpoint = RelayQuicEndpoint()
        packet = InitialPacket(QUIC_V1, b"\x01" * 8, b"\x02" * 8, payload=b"ch")
        assert endpoint.handle_datagram(packet.to_wire()) is None
        assert endpoint.stats.dropped == 1

    def test_unknown_version_triggers_vn(self):
        endpoint = RelayQuicEndpoint()
        packet = InitialPacket(0x1A2A3A4A, b"\x01" * 8, b"\x02" * 8)
        wire = endpoint.handle_datagram(packet.to_wire())
        assert wire is not None
        response = decode_packet(wire)
        assert isinstance(response, VersionNegotiationPacket)
        assert response.supported_versions == RELAY_SUPPORTED_VERSIONS
        # Connection ids swapped per RFC 8999.
        assert response.destination_cid == b"\x02" * 8
        assert response.source_cid == b"\x01" * 8

    def test_draft_versions_accepted_as_known(self):
        endpoint = RelayQuicEndpoint()
        for version in (DRAFT_27, DRAFT_28, DRAFT_29):
            packet = InitialPacket(version, b"\x01", b"\x02")
            assert endpoint.handle_datagram(packet.to_wire()) is None

    def test_relay_token_accepted(self):
        endpoint = RelayQuicEndpoint()
        packet = InitialPacket(
            QUIC_V1, b"\x01" * 8, b"\x02" * 8, token=RELAY_ACCESS_TOKEN
        )
        assert endpoint.handle_datagram(packet.to_wire()) is not None
        assert endpoint.stats.accepted == 1
        assert endpoint.accepts(packet)

    def test_malformed_datagram_counted(self):
        endpoint = RelayQuicEndpoint()
        assert endpoint.handle_datagram(b"\xff") is None
        assert endpoint.stats.malformed == 1

    def test_vn_from_client_dropped(self):
        endpoint = RelayQuicEndpoint()
        vn = VersionNegotiationPacket(b"\x01", b"\x02", (QUIC_V1,))
        assert endpoint.handle_datagram(vn.to_wire()) is None


@given(
    st.integers(min_value=1, max_value=0xFFFFFFFF),
    st.binary(max_size=20),
    st.binary(max_size=20),
    st.binary(max_size=64),
    st.binary(max_size=200),
)
def test_initial_roundtrip_property(version, dcid, scid, token, payload):
    packet = InitialPacket(version, dcid, scid, token, payload)
    assert decode_packet(packet.to_wire()) == packet
