"""Tests for the repro-relay CLI."""

import pytest

from repro.cli import build_parser, main

SCALE = ["--scale", "0.004"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["world-info"])
        assert args.scale == 0.02
        assert args.seed == 2022


class TestCommands:
    def test_world_info(self, capsys):
        assert main(["world-info", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "client ASes" in out
        assert "atlas probes" in out

    def test_ecs_scan(self, capsys):
        assert main(["ecs-scan", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "AS714" in out
        assert "AS36183" in out

    def test_ecs_scan_fallback(self, capsys):
        assert main(["ecs-scan", *SCALE, "--fallback"]) == 0
        assert "mask-h2" in capsys.readouterr().out

    def test_ecs_scan_archive(self, tmp_path, capsys):
        archive = tmp_path / "ingress.csv"
        assert main(["ecs-scan", *SCALE, "--archive", str(archive)]) == 0
        text = archive.read_text()
        assert text.startswith("address,asn,first_seen,last_seen")
        assert "36183" in text

    def test_egress_report(self, capsys):
        assert main(["egress-report", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "US share" in out

    def test_relay_scan(self, capsys):
        assert main(
            ["relay-scan", *SCALE, "--interval", "300", "--duration", "7200"]
        ) == 0
        out = capsys.readouterr().out
        assert "rounds: 24" in out
        assert "address change rate" in out

    def test_archive(self, tmp_path, capsys):
        directory = tmp_path / "bundle"
        assert main(["archive", *SCALE, str(directory)]) == 0
        assert (directory / "MANIFEST.json").exists()
        assert (directory / "ingress-default.csv").exists()
        out = capsys.readouterr().out
        assert "wrote archive" in out

    def test_blocking(self, capsys):
        assert main(["blocking", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "blocked:" in out
        assert "NXDOMAIN" in out


class TestErrorHandling:
    def _rejects(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err
        return err

    def test_non_numeric_scale(self, capsys):
        err = self._rejects(["world-info", "--scale", "abc"], capsys)
        assert "not a number" in err

    def test_negative_scale(self, capsys):
        err = self._rejects(["world-info", "--scale", "-1"], capsys)
        assert "positive" in err

    def test_zero_scale(self, capsys):
        self._rejects(["world-info", "--scale", "0"], capsys)

    def test_zero_workers(self, capsys):
        err = self._rejects(["ecs-scan", *SCALE, "--workers", "0"], capsys)
        assert ">= 1" in err

    def test_non_integer_workers(self, capsys):
        err = self._rejects(["ecs-scan", *SCALE, "--workers", "two"], capsys)
        assert "not an integer" in err

    def test_unknown_subcommand(self, capsys):
        self._rejects(["frobnicate"], capsys)

    def test_unknown_fault_profile(self, capsys):
        self._rejects(["ecs-scan", *SCALE, "--fault-profile", "bogus"], capsys)

    def test_resume_requires_checkpoint_dir(self, tmp_path, capsys):
        code = main(["archive", *SCALE, str(tmp_path / "bundle"), "--resume"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.strip() == "error: --resume requires --checkpoint-dir"


class TestFaults:
    def test_ecs_scan_with_fault_profile(self, capsys):
        assert main(
            ["ecs-scan", *SCALE, "--fault-profile", "lossy"]
        ) == 0
        out = capsys.readouterr().out
        assert "faults:" in out
        assert "retries" in out

    def test_archive_checkpoint_and_resume(self, tmp_path, capsys):
        checkpoints = tmp_path / "ckpt"
        straight = tmp_path / "straight"
        resumed = tmp_path / "resumed"
        base = ["archive", *SCALE, "--fault-profile", "lossy",
                "--checkpoint-dir", str(checkpoints)]
        assert main([*base, str(straight)]) == 0
        assert list(checkpoints.glob("month-*.json"))
        assert main([*base, str(resumed), "--resume"]) == 0
        for name in ("ingress-default.csv", "ingress-fallback.csv"):
            assert (straight / name).read_bytes() == (resumed / name).read_bytes()


class TestTelemetry:
    def test_ecs_scan_writes_snapshot(self, tmp_path, capsys):
        import json

        path = tmp_path / "telemetry.json"
        assert main(["ecs-scan", *SCALE, "--telemetry-out", str(path)]) == 0
        assert "wrote telemetry" in capsys.readouterr().out
        snapshot = json.loads(path.read_text())
        names = {entry["name"] for entry in snapshot["metrics"]["counters"]}
        assert "ecs.probes_sent" in names
        assert "dns.server.answered" in names
        assert any(span["name"] == "ecs.scan" for span in snapshot["spans"])
        assert snapshot["trace"]["traceEvents"]

    def test_prometheus_format_by_suffix(self, tmp_path):
        path = tmp_path / "telemetry.prom"
        assert main(["ecs-scan", *SCALE, "--telemetry-out", str(path)]) == 0
        text = path.read_text()
        assert "# TYPE ecs_probes_sent_total counter" in text
        assert "ecs_scope_bucket" in text

    def test_telemetry_subcommand_renders_snapshot(self, tmp_path, capsys):
        path = tmp_path / "telemetry.json"
        assert main(["ecs-scan", *SCALE, "--telemetry-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["telemetry", str(path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "top counters" in out
        assert out.index("top counters") < out.index("spans (wall vs sim)")
        assert "ecs.scan" in out
        # --top limits the counter table to the 5 largest.
        counter_lines = out.split("top counters")[1].split("gauges:")[0]
        assert len(counter_lines.strip().splitlines()) == 6  # header + 5

    def test_no_flag_no_snapshot(self, capsys):
        assert main(["world-info", *SCALE]) == 0
        assert "telemetry" not in capsys.readouterr().out
