"""Tests for the repro-relay CLI."""

import pytest

from repro.cli import build_parser, main

SCALE = ["--scale", "0.004"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["world-info"])
        assert args.scale == 0.02
        assert args.seed == 2022


class TestCommands:
    def test_world_info(self, capsys):
        assert main(["world-info", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "client ASes" in out
        assert "atlas probes" in out

    def test_ecs_scan(self, capsys):
        assert main(["ecs-scan", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "AS714" in out
        assert "AS36183" in out

    def test_ecs_scan_fallback(self, capsys):
        assert main(["ecs-scan", *SCALE, "--fallback"]) == 0
        assert "mask-h2" in capsys.readouterr().out

    def test_ecs_scan_archive(self, tmp_path, capsys):
        archive = tmp_path / "ingress.csv"
        assert main(["ecs-scan", *SCALE, "--archive", str(archive)]) == 0
        text = archive.read_text()
        assert text.startswith("address,asn,first_seen,last_seen")
        assert "36183" in text

    def test_egress_report(self, capsys):
        assert main(["egress-report", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "US share" in out

    def test_relay_scan(self, capsys):
        assert main(
            ["relay-scan", *SCALE, "--interval", "300", "--duration", "7200"]
        ) == 0
        out = capsys.readouterr().out
        assert "rounds: 24" in out
        assert "address change rate" in out

    def test_archive(self, tmp_path, capsys):
        directory = tmp_path / "bundle"
        assert main(["archive", *SCALE, str(directory)]) == 0
        assert (directory / "MANIFEST.json").exists()
        assert (directory / "ingress-default.csv").exists()
        out = capsys.readouterr().out
        assert "wrote archive" in out

    def test_blocking(self, capsys):
        assert main(["blocking", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "blocked:" in out
        assert "NXDOMAIN" in out
