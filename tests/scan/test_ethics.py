"""Tests of the Section 7 ethics measures as implemented."""

import pytest

from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan.ecs_scanner import EcsScanner, EcsScanSettings


@pytest.fixture(scope="module")
def ethics_world():
    from repro.worldgen import WorldConfig, build_world

    world = build_world(WorldConfig.tiny(seed=55))
    world.clock.advance_to(world.scan_start(2022, 4))
    return world


class TestEthicsMeasures:
    def test_rate_limit_is_strict(self, ethics_world):
        """At the configured 2.2 q/s, the scan stretches over hours."""
        world = ethics_world
        world.route53.stats.reset()
        scanner = EcsScanner(
            world.route53, world.routing, world.clock,
            EcsScanSettings(rate=2.2, burst=10.0),
        )
        result = scanner.scan(RELAY_DOMAIN_QUIC)
        elapsed = result.finished_at - result.started_at
        assert result.queries_sent / elapsed <= 2.2 * 1.01

    def test_server_query_accounting_matches(self, ethics_world):
        """Every query the scanner sends is visible in the server stats —
        the accounting an abuse investigation would rely on."""
        world = ethics_world
        world.route53.stats.reset()
        scanner = EcsScanner(
            world.route53, world.routing, world.clock,
            EcsScanSettings(rate=1e9),
        )
        result = scanner.scan(RELAY_DOMAIN_QUIC)
        assert world.route53.stats.queries == result.queries_sent
        assert world.route53.stats.ecs_queries == result.queries_sent

    def test_unrouted_space_only_sparsely_scanned(self, ethics_world):
        """Non-routable space receives a tiny, bounded query share."""
        world = ethics_world
        scanner = EcsScanner(
            world.route53, world.routing, world.clock,
            EcsScanSettings(rate=1e9, sparse_stride=4096),
        )
        result = scanner.scan(RELAY_DOMAIN_QUIC)
        unrouted_slash24s = (1 << 24) - sum(
            p.count_subnets(24) if p.length <= 24 else 1
            for p in world.routing.routed_v4_prefixes()
        )
        assert result.sparse_queries <= unrouted_slash24s / 4096 + 16

    def test_scope_respect_reduces_load(self, ethics_world):
        """Honouring ECS scopes reduces server load substantially."""
        world = ethics_world
        world.route53.stats.reset()
        pruned = EcsScanner(
            world.route53, world.routing, world.clock,
            EcsScanSettings(rate=1e9, respect_scope=True),
        ).scan(RELAY_DOMAIN_QUIC)
        pruned_queries = world.route53.stats.queries
        routed_24s = sum(
            p.count_subnets(24) if p.length <= 24 else 1
            for p in world.routing.routed_v4_prefixes()
        )
        assert pruned_queries < routed_24s / 3
        assert pruned.addresses()
