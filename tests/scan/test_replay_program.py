"""Replay-program properties: the compiled partition must be exact.

The batch-replay kernel trusts a compiled
:class:`~repro.dns.answer_cache.ReplayProgram` to answer every probe in
a scan range exactly as the per-query plan path would.  These tests
state that contract directly against the program, for every row the
compiler emits (not just the addresses a particular scan happens to
probe), at two world seeds so one lucky assignment layout cannot hide a
partition bug:

* the rows cover the compiled range contiguously, in ascending order;
* at every probe subnet — each row's step-aligned boundaries plus a
  deterministic sweep — the program's answer spec is the very spec the
  per-query ``zone.lookup_plan`` path produces for that subnet;
* the packed scope column agrees with the specs it indexes.

Comparing replay *specs* (scope, rotation counters, counter key, relay
count, supplier) rather than produced addresses keeps the check pure:
``lookup_plan`` does not advance rotation state, so the whole range can
be verified without replaying a scan.
"""

import pytest

from repro.dns.name import DnsName
from repro.dns.rr import RRType
from repro.netmodel.addr import Prefix
from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan.ecs_scanner import EcsScanner
from repro.worldgen import WorldConfig, build_world

SEEDS = (2022, 7)

#: The kernel's probe step for the default /24 source prefix.
SOURCE_LEN = 24
STEP = 1 << (32 - SOURCE_LEN)
SOURCE_MASK = ((1 << SOURCE_LEN) - 1) << (32 - SOURCE_LEN)

#: Evenly spaced extra probes on top of the per-row boundary probes.
SWEEP_PROBES = 4096


@pytest.fixture(scope="module", params=SEEDS)
def compiled(request):
    """(zone, qname, program) for one seed, compiled over the scan range."""
    world = build_world(WorldConfig.tiny(seed=request.param))
    world.clock.advance_to(world.deployment.april_scan_start)
    server = world.route53
    qname = DnsName.parse(RELAY_DOMAIN_QUIC)
    zone = server.zone_for(qname)
    scanner = EcsScanner(server, world.routing, world.clock)
    spans, gaps = scanner.routed_ranges()
    # The same range the kernel compiles: from the first probed address
    # (leading gap included), aligned to the probe grid.
    lo = spans[0][0]
    if gaps and gaps[0][0] < lo:
        lo = gaps[0][0]
    lo &= SOURCE_MASK
    hi = spans[-1][1]
    program = server.answer_cache.replay_program(zone, qname, RRType.A, lo, hi)
    assert program is not None, "scan range must compile on the relay zone"
    return server, zone, qname, program


def _probe_values(program):
    """Every row's step-aligned boundaries, plus an even sweep."""
    values = set()
    for start, end in zip(program.row_starts, program.row_ends):
        first = (start + STEP - 1) & SOURCE_MASK
        if first <= end:
            values.add(first)
        values.add(end & SOURCE_MASK)
    span = program.hi - program.lo + 1
    stride = max(STEP, (span // SWEEP_PROBES) & SOURCE_MASK or STEP)
    values.update(range(program.lo, program.hi + 1, stride))
    return sorted(values)


class TestReplayProgramProperties:
    def test_rows_cover_range_contiguously(self, compiled):
        _, _, _, program = compiled
        starts = program.row_starts
        ends = program.row_ends
        assert starts[0] == program.lo
        assert ends[-1] == program.hi
        assert all(s <= e for s, e in zip(starts, ends))
        assert all(s == e + 1 for s, e in zip(starts[1:], ends))

    def test_specs_match_per_query_plans(self, compiled):
        _, zone, qname, program = compiled
        row_ends = program.row_ends
        row_answer = program.row_answer
        answers = program.answers
        from bisect import bisect_left

        checked = 0
        for value in _probe_values(program):
            row = bisect_left(row_ends, value)
            spec = answers[row_answer[row]]
            planned = zone.lookup_plan(
                qname, RRType.A, Prefix(4, value, SOURCE_LEN)
            )
            assert planned is not None, f"no plan at {value:#x}"
            assert planned[1].replay == spec, (
                f"program answer diverges from per-query plan at {value:#x}"
            )
            checked += 1
        assert checked > len(program)  # every row contributed a probe

    def test_scope_column_matches_specs(self, compiled):
        _, _, _, program = compiled
        for index, scope in zip(program.row_answer, program.row_scopes):
            declared = program.answers[index][0]
            assert scope == (255 if declared is None else declared)

    def test_program_is_cached_within_epoch(self, compiled):
        server, zone, qname, program = compiled
        again = server.answer_cache.replay_program(
            zone, qname, RRType.A, program.lo, program.hi
        )
        assert again is program

    def test_recompilation_is_deterministic(self, compiled):
        _, zone, qname, program = compiled
        enumerator = zone.replay_enumerator(qname, RRType.A)
        rows, specs = enumerator(program.lo, program.hi)
        assert [row[0] for row in rows] == list(program.row_starts)
        assert [row[1] for row in rows] == list(program.row_ends)
        assert [row[2] for row in rows] == list(program.row_answer)
        assert specs == program.answers
