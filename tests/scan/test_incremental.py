"""Delta-scan engine: snapshots, steady state, detection, equivalence.

The engine's contract, tested end to end on tiny worlds:

* a steady-state delta round costs a small fraction of a full rescan
  and surfaces zero change events;
* the refresh wheel re-covers every primary block within
  ``refresh_rounds`` rounds (secondary within the stretched period);
* one injected deployment change of every churn kind surfaces within
  ``refresh_rounds`` rounds;
* the delta-accumulated state stays digest-identical to a fresh full
  rescan of the (churned) world, at every worker count;
* snapshots round-trip through the store, refuse fingerprint
  mismatches, and read as None when torn.

Per-response address *windows* are never asserted across worker
counts: sharded rounds reseed rotation streams per shard, so windows
may differ while every analysis-visible aggregate matches (the same
carve-out as the sharded-equivalence suite).
"""

import json

import pytest

from repro.errors import CheckpointError
from repro.relay.service import RELAY_DOMAIN_FALLBACK, RELAY_DOMAIN_QUIC
from repro.scan.campaign import ScanCampaign
from repro.scan.ecs_scanner import EcsScanner, EcsScanSettings
from repro.scan.incremental import (
    DeltaScanEngine,
    SnapshotStore,
    decode_snapshot,
    encode_snapshot,
    result_digest,
)
from repro.scan.sharding import ShardedCampaignExecutor
from repro.worldgen import WorldConfig, build_world
from repro.worldgen.deployment import DeploymentChurn, scan_time

SEED = 2022
DOMAINS = (RELAY_DOMAIN_QUIC, RELAY_DOMAIN_FALLBACK)


def _make_engine(seed=SEED, workers=1, **engine_kwargs):
    """A fresh tiny world with its scanner/executor and delta engine.

    Every test builds its own: churn drills mutate the assignment map,
    which would poison a shared session world.
    """
    world = build_world(WorldConfig.tiny(seed=seed))
    world.clock.advance_to(scan_time(2022, 1))
    settings = EcsScanSettings(workers=workers, campaign_seed=seed)
    scanner = EcsScanner(world.route53, world.routing, world.clock, settings)
    executor = scanner
    if workers > 1 and ShardedCampaignExecutor.supported():
        executor = ShardedCampaignExecutor(scanner, workers)
    engine = DeltaScanEngine(executor, **engine_kwargs)
    return world, executor, engine


def _close(executor):
    if isinstance(executor, ShardedCampaignExecutor):
        executor.close()


class TestSteadyState:
    @pytest.fixture(scope="class")
    def steady(self):
        world, executor, engine = _make_engine(refresh_rounds=3)
        engine.ensure_seeded()
        rounds = [engine.run_round() for _ in range(6)]
        yield world, engine, rounds
        _close(executor)

    def test_rounds_are_quiet(self, steady):
        _, _, rounds = steady
        assert all(not rnd.events for rnd in rounds)

    def test_rounds_are_cheap(self, steady):
        _, _, rounds = steady
        for rnd in rounds:
            assert 0 < rnd.queries_sent
            assert rnd.queries_frac <= 0.30

    def test_primary_wheel_covers_within_k(self, steady):
        """Every primary row is refreshed in any k consecutive rounds."""
        _, engine, _ = steady
        snapshot = engine.snapshots[RELAY_DOMAIN_QUIC]
        # After 6 rounds, no primary row is older than k rounds.
        assert all(6 - row.refreshed <= 3 for row in snapshot.rows)

    def test_secondary_wheel_covers_within_stretched_period(self, steady):
        _, engine, _ = steady
        assert engine.period(RELAY_DOMAIN_FALLBACK) == 6
        snapshot = engine.snapshots[RELAY_DOMAIN_FALLBACK]
        assert all(row.refreshed >= 0 for row in snapshot.rows)

    def test_accumulated_matches_fresh_full_rescan(self, steady):
        world, engine, _ = steady
        scanner = EcsScanner(
            world.route53, world.routing, world.clock,
            EcsScanSettings(campaign_seed=SEED),
        )
        for domain in DOMAINS:
            accumulated = result_digest(engine.accumulated(domain))
            fresh = result_digest(scanner.scan(domain))
            assert accumulated == fresh, domain


class TestChurnDetection:
    @pytest.fixture(scope="class")
    def drilled(self):
        world, executor, engine = _make_engine(refresh_rounds=3)
        engine.ensure_seeded()
        for _ in range(3):
            engine.run_round()
        churn = DeploymentChurn(
            world.assignment, world.ingress_v4, world.clock.now
        )
        records = churn.inject_standard(seed=SEED)
        rounds = [engine.run_round() for _ in range(3)]
        yield world, engine, records, rounds
        _close(executor)

    def test_all_four_kinds_injected(self, drilled):
        _, _, records, _ = drilled
        assert sorted(r.kind for r in records) == sorted(DeploymentChurn.KINDS)

    def test_every_change_detected_within_k(self, drilled):
        _, _, records, rounds = drilled
        detected = {}
        for attempt, rnd in enumerate(rounds):
            for event in rnd.events:
                detected.setdefault(event.value, attempt + 1)
        for record in records:
            assert record.block_value in detected, record
            assert detected[record.block_value] <= 3, record

    def test_accumulated_matches_full_rescan_of_churned_world(self, drilled):
        world, engine, _, _ = drilled
        scanner = EcsScanner(
            world.route53, world.routing, world.clock,
            EcsScanSettings(campaign_seed=SEED),
        )
        for domain in DOMAINS:
            accumulated = result_digest(engine.accumulated(domain))
            fresh = result_digest(scanner.scan(domain))
            assert accumulated == fresh, domain


class TestBudget:
    def test_budget_defers_and_age_rule_recovers(self):
        _, executor, engine = _make_engine(budget=150, refresh_rounds=3)
        try:
            engine.ensure_seeded()
            unbudgeted_due = sum(
                len(snapshot.rows) + snapshot.sparse_positions
                for snapshot in engine.snapshots.values()
            ) // 3
            rounds = [engine.run_round() for _ in range(12)]
            assert all(rnd.budget_deferred > 0 for rnd in rounds)
            assert all(
                rnd.queries_sent < unbudgeted_due for rnd in rounds
            )
            # Deferred rows re-arm via the age rule: every row still
            # gets refreshed eventually, just on a longer horizon.
            snapshot = engine.snapshots[RELAY_DOMAIN_QUIC]
            refreshed = sum(1 for row in snapshot.rows if row.refreshed >= 0)
            assert refreshed > 0
            latest = max(row.refreshed for row in snapshot.rows)
            assert latest >= 10
        finally:
            _close(executor)


@pytest.mark.skipif(
    not ShardedCampaignExecutor.supported(),
    reason="sharded execution requires the fork start method",
)
class TestWorkerEquivalence:
    @pytest.fixture(scope="class")
    def matrix(self):
        """workers -> (round summaries, accumulated digests, detections)."""
        out = {}
        for workers in (1, 2, 4):
            world, executor, engine = _make_engine(
                workers=workers, refresh_rounds=3
            )
            engine.ensure_seeded()
            for _ in range(3):
                engine.run_round()
            churn = DeploymentChurn(
                world.assignment, world.ingress_v4, world.clock.now
            )
            records = churn.inject_standard(seed=SEED)
            rounds = [engine.run_round() for _ in range(3)]
            digests = {
                domain: result_digest(engine.accumulated(domain))
                for domain in DOMAINS
            }
            detected = {}
            for attempt, rnd in enumerate(rounds):
                for event in rnd.events:
                    detected.setdefault(event.value, attempt + 1)
            summaries = [
                (rnd.index, rnd.queries_sent, rnd.sparse_queries)
                for rnd in engine.rounds
            ]
            out[workers] = (summaries, digests, records, detected)
            _close(executor)
        return out

    def test_accumulated_state_identical_across_worker_counts(self, matrix):
        _, reference, _, _ = matrix[1]
        for workers in (2, 4):
            _, digests, _, _ = matrix[workers]
            assert digests == reference, f"workers={workers}"

    def test_query_accounting_identical_across_worker_counts(self, matrix):
        reference, _, _, _ = matrix[1]
        for workers in (2, 4):
            summaries, _, _, _ = matrix[workers]
            assert summaries == reference, f"workers={workers}"

    def test_detection_identical_across_worker_counts(self, matrix):
        _, _, records, reference = matrix[1]
        for record in records:
            assert record.block_value in reference
        for workers in (2, 4):
            _, _, _, detected = matrix[workers]
            assert detected == reference, f"workers={workers}"


class TestSnapshotStore:
    @pytest.fixture(scope="class")
    def seeded(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("snapshots")
        store = SnapshotStore(directory, {"mode": "delta", "seed": SEED})
        world, executor, engine = _make_engine(store=store)
        engine.ensure_seeded()
        engine.run_round()
        yield directory, store, engine
        _close(executor)

    def test_codec_round_trip(self, seeded):
        _, _, engine = seeded
        for domain in DOMAINS:
            snapshot = engine.snapshots[domain]
            restored = decode_snapshot(encode_snapshot(snapshot))
            assert restored.domain == snapshot.domain
            assert restored.round == snapshot.round
            assert restored.window_max == snapshot.window_max
            assert restored.spans == snapshot.spans
            assert restored.gaps == snapshot.gaps
            assert restored.sparse_positions == snapshot.sparse_positions
            assert [
                (r.value, r.scope, r.addresses, r.asn, r.refreshed, r.changed,
                 r.weight, r.key)
                for r in restored.rows
            ] == [
                (r.value, r.scope, r.addresses, r.asn, r.refreshed, r.changed,
                 r.weight, r.key)
                for r in snapshot.rows
            ]
            assert restored.sparse_rows == snapshot.sparse_rows
            # Roster compaction is merge-history independent: each row's
            # reachable roster survives the trip.
            for old, new in zip(snapshot.rows, restored.rows):
                assert (
                    restored.rosters[restored.find(new.rid)]
                    == snapshot.rosters[snapshot.find(old.rid)]
                )

    def test_store_restores_saved_state(self, seeded):
        directory, store, engine = seeded
        for domain in DOMAINS:
            loaded = store.load(domain)
            assert loaded is not None
            assert loaded.round == engine.snapshots[domain].round

    def test_missing_snapshot_reads_as_none(self, seeded):
        _, store, _ = seeded
        assert store.load("nonexistent.example.") is None

    def test_torn_snapshot_reads_as_none(self, seeded):
        directory, store, _ = seeded
        path = store.path_for(RELAY_DOMAIN_QUIC)
        torn = path.read_text()[: len(path.read_text()) // 2]
        try:
            path.write_text(torn)
            assert store.load(RELAY_DOMAIN_QUIC) is None
        finally:
            path.unlink()

    def test_version_mismatch_reads_as_none(self, seeded):
        directory, store, engine = seeded
        store.save(engine.snapshots[RELAY_DOMAIN_QUIC])
        path = store.path_for(RELAY_DOMAIN_QUIC)
        data = json.loads(path.read_text())
        data["version"] = 999
        path.write_text(json.dumps(data))
        assert store.load(RELAY_DOMAIN_QUIC) is None
        store.save(engine.snapshots[RELAY_DOMAIN_QUIC])

    def test_fingerprint_mismatch_refuses_resume(self, seeded):
        directory, store, engine = seeded
        store.save(engine.snapshots[RELAY_DOMAIN_QUIC])
        other = SnapshotStore(directory, {"mode": "full", "seed": SEED})
        with pytest.raises(CheckpointError):
            other.load(RELAY_DOMAIN_QUIC)


class TestCampaignMode:
    def test_unknown_mode_rejected(self, tiny_world):
        world = tiny_world
        with pytest.raises(ValueError):
            ScanCampaign(
                server=world.route53,
                routing=world.routing,
                clock=world.clock,
                mode="continuous",
            )

    def test_mode_is_part_of_the_fingerprint(self, tiny_world):
        world = tiny_world

        def fingerprint(mode):
            return ScanCampaign(
                server=world.route53,
                routing=world.routing,
                clock=world.clock,
                mode=mode,
            )._fingerprint()

        full, delta = fingerprint("full"), fingerprint("delta")
        assert full != delta
        assert {k: v for k, v in full.items() if k != "mode"} == {
            k: v for k, v in delta.items() if k != "mode"
        }

    def test_delta_engine_requires_delta_mode(self, tiny_world):
        world = tiny_world
        campaign = ScanCampaign(
            server=world.route53,
            routing=world.routing,
            clock=world.clock,
        )
        with pytest.raises(ValueError):
            campaign.delta_engine()
        with pytest.raises(ValueError):
            campaign.run_continuous(2022, 1, 1)

    def test_run_continuous_records_archives(self, tmp_path):
        world = build_world(WorldConfig.tiny(seed=SEED))
        with ScanCampaign(
            server=world.route53,
            routing=world.routing,
            clock=world.clock,
            settings=EcsScanSettings(campaign_seed=SEED),
            mode="delta",
            snapshot_dir=tmp_path,
        ) as campaign:
            rounds = campaign.run_continuous(2022, 1, 2)
            assert len(rounds) == 2
            assert all(not rnd.events for rnd in rounds)
            assert len(campaign.default_archive) > 0
            assert len(campaign.fallback_archive) > 0
            # Seed scan + one record per round.
            assert campaign.default_archive.scan_count() == 3
