"""Fast-path equivalence: the scan engine's caches must be invisible.

Runs the full monthly campaign twice on two same-seed worlds — once with
``EcsScanSettings.fast_path`` on (answer-plan caching, reusable query
template) and once with it off (the reference path) — and requires every
observable output to be bit-identical: the response streams, the query
accounting, the per-AS attribution tables, and the server's own stats.
The campaign spans months with relay deployment churn in between, so the
epoch-token invalidation is exercised, not just asserted.
"""

import pytest

from repro.scan.campaign import ScanCampaign
from repro.scan.ecs_scanner import EcsScanSettings
from repro.worldgen import WorldConfig, build_world


@pytest.fixture(scope="module")
def campaign_pair():
    def run(fast: bool):
        world = build_world(WorldConfig.tiny(seed=2022))
        campaign = ScanCampaign(
            server=world.route53,
            routing=world.routing,
            clock=world.clock,
            settings=EcsScanSettings(fast_path=fast),
        )
        return world, campaign.run(world.scan_months())

    return run(True), run(False)


def _scans(months):
    for month in months:
        yield month.default
        if month.fallback is not None:
            yield month.fallback


class TestFastPathEquivalence:
    def test_response_streams_identical(self, campaign_pair):
        (_, fast), (_, slow) = campaign_pair
        for a, b in zip(_scans(fast), _scans(slow), strict=True):
            assert a.domain == b.domain
            assert a.responses == b.responses
            assert a.sparse_responses == b.sparse_responses

    def test_query_accounting_identical(self, campaign_pair):
        (_, fast), (_, slow) = campaign_pair
        for a, b in zip(_scans(fast), _scans(slow), strict=True):
            assert a.queries_sent == b.queries_sent
            assert a.sparse_queries == b.sparse_queries
            assert a.sparse_answered == b.sparse_answered
            assert a.started_at == b.started_at
            assert a.finished_at == b.finished_at

    def test_attribution_tables_identical(self, campaign_pair):
        (_, fast), (_, slow) = campaign_pair
        for a, b in zip(_scans(fast), _scans(slow), strict=True):
            assert a.addresses() == b.addresses()
            assert a.addresses_by_asn() == b.addresses_by_asn()
            assert a.slash24s_by_asn() == b.slash24s_by_asn()

    def test_server_stats_identical(self, campaign_pair):
        (fast_world, _), (slow_world, _) = campaign_pair
        assert fast_world.route53.stats == slow_world.route53.stats

    def test_fast_path_actually_engaged(self, campaign_pair):
        (fast_world, _), (slow_world, _) = campaign_pair
        fast_cache = fast_world.route53.answer_cache.stats
        slow_cache = slow_world.route53.answer_cache.stats
        # The fast run served every probe (sparse included) from compiled
        # replay programs — accounted as cache hits, with zero per-query
        # misses — and was invalidated by deployment churn between
        # monthly scans; the slow run never touched the cache.
        assert fast_cache.hits > 0
        assert fast_cache.misses == 0
        assert fast_cache.invalidations >= 1
        assert slow_cache.misses == 0
        assert slow_cache.hits == 0


class TestFastPathHitsEquivalence:
    """With scope pruning off, blocks are re-queried and the cache hits.

    The pruned campaign above exercises plan *reuse machinery* but each
    declared block is queried once, so hits stay zero.  A scope-ignoring
    scan of a routed subset re-enters stored blocks and must still be
    bit-identical.
    """

    @pytest.fixture(scope="class")
    def naive_pair(self):
        from repro.relay.service import RELAY_DOMAIN_QUIC
        from repro.scan.ecs_scanner import EcsScanner

        def run(fast: bool):
            world = build_world(WorldConfig.tiny(seed=2022))
            world.clock.advance_to(world.deployment.april_scan_start)
            prefixes = sorted(
                world.routing.routed_v4_prefixes(), key=lambda p: p.value
            )
            subset = [p for p in prefixes if p.length <= 20][:3]

            class SubsetRouting:
                def routed_v4_prefixes(self):
                    return subset

                def origin_of(self, address):
                    return world.routing.origin_of(address)

            scanner = EcsScanner(
                world.route53,
                SubsetRouting(),
                world.clock,
                EcsScanSettings(rate=1e9, respect_scope=False, fast_path=fast),
            )
            return world, scanner.scan(RELAY_DOMAIN_QUIC)

        return run(True), run(False)

    def test_hits_occur_and_results_match(self, naive_pair):
        (fast_world, fast), (slow_world, slow) = naive_pair
        assert fast_world.route53.answer_cache.stats.hits > 0
        assert fast.responses == slow.responses
        assert fast.queries_sent == slow.queries_sent
        assert fast.addresses_by_asn() == slow.addresses_by_asn()
        assert fast_world.route53.stats == slow_world.route53.stats
