"""Tests for the Atlas scanner and the blocking classification."""

import pytest

from repro.netmodel.addr import Prefix
from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan.atlas_scanner import AtlasIngressScanner, AtlasValidation
from repro.scan.blocking import classify_blocking
from repro.scan.ecs_scanner import EcsScanner
from repro.worldgen.internet import RESOLVER_BLOCKS
from repro.worldgen.world import CONTROL_DOMAIN

INGRESS_ASNS = {714, 36183}


@pytest.fixture(scope="module")
def april_context(small_world):
    """ECS April scan, then the clock moved to the Atlas run time."""
    world = small_world
    target = world.deployment.april_scan_start
    if world.clock.now < target:
        world.clock.advance_to(target)
    scanner = EcsScanner(world.route53, world.routing, world.clock)
    ecs = scanner.scan(RELAY_DOMAIN_QUIC)
    atlas_time = world.deployment.april_scan_start + 40 * 3600.0
    if world.clock.now < atlas_time:
        world.clock.advance_to(atlas_time)
    return world, ecs


class TestAtlasValidation:
    def test_atlas_sees_fewer_addresses(self, april_context):
        world, ecs = april_context
        scanner = AtlasIngressScanner(world.atlas, world.routing, INGRESS_ASNS)
        validation = scanner.validate_against_ecs(RELAY_DOMAIN_QUIC, ecs.addresses())
        assert validation.atlas_count < validation.ecs_count
        assert validation.ecs_advantage > 0

    def test_single_atlas_only_address_is_late_relay(self, april_context):
        world, ecs = april_context
        scanner = AtlasIngressScanner(world.atlas, world.routing, INGRESS_ASNS)
        validation = scanner.validate_against_ecs(RELAY_DOMAIN_QUIC, ecs.addresses())
        assert len(validation.atlas_only) <= 1
        for address in validation.atlas_only:
            assert world.routing.origin_of(address) in INGRESS_ASNS

    def test_verification_scan_finds_missing_address(self, april_context):
        world, ecs = april_context
        scanner = AtlasIngressScanner(world.atlas, world.routing, INGRESS_ASNS)
        validation = scanner.validate_against_ecs(RELAY_DOMAIN_QUIC, ecs.addresses())
        verification = EcsScanner(world.route53, world.routing, world.clock).scan(
            RELAY_DOMAIN_QUIC
        )
        assert validation.atlas_only <= verification.addresses()

    def test_hijack_address_filtered(self, april_context):
        world, _ecs = april_context
        scanner = AtlasIngressScanner(world.atlas, world.routing, INGRESS_ASNS)
        addresses = scanner.measure_ingress_v4(RELAY_DOMAIN_QUIC)
        for address in addresses:
            assert world.routing.origin_of(address) in INGRESS_ASNS

    def test_validation_dataclass(self):
        from repro.netmodel.addr import IPAddress

        a = IPAddress.parse("1.1.1.1")
        b = IPAddress.parse("2.2.2.2")
        validation = AtlasValidation({a}, {a, b})
        assert validation.ecs_only == {b}
        assert validation.atlas_only == set()
        assert validation.ecs_advantage == 1


class TestIpv6Discovery:
    def test_rounds_accumulate(self, april_context):
        world, _ecs = april_context
        scanner = AtlasIngressScanner(world.atlas, world.routing, INGRESS_ASNS)
        report = scanner.measure_ingress_v6(RELAY_DOMAIN_QUIC)
        first = len(report.addresses)
        for _ in range(3):
            report = scanner.measure_ingress_v6(RELAY_DOMAIN_QUIC, report)
        assert report.rounds == 4
        assert len(report.addresses) >= first

    def test_v6_addresses_in_ingress_ases(self, april_context):
        world, _ecs = april_context
        scanner = AtlasIngressScanner(world.atlas, world.routing, INGRESS_ASNS)
        report = scanner.measure_ingress_v6(RELAY_DOMAIN_QUIC)
        by_asn = report.by_asn(world.routing)
        assert set(by_asn) <= INGRESS_ASNS
        assert sum(by_asn.values()) == len(report.addresses)

    def test_discovery_close_to_deployment(self, april_context):
        world, _ecs = april_context
        scanner = AtlasIngressScanner(world.atlas, world.routing, INGRESS_ASNS)
        report = None
        for _ in range(4):
            report = scanner.measure_ingress_v6(RELAY_DOMAIN_QUIC, report)
        deployed = len(world.ingress_v6.relays)
        assert 0.85 * deployed <= len(report.addresses) <= deployed


class TestResolverSurvey:
    def test_provider_shares(self, april_context):
        world, _ecs = april_context
        scanner = AtlasIngressScanner(world.atlas, world.routing)
        blocks = {
            provider: Prefix.parse(block)
            for provider, (block, _asn) in RESOLVER_BLOCKS.items()
        }
        shares = scanner.survey_resolvers(blocks)
        assert set(shares) <= set(blocks) | {"local"}
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        # "More than half of all probes" use a public resolver.
        assert scanner.public_resolver_share(shares) > 0.4


class TestBlocking:
    @pytest.fixture(scope="class")
    def report(self, april_context):
        world, _ecs = april_context
        return classify_blocking(
            world.atlas, world.routing, RELAY_DOMAIN_QUIC, CONTROL_DOMAIN,
            INGRESS_ASNS,
        )

    def test_timeout_share_matches_config(self, april_context, report):
        world, _ecs = april_context
        assert abs(report.timeout_share - world.config.atlas_timeout_fraction) < 0.02

    def test_timeouts_not_attributed_to_blocking(self, report):
        # Control-domain timeouts are similar, so timeouts are network
        # issues, not blocking — the paper's conclusion.
        assert not report.timeouts_attributed_to_blocking

    def test_failure_share(self, april_context, report):
        world, _ecs = april_context
        assert abs(report.failure_share - world.config.atlas_block_fraction) < 0.02

    def test_rcode_mix(self, report):
        assert report.rcode_share_of_failures("NXDOMAIN") > 0.5
        assert report.rcode_counts.get("NXDOMAIN", 0) > report.rcode_counts.get(
            "REFUSED", 0
        )

    def test_blocked_share_close_to_paper(self, report):
        # The paper finds 5.5 % of probes blocked at the DNS level.
        assert 0.03 < report.blocked_share < 0.08

    def test_hijack_detected(self, report):
        assert report.hijacked_probes == 1

    def test_refused_only_blocking_when_verified(self, report):
        assert report.refused_verified <= report.rcode_counts.get("REFUSED", 0)

    def test_servfail_formerr_not_blocking(self, report):
        not_blocking = report.rcode_counts.get("SERVFAIL", 0) + report.rcode_counts.get(
            "FORMERR", 0
        )
        assert report.blocked_probes <= report.failures_with_response + report.hijacked_probes - not_blocking
