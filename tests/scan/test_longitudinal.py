"""Tests for the longitudinal ingress archive."""

import pytest

from repro.errors import MeasurementError
from repro.netmodel.addr import IPAddress, Prefix
from repro.scan.ecs_scanner import EcsResponse, EcsScanResult
from repro.scan.longitudinal import IngressArchive

DOMAIN = "mask.icloud.com."


def make_scan(started_at: float, addresses: list[str], asn: int = 36183) -> EcsScanResult:
    scan = EcsScanResult(domain=DOMAIN, started_at=started_at, finished_at=started_at + 10)
    scan.responses.append(
        EcsResponse(
            Prefix.parse("203.0.113.0/24"),
            24,
            tuple(IPAddress.parse(a) for a in addresses),
            asn,
        )
    )
    return scan


class TestIngressArchive:
    def test_record_accumulates(self):
        archive = IngressArchive(DOMAIN)
        assert archive.record(make_scan(0.0, ["172.224.0.1", "172.224.0.2"])) == 2
        assert archive.record(make_scan(100.0, ["172.224.0.2", "172.224.0.3"])) == 1
        assert len(archive) == 3
        assert archive.scan_count() == 2

    def test_domain_mismatch_rejected(self):
        archive = IngressArchive("mask-h2.icloud.com.")
        with pytest.raises(MeasurementError):
            archive.record(make_scan(0.0, ["172.224.0.1"]))

    def test_chronological_order_enforced(self):
        archive = IngressArchive(DOMAIN)
        archive.record(make_scan(100.0, ["172.224.0.1"]))
        with pytest.raises(MeasurementError):
            archive.record(make_scan(50.0, ["172.224.0.1"]))

    def test_sighting_windows(self):
        archive = IngressArchive(DOMAIN)
        archive.record(make_scan(0.0, ["172.224.0.1"]))
        archive.record(make_scan(100.0, ["172.224.0.1"]))
        sighting = archive.sightings()[0]
        assert sighting.first_seen == 0.0
        assert sighting.last_seen == 100.0
        assert sighting.seen_in_window(50.0, 150.0)
        assert not sighting.seen_in_window(101.0, 200.0)

    def test_growth_series(self):
        archive = IngressArchive(DOMAIN)
        archive.record(make_scan(0.0, ["172.224.0.1"]))
        archive.record(make_scan(100.0, ["172.224.0.1", "172.224.0.2"]))
        assert archive.growth_series() == [(0.0, 1), (100.0, 2)]

    def test_churned_addresses(self):
        archive = IngressArchive(DOMAIN)
        archive.record(make_scan(0.0, ["172.224.0.1", "172.224.0.2"]))
        archive.record(make_scan(100.0, ["172.224.0.2"]))
        churned = archive.churned_addresses(as_of=100.0)
        assert churned == {IPAddress.parse("172.224.0.1")}

    def test_stable_addresses(self):
        archive = IngressArchive(DOMAIN)
        archive.record(make_scan(0.0, ["172.224.0.1", "172.224.0.2"]))
        archive.record(make_scan(100.0, ["172.224.0.2", "172.224.0.3"]))
        assert archive.stable_addresses() == {IPAddress.parse("172.224.0.2")}

    def test_csv_roundtrip(self):
        archive = IngressArchive(DOMAIN)
        archive.record(make_scan(0.0, ["172.224.0.1", "172.224.0.2"]))
        archive.record(make_scan(100.0, ["172.224.0.2"]))
        parsed = IngressArchive.from_csv(DOMAIN, archive.to_csv())
        assert len(parsed) == len(archive)
        original = {s.address: (s.first_seen, s.last_seen) for s in archive.sightings()}
        restored = {s.address: (s.first_seen, s.last_seen) for s in parsed.sightings()}
        assert original == restored

    def test_csv_bad_header(self):
        with pytest.raises(MeasurementError):
            IngressArchive.from_csv(DOMAIN, "a,b,c\n")

    def test_csv_bad_window(self):
        text = "address,asn,first_seen,last_seen\n172.224.0.1,36183,100,50\n"
        with pytest.raises(MeasurementError):
            IngressArchive.from_csv(DOMAIN, text)

    def test_record_deduplicates_within_one_scan(self):
        """Repeated addresses in one scan count once in the return value."""
        archive = IngressArchive(DOMAIN)
        scan = make_scan(0.0, ["172.224.0.1", "172.224.0.2"])
        scan.responses.append(
            EcsResponse(
                Prefix.parse("198.51.100.0/24"),
                24,
                (IPAddress.parse("172.224.0.1"),),
                36183,
            )
        )
        assert archive.record(scan) == 2
        assert len(archive) == 2

    def test_record_all_known_returns_zero(self):
        archive = IngressArchive(DOMAIN)
        archive.record(make_scan(0.0, ["172.224.0.1"]))
        assert archive.record(make_scan(100.0, ["172.224.0.1"])) == 0
        assert archive.scan_count() == 2

    def test_record_equal_timestamp_allowed(self):
        """Continuous-monitoring rounds may share a start time; only a
        strictly earlier scan is out of order."""
        archive = IngressArchive(DOMAIN)
        archive.record(make_scan(100.0, ["172.224.0.1"]))
        assert archive.record(make_scan(100.0, ["172.224.0.2"])) == 1

    def test_seen_in_window_boundaries_inclusive(self):
        """Both window endpoints are inclusive on both sighting bounds."""
        archive = IngressArchive(DOMAIN)
        archive.record(make_scan(10.0, ["172.224.0.1"]))
        archive.record(make_scan(100.0, ["172.224.0.1"]))
        sighting = archive.sightings()[0]
        # Window ending exactly at first_seen: still seen.
        assert sighting.seen_in_window(0.0, 10.0)
        # Window starting exactly at last_seen: still seen.
        assert sighting.seen_in_window(100.0, 200.0)
        # Degenerate instant windows at each bound.
        assert sighting.seen_in_window(10.0, 10.0)
        assert sighting.seen_in_window(100.0, 100.0)
        # Just outside either bound: not seen.
        assert not sighting.seen_in_window(0.0, 9.999)
        assert not sighting.seen_in_window(100.001, 200.0)

    def test_seen_in_window_single_sighting(self):
        archive = IngressArchive(DOMAIN)
        archive.record(make_scan(50.0, ["172.224.0.1"]))
        sighting = archive.sightings()[0]
        assert sighting.first_seen == sighting.last_seen == 50.0
        assert sighting.seen_in_window(50.0, 50.0)
        assert not sighting.seen_in_window(0.0, 49.999)
        assert not sighting.seen_in_window(50.001, 100.0)

    def test_campaign_archive_over_world(self, small_world_scans):
        """The four monthly scans build a consistent archive."""
        archive = IngressArchive(DOMAIN)
        new_per_scan = []
        for _y, _m, default, _fallback in small_world_scans:
            new_per_scan.append(archive.record(default))
        # The first scan contributes everything it saw; later scans add
        # only the newly deployed relays.
        assert new_per_scan[0] > 0
        assert sum(new_per_scan) == len(archive)
        assert new_per_scan[-1] > 0  # April's Akamai expansion
        # Addresses retired during the campaign show up as churn.
        last_time = small_world_scans[-1][2].started_at
        churned = archive.churned_addresses(as_of=last_time)
        stable = archive.stable_addresses()
        assert stable
        assert len(stable) + len(churned) <= len(archive)
