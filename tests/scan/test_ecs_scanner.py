"""Tests for the ECS enumeration scanner."""

import pytest

from repro.dns.rr import RRType
from repro.relay.ingress import RelayProtocol
from repro.relay.service import RELAY_DOMAIN_FALLBACK, RELAY_DOMAIN_QUIC
from repro.scan.ecs_scanner import EcsScanner, EcsScanSettings, _merge_spans
from repro.netmodel.addr import Prefix


@pytest.fixture(scope="module")
def april_scan(tiny_world):
    world = tiny_world
    if world.clock.now < world.deployment.april_scan_start:
        world.clock.advance_to(world.deployment.april_scan_start)
    scanner = EcsScanner(world.route53, world.routing, world.clock)
    return scanner.scan(RELAY_DOMAIN_QUIC)


class TestMergeSpans:
    def test_merges_adjacent(self):
        spans = _merge_spans(
            [Prefix.parse("10.0.0.0/24"), Prefix.parse("10.0.1.0/24")]
        )
        assert spans == [(Prefix.parse("10.0.0.0/24").value,
                          Prefix.parse("10.0.1.0/24").broadcast_value)]

    def test_keeps_gaps(self):
        spans = _merge_spans(
            [Prefix.parse("10.0.0.0/24"), Prefix.parse("10.2.0.0/24")]
        )
        assert len(spans) == 2

    def test_nested_prefixes(self):
        spans = _merge_spans(
            sorted([Prefix.parse("10.0.0.0/16"), Prefix.parse("10.0.5.0/24")],
                   key=lambda p: p.value)
        )
        assert spans == [(Prefix.parse("10.0.0.0/16").value,
                          Prefix.parse("10.0.0.0/16").broadcast_value)]

    def test_empty_input(self):
        assert _merge_spans([]) == []

    def test_overlapping_same_start(self):
        spans = _merge_spans(
            [Prefix.parse("10.0.0.0/16"), Prefix.parse("10.0.0.0/24")]
        )
        assert spans == [(Prefix.parse("10.0.0.0/16").value,
                          Prefix.parse("10.0.0.0/16").broadcast_value)]

    def test_partial_overlap_extends_span(self):
        # A span is extended, not duplicated, when the next prefix overlaps
        # its tail.
        spans = _merge_spans(
            [Prefix.parse("10.0.0.0/23"), Prefix.parse("10.0.1.0/24"),
             Prefix.parse("10.0.2.0/24")]
        )
        assert spans == [(Prefix.parse("10.0.0.0/23").value,
                          Prefix.parse("10.0.2.0/24").broadcast_value)]


class _FixedScopeSetup:
    """A one-zone server whose dynamic name answers with a fixed scope."""

    def __init__(self, scope: int | None):
        from repro.dns.name import DnsName
        from repro.dns.rr import a_record
        from repro.dns.server import AuthoritativeServer
        from repro.dns.zone import Zone
        from repro.netmodel.addr import IPAddress
        from repro.simtime import SimClock

        self.clock = SimClock()
        self.server = AuthoritativeServer(IPAddress.parse("192.0.2.53"))
        zone = Zone("example.com.")
        name = DnsName.parse("relay.example.com.")
        answer = IPAddress.parse("198.51.100.7")
        self.queried: list[Prefix] = []

        def handler(qname, subnet):
            self.queried.append(subnet)
            return [a_record(qname, answer)], scope

        zone.add_dynamic(name, RRType.A, handler)
        self.server.add_zone(zone)

    # Routing-table stand-in: one routed /22 starting at 0.0.0.0, so the
    # pruned scan has no unrouted gap (and thus no sparse probes) and the
    # routed walk is exactly four /24 blocks.
    def routed_v4_prefixes(self):
        return [Prefix.parse("0.0.0.0/22")]

    def origin_of(self, address):
        return 64500

    def scan(self, **settings):
        scanner = EcsScanner(
            self.server,
            self,
            self.clock,
            EcsScanSettings(rate=1e9, **settings),
        )
        return scanner.scan("relay.example.com.")


class TestScopeCursorAdvancement:
    """The cursor after each answer honours the declared scope exactly."""

    def test_scope_equal_to_source_steps_one_block(self):
        setup = _FixedScopeSetup(scope=24)
        result = setup.scan()
        # /22 of routed space at /24 granularity: all four blocks queried.
        assert result.queries_sent == 4
        assert [s.value for s in setup.queried] == [
            Prefix.parse(f"0.0.{i}.0/24").value for i in range(4)
        ]
        assert all(r.scope == 24 for r in result.responses)

    def test_scope_wider_than_source_skips_block(self):
        setup = _FixedScopeSetup(scope=23)
        result = setup.scan()
        # Each /23-scoped answer skips the block's second /24.
        assert result.queries_sent == 2
        assert [s.value for s in setup.queried] == [
            Prefix.parse("0.0.0.0/24").value,
            Prefix.parse("0.0.2.0/24").value,
        ]
        assert sum(r.covered_slash24s() for r in result.responses) == 4

    def test_scope_narrower_than_source_does_not_skip(self):
        setup = _FixedScopeSetup(scope=25)
        result = setup.scan()
        # A narrower-than-source scope never widens the cursor step.
        assert result.queries_sent == 4
        assert all(r.scope == 25 for r in result.responses)
        assert all(r.covered_slash24s() == 1 for r in result.responses)

    def test_scope_ignored_when_not_respected(self):
        setup = _FixedScopeSetup(scope=16)
        result = setup.scan(respect_scope=False)
        assert result.queries_sent == 4

    def test_fast_and_reference_paths_advance_identically(self):
        fast = _FixedScopeSetup(scope=23)
        slow = _FixedScopeSetup(scope=23)
        fast_result = fast.scan(fast_path=True)
        slow_result = slow.scan(fast_path=False)
        assert fast.queried == slow.queried
        assert fast_result.queries_sent == slow_result.queries_sent
        assert fast_result.responses == slow_result.responses


class TestEcsScan:
    def test_uncovers_all_active_quic_relays(self, tiny_world, april_scan):
        world = tiny_world
        active = world.ingress_v4.active_addresses(
            world.deployment.april_scan_start, RelayProtocol.QUIC
        )
        assert april_scan.addresses() == active

    def test_two_ases_only(self, tiny_world, april_scan):
        assert set(april_scan.addresses_by_asn()) == {714, 36183}

    def test_scope_pruning_bounds_queries(self, tiny_world, april_scan):
        # Far fewer queries than routed /24s thanks to ECS scopes.
        routed_24s = sum(
            p.count_subnets(24) if p.length <= 24 else 1
            for p in tiny_world.routing.routed_v4_prefixes()
        )
        assert april_scan.queries_sent < routed_24s / 5

    def test_rate_limit_takes_simulated_time(self, april_scan):
        assert april_scan.duration_hours() > 0.05

    def test_sparse_queries_present(self, april_scan):
        assert april_scan.sparse_queries > 0

    def test_covered_slash24s_positive(self, april_scan):
        slash24s = april_scan.slash24s_by_asn()
        assert slash24s[714] > 0
        assert slash24s[36183] > 0

    def test_fallback_scan_differs(self, tiny_world, april_scan):
        world = tiny_world
        scanner = EcsScanner(world.route53, world.routing, world.clock)
        fallback = scanner.scan(RELAY_DOMAIN_FALLBACK)
        active = world.ingress_v4.active_addresses(
            world.deployment.april_scan_start, RelayProtocol.TCP_FALLBACK
        )
        assert fallback.addresses() == active
        assert fallback.addresses().isdisjoint(april_scan.addresses())

    def test_aaaa_enumeration_fails_scope_zero(self, tiny_world):
        # The ECS mechanism does not give per-subnet IPv6 answers: every
        # response claims scope 0, so one query covers everything and the
        # enumeration cannot expand (the paper's IPv6 finding).
        world = tiny_world
        from repro.dns.message import DnsMessage

        query = DnsMessage.query(
            RELAY_DOMAIN_QUIC, RRType.A, ecs=Prefix.parse("2001:db8::/56")
        )
        response = world.route53.handle(query)
        assert response.client_subnet.scope_prefix_length == 0

    def test_no_scope_respect_increases_queries(self, tiny_world):
        world = tiny_world
        # Restrict to a handful of routed prefixes for a bounded compare.
        prefixes = sorted(world.routing.routed_v4_prefixes(), key=lambda p: p.value)
        subset = [p for p in prefixes if p.length <= 20][:3]

        class SubsetRouting:
            def routed_v4_prefixes(self):
                return subset

            def origin_of(self, address):
                return world.routing.origin_of(address)

        pruned = EcsScanner(
            world.route53, SubsetRouting(), world.clock,
            EcsScanSettings(rate=1e9, respect_scope=True),
        ).scan(RELAY_DOMAIN_QUIC)
        naive = EcsScanner(
            world.route53, SubsetRouting(), world.clock,
            EcsScanSettings(rate=1e9, respect_scope=False),
        ).scan(RELAY_DOMAIN_QUIC)
        assert naive.queries_sent > pruned.queries_sent
        assert naive.addresses() >= pruned.addresses()

    def test_slash24_accounting_consistent(self, tiny_world):
        # With scope respected, covered /24s per response sum to the same
        # total a naive /24 walk would attribute.
        world = tiny_world
        # Client-AS prefixes only: infrastructure blocks mix per-site /24
        # scopes with wide default scopes, which legitimately over-counts.
        prefixes = sorted(
            (
                p
                for p in world.routing.routed_v4_prefixes()
                if (world.routing.origin_of(p.network_address) or 0) >= 100_000
            ),
            key=lambda p: p.value,
        )
        subset = [p for p in prefixes if 16 <= p.length <= 20][:2]

        class SubsetRouting:
            def routed_v4_prefixes(self):
                return subset

            def origin_of(self, address):
                return world.routing.origin_of(address)

        pruned = EcsScanner(
            world.route53, SubsetRouting(), world.clock,
            EcsScanSettings(rate=1e9),
        ).scan(RELAY_DOMAIN_QUIC)
        total = sum(r.covered_slash24s() for r in pruned.responses)
        expected = sum(p.count_subnets(24) for p in subset)
        assert total == expected
