"""Tests for the relay scanner and the QUIC scanner."""

import pytest

from repro.dns.rr import RRType
from repro.netmodel.addr import IPAddress
from repro.relay.client import DnsConfig
from repro.relay.ingress import RelayProtocol
from repro.scan.quic_scanner import QuicScanner
from repro.scan.relay_scanner import RelayScanConfig, RelayScanner


@pytest.fixture(scope="module")
def day_series(tiny_world):
    world = tiny_world
    client = world.make_vantage_client()
    scanner = RelayScanner(client, world.web_server, world.echo_server, world.clock)
    return scanner.run(RelayScanConfig(300.0, 86400.0), "open")


class TestRelayScanner:
    def test_round_count(self, day_series):
        assert len(day_series) == 288  # 86400 / 300
        assert day_series.failures == 0

    def test_operator_series_relative_time(self, day_series):
        series = day_series.operator_series()
        assert series[0][0] == 0.0
        assert series[-1][0] == pytest.approx(86100.0)

    def test_operators_at_vantage(self, day_series):
        # Only Cloudflare and Akamai-PR serve the vantage; Fastly absent.
        assert day_series.operators_seen() <= {13335, 36183}
        assert 54113 not in day_series.operators_seen()

    def test_operator_changes_are_a_handful(self, day_series):
        changes = day_series.operator_changes()
        assert 0 <= len(changes) < 25
        for _t, old, new in changes:
            assert old != new

    def test_address_rotation_above_paper_threshold(self, tiny_world):
        world = tiny_world
        client = world.make_vantage_client()
        scanner = RelayScanner(client, world.web_server, world.echo_server, world.clock)
        series = scanner.run(RelayScanConfig(30.0, 86400.0), "fine")
        assert series.address_change_rate() > 0.6

    def test_distinct_addresses_small(self, tiny_world, day_series):
        world = tiny_world
        distinct = day_series.distinct_addresses()
        assert 2 <= len(distinct) <= 2 * world.config.egress_pool_addresses

    def test_distinct_subnets(self, tiny_world, day_series):
        count = day_series.distinct_subnets(tiny_world.egress_list_may)
        assert 1 <= count <= len(day_series.distinct_addresses())

    def test_parallel_divergence(self, day_series):
        assert day_series.parallel_divergence_rate() > 0.3

    def test_fixed_dns_scan_same_behaviour(self, tiny_world):
        world = tiny_world
        ingress = sorted(
            world.ingress_v4.active_addresses(world.clock.now, RelayProtocol.QUIC)
        )[0]
        client = world.make_vantage_client(
            DnsConfig.fixed({("mask.icloud.com", RRType.A): [ingress]})
        )
        scanner = RelayScanner(client, world.web_server, world.echo_server, world.clock)
        series = scanner.run(RelayScanConfig(30.0, 43200.0), "fixed")
        assert series.ingress_addresses() == {ingress}
        assert series.address_change_rate() > 0.6

    def test_blocked_client_records_failures(self, tiny_world):
        world = tiny_world
        client = world.make_vantage_client(DnsConfig.fixed({}))
        scanner = RelayScanner(client, world.web_server, world.echo_server, world.clock)
        series = scanner.run(RelayScanConfig(300.0, 3600.0), "blocked")
        assert len(series) == 0
        assert series.failures == 12

    def test_ingress_addresses_observed(self, day_series, tiny_world):
        for address in day_series.ingress_addresses():
            assert tiny_world.routing.origin_of(address) in (714, 36183)


class TestQuicScanner:
    def test_handshakes_time_out_versions_negotiated(self, tiny_world):
        world = tiny_world
        addresses = sorted(
            world.ingress_v4.active_addresses(world.clock.now, RelayProtocol.QUIC)
        )
        report = QuicScanner(world.service).scan(list(addresses))
        assert report.probed == len(addresses)
        assert report.all_handshakes_timed_out
        assert report.version_negotiations == len(addresses)
        assert report.dominant_versions() == (
            "QUICv1", "draft-29", "draft-28", "draft-27",
        )

    def test_fallback_relays_unreachable_over_quic(self, tiny_world):
        world = tiny_world
        fallback = sorted(
            world.ingress_v4.active_addresses(
                world.clock.now, RelayProtocol.TCP_FALLBACK
            )
        )
        report = QuicScanner(world.service).scan(fallback[:3])
        assert report.unreachable == min(3, len(fallback))

    def test_random_address_unreachable(self, tiny_world):
        report = QuicScanner(tiny_world.service).scan([IPAddress.parse("192.0.2.99")])
        assert report.unreachable == 1
        assert report.version_negotiations == 0
