"""Sharded-execution equivalence: worker count must be invisible.

Runs the monthly campaign on same-seed worlds with ``workers`` 1, 2 and
4 and requires the sharded runs to reproduce the sequential run's
observable outputs: the query stream (subnets and scopes, in order),
the query accounting and rate-limit timeline, the discovered ingress
sets and their per-AS attribution, the Table 1/2 analysis outputs, and
the server's own stats.  Two campaign seeds guard against a lucky
rotation alignment.

What is *not* asserted: per-response address windows.  Each shard's
rotation streams start at a seeded offset rather than wherever the
sequential walk happened to leave them, so an individual answer may
show a different 8-record window of the same pod pool — the paper's
analyses only consume the per-scan address sets, which must (and do)
come out identical.
"""

import pytest

from repro.analysis.ingress_report import build_table1, build_table2
from repro.scan.campaign import ScanCampaign
from repro.scan.ecs_scanner import EcsScanSettings
from repro.scan.sharding import (
    ShardedCampaignExecutor,
    plan_shards,
    rotation_base,
    shard_alignment,
)
from repro.worldgen import WorldConfig, build_world

pytestmark = pytest.mark.skipif(
    not ShardedCampaignExecutor.supported(),
    reason="sharded execution requires the fork start method",
)

SEEDS = (2022, 7)
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def campaign_matrix():
    """(seed, workers) -> (world, monthly scans) for the whole matrix."""
    matrix = {}
    for seed in SEEDS:
        for workers in WORKER_COUNTS:
            world = build_world(WorldConfig.tiny(seed=seed))
            with ScanCampaign(
                server=world.route53,
                routing=world.routing,
                clock=world.clock,
                settings=EcsScanSettings(workers=workers, campaign_seed=seed),
            ) as campaign:
                campaign.run(world.scan_months())
            matrix[(seed, workers)] = (world, campaign)
    return matrix


def _scans(campaign):
    for month in campaign.months:
        yield month.default
        if month.fallback is not None:
            yield month.fallback


def _pairs(matrix):
    for seed in SEEDS:
        sequential = matrix[(seed, 1)]
        for workers in WORKER_COUNTS[1:]:
            yield seed, workers, sequential, matrix[(seed, workers)]


class TestShardedEquivalence:
    def test_query_streams_identical(self, campaign_matrix):
        for seed, workers, (_, seq), (_, sharded) in _pairs(campaign_matrix):
            for a, b in zip(_scans(seq), _scans(sharded), strict=True):
                assert a.domain == b.domain
                assert [(r.subnet, r.scope) for r in a.responses] == [
                    (r.subnet, r.scope) for r in b.responses
                ], f"seed={seed} workers={workers} {a.domain}"
                assert [(r.subnet, r.scope) for r in a.sparse_responses] == [
                    (r.subnet, r.scope) for r in b.sparse_responses
                ]

    def test_query_accounting_identical(self, campaign_matrix):
        for seed, workers, (_, seq), (_, sharded) in _pairs(campaign_matrix):
            for a, b in zip(_scans(seq), _scans(sharded), strict=True):
                assert a.queries_sent == b.queries_sent
                assert a.sparse_queries == b.sparse_queries
                assert a.sparse_answered == b.sparse_answered

    def test_rate_limit_timeline_identical(self, campaign_matrix):
        """The merged clock replay is bit-identical to sequential."""
        for seed, workers, (_, seq), (_, sharded) in _pairs(campaign_matrix):
            for a, b in zip(_scans(seq), _scans(sharded), strict=True):
                assert a.started_at == b.started_at
                assert a.finished_at == b.finished_at

    def test_ingress_sets_identical(self, campaign_matrix):
        for seed, workers, (_, seq), (_, sharded) in _pairs(campaign_matrix):
            for a, b in zip(_scans(seq), _scans(sharded), strict=True):
                assert a.addresses() == b.addresses(), (
                    f"seed={seed} workers={workers} {a.domain}"
                )

    def test_per_as_attribution_identical(self, campaign_matrix):
        for seed, workers, (_, seq), (_, sharded) in _pairs(campaign_matrix):
            for a, b in zip(_scans(seq), _scans(sharded), strict=True):
                assert a.addresses_by_asn() == b.addresses_by_asn()
                assert a.slash24s_by_asn() == b.slash24s_by_asn()

    def test_server_stats_identical(self, campaign_matrix):
        for _, _, (seq_world, _), (sharded_world, _) in _pairs(campaign_matrix):
            assert seq_world.route53.stats == sharded_world.route53.stats

    def test_archives_identical(self, campaign_matrix):
        for _, _, (_, seq), (_, sharded) in _pairs(campaign_matrix):
            assert seq.default_archive.to_csv() == sharded.default_archive.to_csv()
            assert (
                seq.fallback_archive.to_csv() == sharded.fallback_archive.to_csv()
            )

    def test_table1_identical(self, campaign_matrix):
        for _, _, (_, seq), (_, sharded) in _pairs(campaign_matrix):
            a = build_table1(seq.table1_input())
            b = build_table1(sharded.table1_input())
            assert a.render() == b.render()
            assert a.final_total() == b.final_total()

    def test_table2_identical(self, campaign_matrix):
        for _, _, (seq_world, seq), (sh_world, sharded) in _pairs(campaign_matrix):
            a = build_table2(
                seq.latest_default(), seq_world.routing, seq_world.population
            )
            b = build_table2(
                sharded.latest_default(), sh_world.routing, sh_world.population
            )
            assert a.render() == b.render()


class TestShardPlanning:
    SPANS = [(0, 0x0FFF_FFFF), (0x2000_0000, 0x5FFF_FFFF), (0xA000_0000, 0xAFFF_FFFF)]
    GAPS = [(0x1000_0000, 0x1FFF_FFFF), (0x6000_0000, 0x9FFF_FFFF)]

    def test_plans_cover_spans_and_gaps_exactly(self):
        plans = plan_shards(self.SPANS, self.GAPS, 4, 1 << 20)
        assert 1 < len(plans) <= 4
        assert [p.index for p in plans] == list(range(len(plans)))
        # Disjoint ascending regions.
        for before, after in zip(plans, plans[1:]):
            assert before.end < after.start
        # The union of clipped pieces reproduces the inputs exactly.
        merged_spans = _merge([s for p in plans for s in p.spans])
        merged_gaps = _merge([g for p in plans for g in p.gaps])
        assert merged_spans == self.SPANS
        assert merged_gaps == self.GAPS

    def test_boundaries_are_aligned(self):
        alignment = 1 << 22
        plans = plan_shards(self.SPANS, self.GAPS, 8, alignment)
        for plan in plans[1:]:
            assert plan.start % alignment == 0

    def test_single_worker_yields_single_plan(self):
        plans = plan_shards(self.SPANS, self.GAPS, 1, 1 << 20)
        assert len(plans) == 1
        assert plans[0].spans == tuple(self.SPANS)
        assert plans[0].gaps == tuple(self.GAPS)

    def test_volume_balance(self):
        plans = plan_shards(self.SPANS, self.GAPS, 4, 1 << 16)
        total = sum(p.routed_addresses() for p in plans)
        assert total == sum(end - start + 1 for start, end in self.SPANS)
        share = total / len(plans)
        for plan in plans:
            assert plan.routed_addresses() <= share * 2

    def test_alignment_covers_every_jump_size(self):
        alignment = shard_alignment([8, 16, 24], 24, 4096)
        assert alignment % (1 << 24) == 0  # widest routed prefix (/8)
        assert alignment % (1 << 8) == 0  # the /24 walk step
        assert alignment % (4096 << 8) == 0  # the sparse-probe stride

    def test_rotation_base_is_deterministic_and_spread(self):
        assert rotation_base(2022, 3) == rotation_base(2022, 3)
        bases = {rotation_base(2022, index) for index in range(16)}
        assert len(bases) == 16
        assert rotation_base(2022, 0) != rotation_base(7, 0)


def _merge(ranges):
    out = []
    for start, end in sorted(ranges):
        if out and start <= out[-1][1] + 1:
            out[-1] = (out[-1][0], max(out[-1][1], end))
        else:
            out.append((start, end))
    return out
