"""Tests for the campaign orchestrator, ZMap sweep, and traceroute campaign."""

import pytest

from repro.netmodel.addr import IPAddress, Prefix
from repro.relay.ingress import RelayProtocol
from repro.scan.campaign import ScanCampaign
from repro.scan.traceroute_campaign import (
    LabelledTarget,
    run_traceroute_campaign,
)
from repro.scan.zmap import ZmapQuicSweep
from repro.worldgen import WorldConfig, build_world


@pytest.fixture(scope="module")
def campaign_world():
    """A dedicated world: the campaign advances the shared clock a lot."""
    return build_world(WorldConfig.tiny(seed=77))


@pytest.fixture(scope="module")
def campaign(campaign_world):
    world = campaign_world
    runner = ScanCampaign(world.route53, world.routing, world.clock)
    runner.run(world.scan_months())
    return runner


class TestScanCampaign:
    def test_four_months(self, campaign):
        assert len(campaign.months) == 4
        assert campaign.months[0].fallback is None  # January gap
        assert campaign.months[1].fallback is not None

    def test_table1_input_shape(self, campaign):
        from repro.analysis import build_table1

        table1 = build_table1(campaign.table1_input())
        assert len(table1.rows) == 4
        # At the tiny scale, deployment counts floor at their minimums,
        # so growth can flatten to zero — never negative.
        assert table1.quic_growth() >= 0

    def test_archives_accumulate(self, campaign, campaign_world):
        world = campaign_world
        april_active = world.ingress_v4.active_addresses(
            world.deployment.april_scan_start, RelayProtocol.QUIC
        )
        # The archive holds every address April had, plus churned ones.
        archive_addresses = {s.address for s in campaign.default_archive.sightings()}
        assert april_active <= archive_addresses
        assert campaign.default_archive.scan_count() == 4
        assert campaign.fallback_archive.scan_count() == 3

    def test_ingress_asns(self, campaign):
        assert campaign.ingress_asns() == {714, 36183}

    def test_latest_default(self, campaign):
        assert campaign.latest_default() is campaign.months[-1].default

    def test_latest_before_run_fails(self, campaign_world):
        runner = ScanCampaign(
            campaign_world.route53, campaign_world.routing, campaign_world.clock
        )
        with pytest.raises(ValueError):
            runner.latest_default()


class TestZmapSweep:
    def test_sweep_addresses(self, campaign_world, campaign):
        world = campaign_world
        addresses = sorted(campaign.latest_default().addresses())
        sweep = ZmapQuicSweep(world.service, world.clock)
        result = sweep.sweep_addresses(addresses)
        assert result.probes_sent == len(addresses)
        assert result.responsive_addresses() == set(addresses)
        profile = result.version_profile()
        assert list(profile) == [("QUICv1", "draft-29", "draft-28", "draft-27")]

    def test_sweep_prefix_finds_only_relays(self, campaign_world, campaign):
        world = campaign_world
        # Sweep the /24 of one ingress relay: only deployed addresses
        # respond, the rest of the prefix is silent.
        address = sorted(campaign.latest_default().addresses())[0]
        prefix = Prefix.from_address(address, 24)
        sweep = ZmapQuicSweep(world.service, world.clock)
        result = sweep.sweep_prefixes([prefix])
        assert result.probes_sent == 256
        assert address in result.responsive_addresses()
        assert result.silent == 256 - len(result.responsive)

    def test_rate_limit_advances_clock(self, campaign_world):
        world = campaign_world
        sweep = ZmapQuicSweep(world.service, world.clock, rate=100.0, burst=1.0)
        before = world.clock.now
        sweep.sweep_addresses([IPAddress.parse("192.0.2.1")] * 50)
        assert world.clock.now - before == pytest.approx(49 / 100.0)


class TestTracerouteCampaign:
    def test_mixed_cluster_detected(self, campaign_world):
        world = campaign_world
        # An Akamai-PR ingress relay at a European pod (the vantage's
        # region) plus the Akamai egress pool for the vantage country:
        # they share a regional site, hence a last hop.
        ingress = next(
            r.address
            for r in world.ingress_v4.relays
            if r.asn == 36183 and r.pod.startswith("EU-")
            and r.is_active(world.clock.now)
        )
        targets = [LabelledTarget(ingress, "ingress", 36183)]
        pool = world.egress_fleet.pool_for(36183, world.config.vantage_country)
        for address in pool.addresses:
            targets.append(LabelledTarget(address, "egress", 36183))
        result = run_traceroute_campaign(
            world.topology, world.vantage_router_id, targets
        )
        assert result.shared_last_hop_found()
        assert 36183 in result.asns_with_mixed_sites()
        assert not result.unreachable
        assert len(result.traces) == len(targets)

    def test_disjoint_operators_never_mix(self, campaign_world):
        world = campaign_world
        pool_cf = world.egress_fleet.pool_for(13335, world.config.vantage_country)
        apple_ingress = [
            r.address
            for r in world.ingress_v4.relays
            if r.asn == 714 and r.is_active(world.clock.now)
        ]
        targets = [LabelledTarget(apple_ingress[0], "ingress", 714)]
        targets += [LabelledTarget(a, "egress", 13335) for a in pool_cf.addresses]
        result = run_traceroute_campaign(
            world.topology, world.vantage_router_id, targets
        )
        assert not result.shared_last_hop_found()

    def test_unreachable_targets_reported(self, campaign_world):
        world = campaign_world
        targets = [LabelledTarget(IPAddress.parse("198.18.0.1"), "ingress")]
        result = run_traceroute_campaign(
            world.topology, world.vantage_router_id, targets
        )
        assert result.unreachable == targets
        assert not result.clusters
