"""Shared-memory shard IPC: segments must never outlive a scan.

The sharded executor names one shared-memory segment per shard attempt
(workers write their result columns into it; the parent adopts the
columns zero-copy and unlinks the name).  The cleanup contract is
unconditional: after ``scan()`` returns — or raises, or a worker
crashed mid-write — no ``repro-*`` segment may remain linked in the
system namespace, and the executor's live-segment ledger must be empty.
A leaked segment is real leaked RAM (``/dev/shm`` is memory), so these
tests check the OS namespace, not just the ledger.

The subprocess test additionally asserts the resource tracker stays
silent: a double-registered or double-unlinked name makes Python print
``leaked shared_memory`` / ``KeyError`` noise at interpreter exit,
which is exactly how an ownership bug would first show up in CI.
"""

import os
import subprocess
import sys

import pytest

from repro.faults import FaultPlan
from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan.ecs_scanner import EcsScanner, EcsScanSettings
from repro.scan.sharding import ShardedCampaignExecutor, shared_memory
from repro.worldgen import WorldConfig, build_world

pytestmark = pytest.mark.skipif(
    not ShardedCampaignExecutor.supported() or shared_memory is None,
    reason="shm shard IPC requires fork start method and shared memory",
)

SEED = 2022
SHM_DIR = "/dev/shm"


def _executor(plan=None, workers=4):
    world = build_world(WorldConfig.tiny(seed=SEED))
    settings = EcsScanSettings(workers=workers, campaign_seed=SEED, fault_plan=plan)
    scanner = EcsScanner(world.route53, world.routing, world.clock, settings)
    return ShardedCampaignExecutor(scanner, workers)


def _linked_segments(pid=None):
    """``repro-*`` segment names currently linked for one parent pid."""
    if not os.path.isdir(SHM_DIR):
        pytest.skip("no /dev/shm to inspect")
    prefix = f"repro-{os.getpid() if pid is None else pid}-"
    return [name for name in os.listdir(SHM_DIR) if name.startswith(prefix)]


class TestSegmentLifecycle:
    def test_scan_leaves_no_linked_segments(self):
        with _executor() as executor:
            result = executor.scan(RELAY_DOMAIN_QUIC)
            assert result.queries_sent > 0
            # Adoption unlinks eagerly: clean even while the result (and
            # its zero-copy columns) is still alive, not just at close().
            assert executor._live_segments == set()
            assert _linked_segments() == []

    def test_worker_crash_recovery_unlinks_segments(self):
        # The hostile profile kills shard 1's worker on its first
        # attempt: the segment named for the dead attempt must be swept,
        # and the re-run's segment adopted and unlinked as usual.
        with _executor(plan=FaultPlan("hostile", seed=SEED)) as executor:
            result = executor.scan(RELAY_DOMAIN_QUIC)
            assert result.queries_sent > 0
            assert executor._live_segments == set()
            assert _linked_segments() == []

    def test_cleanup_segment_unlinks_a_partial_write(self):
        # A worker that died mid-write leaves a linked segment with no
        # outcome referencing it; the parent's sweep must unlink it by
        # name alone.
        executor = _executor()
        try:
            name = executor._allocate_segment_name(0, 0)
            assert name in executor._live_segments
            segment = shared_memory.SharedMemory(name=name, create=True, size=64)
            segment.buf[:3] = b"\x01\x02\x03"  # torn write
            segment.close()
            assert _linked_segments() == [name]
            executor._cleanup_segment(name)
            assert name not in executor._live_segments
            assert _linked_segments() == []
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        finally:
            executor.close()

    def test_cleanup_segment_tolerates_never_created(self):
        # BrokenExecutor can fire before the worker ever created the
        # segment; sweeping the allocated name must be a quiet no-op.
        executor = _executor()
        try:
            name = executor._allocate_segment_name(3, 1)
            executor._cleanup_segment(name)
            assert name not in executor._live_segments
        finally:
            executor.close()


class TestTrackerSilence:
    def test_crashy_scan_subprocess_exits_clean(self, tmp_path):
        """rc 0, no tracker complaints, nothing left in /dev/shm."""
        script = tmp_path / "crashy_scan.py"
        script.write_text(
            "import os, sys\n"
            "from repro.faults import FaultPlan\n"
            "from repro.relay.service import RELAY_DOMAIN_QUIC\n"
            "from repro.scan.ecs_scanner import EcsScanner, EcsScanSettings\n"
            "from repro.scan.sharding import ShardedCampaignExecutor\n"
            "from repro.worldgen import WorldConfig, build_world\n"
            f"world = build_world(WorldConfig.tiny(seed={SEED}))\n"
            "settings = EcsScanSettings(workers=4, campaign_seed="
            f"{SEED}, fault_plan=FaultPlan('hostile', seed={SEED}))\n"
            "scanner = EcsScanner(world.route53, world.routing, world.clock, settings)\n"
            "with ShardedCampaignExecutor(scanner, 4) as executor:\n"
            "    result = executor.scan(RELAY_DOMAIN_QUIC)\n"
            "assert result.queries_sent > 0\n"
            "print(os.getpid())\n"
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=300,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd="/root/repo",
        )
        assert proc.returncode == 0, proc.stderr
        assert "leaked shared_memory" not in proc.stderr, proc.stderr
        assert "KeyError" not in proc.stderr, proc.stderr
        child_pid = int(proc.stdout.strip().splitlines()[-1])
        assert _linked_segments(pid=child_pid) == []
