"""Edge behaviour of the campaign orchestrator's month loop.

The happy path (run the calendar in order) is covered by the analysis
and equivalence suites; these tests pin down the clock and calendar
edge cases: re-running a month, custom fallback-skip sets, and starting
a month after its scan slot has already passed.
"""

import pytest

from repro.scan.campaign import ScanCampaign
from repro.scan.ecs_scanner import EcsScanSettings
from repro.worldgen import WorldConfig, build_world
from repro.worldgen.deployment import scan_time


@pytest.fixture()
def world():
    return build_world(WorldConfig.tiny(seed=2022))


def _campaign(world, **kwargs):
    return ScanCampaign(
        server=world.route53,
        routing=world.routing,
        clock=world.clock,
        settings=EcsScanSettings(),
        **kwargs,
    )


class TestRepeatedMonths:
    def test_rerunning_a_month_appends_a_second_entry(self, world):
        campaign = _campaign(world)
        first = campaign.run_month(2022, 1)
        second = campaign.run_month(2022, 1)
        assert len(campaign.months) == 2
        assert campaign.latest_default() is second.default
        # The clock is already past the slot, so the rerun starts where
        # the first scan finished instead of rewinding.
        assert second.default.started_at == first.default.finished_at

    def test_rerun_keeps_archive_chronological(self, world):
        campaign = _campaign(world)
        campaign.run_month(2022, 1)
        campaign.run_month(2022, 1)
        assert campaign.default_archive.scan_count() == 2
        times = [t for t, _ in campaign.default_archive.growth_series()]
        assert times == sorted(times)


class TestSkipFallbackMonths:
    def test_default_skips_january(self, world):
        campaign = _campaign(world)
        month = campaign.run_month(2022, 1)
        assert month.fallback is None
        assert campaign.fallback_archive.scan_count() == 0

    def test_non_skipped_month_scans_fallback(self, world):
        campaign = _campaign(world)
        month = campaign.run_month(2022, 2)
        assert month.fallback is not None
        assert campaign.fallback_archive.scan_count() == 1

    def test_empty_skip_set_scans_fallback_everywhere(self, world):
        campaign = _campaign(world, skip_fallback_months=frozenset())
        month = campaign.run_month(2022, 1)
        assert month.fallback is not None
        assert month.fallback.domain != month.default.domain

    def test_custom_skip_set_is_honoured(self, world):
        campaign = _campaign(
            world, skip_fallback_months=frozenset({(2022, 1), (2022, 2)})
        )
        assert campaign.run_month(2022, 1).fallback is None
        assert campaign.run_month(2022, 2).fallback is None
        assert campaign.run_month(2022, 3).fallback is not None


class TestClockAlreadyPastSlot:
    def test_scan_starts_at_slot_when_clock_is_behind(self, world):
        campaign = _campaign(world)
        assert world.clock.now < scan_time(2022, 1)
        month = campaign.run_month(2022, 1)
        assert month.default.started_at == scan_time(2022, 1)

    def test_scan_starts_immediately_when_clock_is_past(self, world):
        late = scan_time(2022, 1) + 7_200.0
        world.clock.advance_to(late)
        campaign = _campaign(world)
        month = campaign.run_month(2022, 1)
        assert month.default.started_at == late

    def test_out_of_order_calendar_does_not_rewind(self, world):
        campaign = _campaign(world)
        february = campaign.run_month(2022, 2)
        january = campaign.run_month(2022, 1)
        # January's slot is in the past; the scan runs at the current time.
        assert january.default.started_at >= february.default.finished_at
