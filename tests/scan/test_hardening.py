"""Daemon hardening: quarantine, degraded modes, drain, watchdog, re-seed.

The always-on failure drills from DESIGN.md §12: corrupt persisted state
is quarantined (never a traceback), persistence failures degrade while
scanning continues bit-identically, a drain request stops the campaign
cleanly at a round boundary, a hung shard is detected and the scan still
produces the sequential result, and an abandoned round re-seeds from the
last persisted snapshots.
"""

import json
import signal

import pytest

from repro.errors import WorkerCrashed
from repro.faults import FaultPlan
from repro.faults.profiles import FaultProfile
from repro.monitor import StatusBoard
from repro.scan.campaign import ScanCampaign
from repro.scan.checkpoint import CampaignCheckpointer, payload_crc
from repro.scan.drain import DrainController
from repro.scan.ecs_scanner import EcsScanSettings
from repro.scan.incremental import SnapshotStore, encode_snapshot
from repro.telemetry import Telemetry
from repro.worldgen import WorldConfig, build_world

SEED = 2022


class _EventSink:
    """Minimal EventLog stand-in recording every emit."""

    def __init__(self):
        self.records = []

    def emit(self, event, **fields):
        self.records.append((event, fields))

    def kinds(self):
        return [event for event, _ in self.records]


def _storage_plan(**rates):
    return FaultPlan(FaultProfile(name="storage-drill", **rates), seed=SEED)


def _settings(fault_plan=None, workers=1):
    return EcsScanSettings(
        workers=workers, campaign_seed=SEED, fault_plan=fault_plan
    )


def _campaign(**overrides):
    world = build_world(WorldConfig.tiny(seed=SEED))
    fields = dict(
        server=world.route53,
        routing=world.routing,
        clock=world.clock,
        settings=_settings(),
    )
    fields.update(overrides)
    return world, ScanCampaign(**fields)


def _counter_total(registry, name):
    return sum(
        entry["value"]
        for entry in registry.snapshot()["counters"]
        if entry["name"] == name
    )


def _assert_same_months(a, b):
    assert len(a) == len(b)
    for month_a, month_b in zip(a, b):
        assert (month_a.year, month_a.month) == (month_b.year, month_b.month)
        for scan_a, scan_b in (
            (month_a.default, month_b.default),
            (month_a.fallback, month_b.fallback),
        ):
            if scan_a is None:
                assert scan_b is None
                continue
            assert scan_a.queries_sent == scan_b.queries_sent
            assert scan_a.responses == scan_b.responses
            assert scan_a.sparse_responses == scan_b.sparse_responses


class TestQuarantine:
    """Corrupt persisted files: one warning line, never a traceback."""

    FINGERPRINT = {"mode": "test"}

    def _saved_checkpoint(self, tmp_path):
        checkpointer = CampaignCheckpointer(tmp_path, self.FINGERPRINT)
        checkpointer.save(2022, 1, {"payload": [1, 2]})
        return checkpointer, checkpointer.path_for(2022, 1)

    def test_bit_flip_is_quarantined(self, tmp_path, capsys):
        checkpointer, path = self._saved_checkpoint(tmp_path)
        document = json.loads(path.read_text())
        document["payload"] = [1, 3]  # flipped bit, stale crc
        path.write_text(json.dumps(document))
        assert checkpointer.load(2022, 1) is None
        err = capsys.readouterr().err
        assert "quarantined" in err and "checksum mismatch" in err
        assert "Traceback" not in err

    def test_garbage_json_is_quarantined(self, tmp_path, capsys):
        checkpointer, path = self._saved_checkpoint(tmp_path)
        path.write_text("{definitely not json")
        assert checkpointer.load(2022, 1) is None
        err = capsys.readouterr().err
        assert "quarantined" in err and "unparseable" in err

    def test_non_object_is_quarantined(self, tmp_path, capsys):
        checkpointer, path = self._saved_checkpoint(tmp_path)
        path.write_text('["a", "list"]')
        assert checkpointer.load(2022, 1) is None
        assert "not a JSON object" in capsys.readouterr().err

    def test_crc_survives_reformatting(self, tmp_path):
        # The checksum is over canonical JSON, not on-disk bytes: a
        # pretty-printer pass must not quarantine an intact file.
        checkpointer, path = self._saved_checkpoint(tmp_path)
        document = json.loads(path.read_text())
        path.write_text(json.dumps(document, indent=2, sort_keys=True))
        assert checkpointer.load(2022, 1)["payload"] == [1, 2]

    @pytest.mark.parametrize(
        "body,reason",
        [
            ('{"version": 1, "crc": 1, "rows": []}', "checksum mismatch"),
            ("{torn snapsh", "unparseable"),
            ("[1, 2]", "not a JSON object"),
        ],
    )
    def test_snapshot_store_quarantines_too(self, tmp_path, capsys, body, reason):
        store = SnapshotStore(tmp_path, self.FINGERPRINT)
        store.path_for("x.example.").write_text(body)
        assert store.load("x.example.") is None
        err = capsys.readouterr().err
        assert "quarantined" in err and reason in err

    def test_snapshot_crc_is_actually_written(self, tmp_path):
        # Guard the guard: a saved checkpoint carries a crc that the
        # canonical recomputation agrees with.
        _, path = self._saved_checkpoint(tmp_path)
        document = json.loads(path.read_text())
        assert document["crc"] == payload_crc(document)


class TestCheckpointDegraded:
    def test_campaign_survives_unwritable_checkpoints(self, tmp_path):
        telemetry = Telemetry()
        status = StatusBoard()
        events = _EventSink()
        world, campaign = _campaign(
            settings=_settings(fault_plan=_storage_plan(storage_error=1.0)),
            checkpoint_dir=tmp_path,
            telemetry=telemetry,
            status=status,
            events=events,
        )
        with campaign:
            months = campaign.run(world.scan_months())
        # Every month completed in memory; none persisted; no tracebacks.
        assert len(months) == len(world.scan_months())
        assert not list(tmp_path.glob("month-*.json"))
        assert not list(tmp_path.glob("*.tmp"))
        assert events.kinds().count("persistence_degraded") == len(months)
        assert "checkpoint_written" not in events.kinds()
        board = status.snapshot()
        assert board["checkpoint_degraded"] is True
        assert board["counters"]["months_unpersisted"] == len(months)
        registry = telemetry.registry
        injected = _counter_total(registry, "faults.storage.injected")
        surfaced = _counter_total(registry, "faults.storage.surfaced")
        absorbed = _counter_total(registry, "faults.storage.absorbed")
        assert injected == len(months)  # one single-attempt save per month
        assert injected == surfaced + absorbed

    def test_degraded_months_rescan_bit_identically(self, tmp_path):
        plan = _storage_plan(storage_error=1.0)
        world_a, campaign_a = _campaign(
            settings=_settings(fault_plan=plan), checkpoint_dir=tmp_path
        )
        with campaign_a:
            campaign_a.run(world_a.scan_months())
        # Nothing persisted, so the "resume" re-runs every month — and
        # must land on the same results as the degraded run kept in
        # memory: persistence failure never contaminates scan output.
        world_b, campaign_b = _campaign(
            settings=_settings(fault_plan=_storage_plan(storage_error=1.0)),
            checkpoint_dir=tmp_path,
            resume=True,
        )
        with campaign_b:
            campaign_b.run(world_b.scan_months())
        _assert_same_months(campaign_a.months, campaign_b.months)


class TestSnapshotDegraded:
    def test_delta_campaign_absorbs_transient_save_faults(self, tmp_path):
        telemetry = Telemetry()
        events = _EventSink()
        world, campaign = _campaign(
            settings=_settings(fault_plan=_storage_plan(storage_error=0.4)),
            mode="delta",
            snapshot_dir=tmp_path,
            telemetry=telemetry,
            events=events,
        )
        with campaign:
            rounds = campaign.run_continuous(2022, 1, rounds=4)
        assert len(rounds) == 4  # degraded saves never abort a round
        assert not list(tmp_path.glob("*.tmp"))
        registry = telemetry.registry
        injected = _counter_total(registry, "faults.storage.injected")
        surfaced = _counter_total(registry, "faults.storage.surfaced")
        absorbed = _counter_total(registry, "faults.storage.absorbed")
        assert injected > 0  # the drill actually fired
        assert injected == surfaced + absorbed
        assert absorbed > 0  # retries (fresh attempt keys) healed some

    def test_exhausted_retries_carry_previous_snapshot_forward(self, tmp_path):
        telemetry = Telemetry()
        status = StatusBoard()
        events = _EventSink()
        world, campaign = _campaign(
            settings=_settings(fault_plan=_storage_plan(storage_error=1.0)),
            mode="delta",
            snapshot_dir=tmp_path,
            telemetry=telemetry,
            status=status,
            events=events,
        )
        with campaign:
            rounds = campaign.run_continuous(2022, 1, rounds=1)
        assert len(rounds) == 1
        # rate 1.0: every attempt of every save fails — nothing on disk,
        # but the round completed and the degradation is fully visible.
        assert not list(tmp_path.glob("snapshot-*.json"))
        assert "persistence_degraded" in events.kinds()
        assert status.snapshot()["snapshot_degraded"] is True
        registry = telemetry.registry
        injected = _counter_total(registry, "faults.storage.injected")
        surfaced = _counter_total(registry, "faults.storage.surfaced")
        assert injected == surfaced > 0  # nothing could be absorbed
        assert _counter_total(registry, "persistence.rounds_unpersisted") > 0


class TestGracefulDrain:
    def test_drain_stops_at_month_boundary_and_resume_completes(self, tmp_path):
        class _Drain:
            requested = False

        class _TripWire(_EventSink):
            def __init__(self, drain):
                super().__init__()
                self.drain = drain

            def emit(self, event, **fields):
                super().emit(event, **fields)
                if event == "month_completed":
                    self.drain.requested = True

        drain = _Drain()
        events = _TripWire(drain)
        world, campaign = _campaign(
            checkpoint_dir=tmp_path, drain=drain, events=events
        )
        calendar = world.scan_months()
        with campaign:
            months = campaign.run(calendar)
        # The in-flight month finished and checkpointed; nothing after.
        assert len(months) == 1
        assert len(list(tmp_path.glob("month-*.json"))) == 1
        interrupted = [f for e, f in events.records if e == "campaign_interrupted"]
        assert interrupted == [
            {"mode": "full", "months": 1, "planned": len(calendar)}
        ]
        assert "campaign_finished" not in events.kinds()

        # A straight-through reference run...
        world_ref, reference = _campaign()
        with reference:
            reference.run(world_ref.scan_months())
        # ...equals drained-then-resumed, bit for bit.
        world_b, resumed = _campaign(checkpoint_dir=tmp_path, resume=True)
        with resumed:
            resumed.run(world_b.scan_months())
        _assert_same_months(reference.months, resumed.months)

    def test_drain_stops_delta_rounds(self, tmp_path):
        class _Drain:
            requested = False

        drain = _Drain()
        events = _EventSink()
        world, campaign = _campaign(
            mode="delta", snapshot_dir=tmp_path, drain=drain, events=events
        )
        with campaign:
            engine = campaign.delta_engine()
            real = engine.run_round

            def tripping():
                drain.requested = True
                return real()

            engine.run_round = tripping
            rounds = campaign.run_continuous(2022, 1, rounds=5)
        # Round 0 ran to completion (drain is checked at boundaries
        # only), then the request was honoured.
        assert len(rounds) == 1
        interrupted = [f for e, f in events.records if e == "campaign_interrupted"]
        assert interrupted == [{"mode": "delta", "rounds": 1, "planned": 5}]


class TestDrainController:
    def test_first_signal_sets_flag_only(self):
        controller = DrainController()
        with controller:
            signal.raise_signal(signal.SIGTERM)
            assert controller.requested is True
            # Still alive, still draining: the flag is the whole effect.

    def test_install_is_idempotent_and_uninstall_restores(self):
        before = signal.getsignal(signal.SIGTERM)
        controller = DrainController().install()
        controller.install()  # second install must not capture itself
        assert signal.getsignal(signal.SIGTERM) == controller._handle
        controller.uninstall()
        assert signal.getsignal(signal.SIGTERM) == before

    def test_install_off_main_thread_reports_unavailable(self):
        import threading

        outcome = {}

        def attempt():
            try:
                DrainController().install()
                outcome["error"] = None
            except ValueError as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=attempt)
        thread.start()
        thread.join()
        assert isinstance(outcome["error"], ValueError)


class TestHungShardWatchdog:
    def test_hang_is_detected_and_result_matches_sequential(self):
        plan = FaultPlan(
            FaultProfile(name="hang-drill", hang_shards=(0,), hang_attempts=1),
            seed=SEED,
        )
        telemetry = Telemetry()
        events = _EventSink()
        world, campaign = _campaign(
            settings=_settings(fault_plan=plan, workers=2),
            shard_deadline=0.75,
            telemetry=telemetry,
            events=events,
        )
        with campaign:
            months = campaign.run(world.scan_months()[:1])
        assert "shard_hung" in events.kinds()
        assert _counter_total(telemetry.registry, "shards.hung") >= 1

        # The hang drill fires only when a heartbeat watchdog is
        # configured, so the same plan at the same worker count without
        # a deadline is the clean reference — the kill/respawn recovery
        # must be bit-identical to the undisturbed sharded run.
        ref_plan = FaultPlan(
            FaultProfile(name="hang-drill", hang_shards=(0,), hang_attempts=1),
            seed=SEED,
        )
        world_ref, reference = _campaign(
            settings=_settings(fault_plan=ref_plan, workers=2)
        )
        with reference:
            reference.run(world_ref.scan_months()[:1])
        _assert_same_months(months, reference.months)


class TestRoundSkipped:
    def test_worker_crash_skips_round_and_reseeds(self, tmp_path):
        telemetry = Telemetry()
        status = StatusBoard()
        events = _EventSink()
        world, campaign = _campaign(
            mode="delta",
            snapshot_dir=tmp_path,
            telemetry=telemetry,
            status=status,
            events=events,
        )
        with campaign:
            engine = campaign.delta_engine()
            real = engine.run_round
            state = {"crashes": 1}

            def flaky():
                if state["crashes"]:
                    state["crashes"] -= 1
                    raise WorkerCrashed("respawn budget exhausted (drill)")
                return real()

            engine.run_round = flaky
            rounds = campaign.run_continuous(2022, 1, rounds=3)
        # One round abandoned, the other two ran; the campaign finished.
        assert len(rounds) == 2
        assert events.kinds().count("round_skipped") == 1
        assert "campaign_finished" in events.kinds()
        assert status.snapshot()["counters"]["rounds_skipped"] == 1
        assert _counter_total(telemetry.registry, "campaign.rounds_skipped") == 1

    def test_reseed_from_store_restores_persisted_state(self, tmp_path):
        world, campaign = _campaign(mode="delta", snapshot_dir=tmp_path)
        with campaign:
            engine = campaign.delta_engine()
            campaign.run_continuous(2022, 1, rounds=1)
            persisted = {
                domain: encode_snapshot(engine.store.load(domain))
                for domain in engine.domains
            }
            # Model a crashed round's half-applied in-memory state.
            victim = engine.domains[0]
            engine.snapshots[victim].rows.pop()
            engine.snapshots[victim].round += 7
            engine.reseed_from_store()
            restored = {
                domain: encode_snapshot(engine.snapshots[domain])
                for domain in engine.domains
            }
        assert restored == persisted
