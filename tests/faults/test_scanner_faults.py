"""Fault injection at the ECS scan boundary.

The fast-path and reference scan kernels must inject *exactly* the same
faults — full bit-identity, responses included — and an attached
``none`` profile must be indistinguishable from no plan at all.
"""

import dataclasses

import pytest

from repro.faults import FaultPlan, WAIT_QUANTUM
from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan.ecs_scanner import EcsScanner, EcsScanSettings
from repro.telemetry import Telemetry
from repro.worldgen import WorldConfig, build_world

SEED = 2022


def _scan(profile, fast_path, telemetry=None, **overrides):
    world = build_world(WorldConfig.tiny(seed=SEED))
    plan = None if profile is None else FaultPlan(profile, seed=SEED)
    settings = EcsScanSettings(fast_path=fast_path, fault_plan=plan, **overrides)
    scanner = EcsScanner(
        world.route53, world.routing, world.clock, settings, telemetry=telemetry
    )
    return scanner.scan(RELAY_DOMAIN_QUIC)


def _assert_identical(a, b):
    for field in dataclasses.fields(a):
        assert getattr(a, field.name) == getattr(b, field.name), field.name


@pytest.fixture(scope="module", params=["lossy", "hostile"])
def kernel_pair(request):
    profile = request.param
    return profile, _scan(profile, True), _scan(profile, False)


class TestKernelEquivalence:
    def test_fast_and_slow_paths_bit_identical(self, kernel_pair):
        _, fast, slow = kernel_pair
        _assert_identical(fast, slow)

    def test_faults_actually_fire(self, kernel_pair):
        profile, fast, _ = kernel_pair
        assert fast.retries > 0
        assert sum(fast.fault_injected.values()) > 0
        assert fast.fault_wait_seconds > 0.0
        if profile == "hostile":
            assert fast.gave_up


class TestAccounting:
    def test_retry_and_giveup_identity(self, kernel_pair):
        """Every lost attempt is either retried or abandoned — never silent."""
        _, result, _ = kernel_pair
        lost = sum(
            count
            for kind, count in result.fault_injected.items()
            if kind != "latency"
        )
        assert lost == result.retries + len(result.gave_up)

    def test_abandoned_subnets_have_no_response(self, kernel_pair):
        _, result, _ = kernel_pair
        answered = {r.subnet for r in result.responses}
        assert answered.isdisjoint(result.gave_up)

    def test_fault_wait_is_dyadic(self, kernel_pair):
        _, result, _ = kernel_pair
        w = result.fault_wait_seconds
        assert w == round(w / WAIT_QUANTUM) * WAIT_QUANTUM

    def test_queries_sent_includes_retried_attempts(self, kernel_pair):
        _, result, _ = kernel_pair
        baseline = _scan(None, True)
        assert result.queries_sent > baseline.queries_sent
        assert result.finished_at > baseline.finished_at


class TestNoneProfile:
    def test_none_plan_is_a_no_op(self):
        plain = _scan(None, True)
        hooked = _scan("none", True)
        _assert_identical(plain, hooked)


class TestTelemetry:
    def test_fault_counters_recorded(self):
        telemetry = Telemetry()
        result = _scan("hostile", True, telemetry=telemetry)
        counters = {
            (entry["name"], entry["labels"].get("kind")): entry["value"]
            for entry in telemetry.snapshot()["metrics"]["counters"]
        }
        assert counters[("scan.retries", None)] == result.retries
        assert counters[("scan.gaveup", None)] == len(result.gave_up)
        for kind, count in result.fault_injected.items():
            assert counters[("faults.injected", kind)] == count

    def test_no_fault_counters_without_a_plan(self):
        telemetry = Telemetry()
        _scan(None, True, telemetry=telemetry)
        names = {
            entry["name"]
            for entry in telemetry.snapshot()["metrics"]["counters"]
        }
        assert not {"scan.retries", "scan.gaveup", "faults.injected"} & names
