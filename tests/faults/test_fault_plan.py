"""Unit tests for the deterministic fault plan and its profiles."""

import pytest

from repro.errors import FaultConfigError
from repro.faults import (
    PROFILES,
    FaultKind,
    FaultPlan,
    FaultProfile,
    WAIT_QUANTUM,
    fault_key,
    profile_named,
    quantize_wait,
)

DOMAIN_KEY = fault_key("mask.icloud.com.")


class TestProfiles:
    def test_shipped_profiles(self):
        assert set(PROFILES) == {"none", "lossy", "hostile"}
        assert not PROFILES["none"].injects_anything
        assert PROFILES["lossy"].injects_anything
        assert PROFILES["hostile"].crash_shards == (1,)

    def test_profile_named_unknown(self):
        with pytest.raises(FaultConfigError):
            profile_named("flaky")

    def test_rates_must_be_probabilities(self):
        with pytest.raises(FaultConfigError):
            FaultProfile(name="bad", drop=1.5)
        with pytest.raises(FaultConfigError):
            FaultProfile(name="bad", probe_loss=-0.1)

    def test_dns_rates_must_sum_to_one_or_less(self):
        with pytest.raises(FaultConfigError):
            FaultProfile(name="bad", drop=0.5, servfail=0.3, latency=0.3)

    def test_shape_parameters_validated(self):
        with pytest.raises(FaultConfigError):
            FaultProfile(name="bad", latency_seconds=-1.0)
        with pytest.raises(FaultConfigError):
            FaultProfile(name="bad", crash_attempts=-1)

    def test_dns_rates_order_matches_fault_kinds(self):
        profile = FaultProfile(
            name="ordered",
            drop=0.01,
            servfail=0.02,
            refused=0.03,
            truncated=0.04,
            latency=0.05,
        )
        assert profile.dns_rates() == (0.01, 0.02, 0.03, 0.04, 0.05)
        assert FaultKind.NAMES[FaultKind.DROP] == "drop"
        assert FaultKind.NAMES[FaultKind.LATENCY] == "latency"


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultPlan("hostile", seed=2022)
        b = FaultPlan(PROFILES["hostile"], seed=2022)
        for value in range(0, 1 << 16, 97):
            for attempt in (0, 1, 2):
                assert a.query_outcome(DOMAIN_KEY, value, attempt) == (
                    b.query_outcome(DOMAIN_KEY, value, attempt)
                )
        assert a.latency_wait(DOMAIN_KEY, 42, 0) == b.latency_wait(DOMAIN_KEY, 42, 0)
        assert a.backoff_wait(1.0, 2.0, 0.5, DOMAIN_KEY, 42, 2) == (
            b.backoff_wait(1.0, 2.0, 0.5, DOMAIN_KEY, 42, 2)
        )

    def test_different_seeds_differ(self):
        a = FaultPlan("hostile", seed=1)
        b = FaultPlan("hostile", seed=2)
        outcomes_a = [a.query_outcome(DOMAIN_KEY, v, 0) for v in range(4096)]
        outcomes_b = [b.query_outcome(DOMAIN_KEY, v, 0) for v in range(4096)]
        assert outcomes_a != outcomes_b

    def test_attempt_is_part_of_the_key(self):
        plan = FaultPlan("hostile", seed=7)
        faulted = [
            v
            for v in range(1 << 14)
            if plan.query_outcome(DOMAIN_KEY, v, 0) not in (0, FaultKind.LATENCY)
        ]
        assert faulted  # hostile injects plenty
        # Retries get fresh draws, so most faulted queries recover.
        recovered = sum(
            1 for v in faulted if plan.query_outcome(DOMAIN_KEY, v, 1) == 0
        )
        assert recovered > len(faulted) // 2

    def test_fault_key_is_process_stable(self):
        # crc32 of a literal — a constant across interpreters, unlike hash().
        assert fault_key("mask.icloud.com.") == 1053677852
        assert fault_key("") == 0

    def test_rates_are_roughly_honoured(self):
        plan = FaultPlan("hostile", seed=3)
        n = 1 << 15
        outcomes = [plan.query_outcome(DOMAIN_KEY, v, 0) for v in range(n)]
        drop_rate = outcomes.count(FaultKind.DROP) / n
        ok_rate = outcomes.count(FaultKind.OK) / n
        assert abs(drop_rate - 0.15) < 0.02
        assert abs(ok_rate - 0.64) < 0.02


class TestWaits:
    def test_quantize_is_dyadic(self):
        for raw in (0.0, 1e-9, 0.5, 1.0, 3.14159, 4177.734):
            w = quantize_wait(raw)
            assert w == round(w / WAIT_QUANTUM) * WAIT_QUANTUM
            assert w <= raw

    def test_quantized_sums_are_associative(self):
        plan = FaultPlan("hostile", seed=2022)
        waits = [plan.latency_wait(DOMAIN_KEY, v, 0) for v in range(2048)]
        left = 0.0
        for w in waits:
            left += w
        half = len(waits) // 2
        a = sum(waits[:half])
        b = sum(waits[half:])
        assert left == a + b  # exact float equality: the sharded merge relies on it

    def test_backoff_grows_and_respects_jitter_bounds(self):
        plan = FaultPlan("lossy", seed=5)
        for attempt in (1, 2, 3):
            nominal = 1.0 * 2.0 ** (attempt - 1)
            wait = plan.backoff_wait(1.0, 2.0, 0.5, DOMAIN_KEY, 9, attempt)
            assert 0.5 * nominal - WAIT_QUANTUM <= wait < 1.5 * nominal

    def test_latency_wait_bounds(self):
        plan = FaultPlan("hostile", seed=5)
        for value in range(512):
            wait = plan.latency_wait(DOMAIN_KEY, value, 0)
            assert 2.5 - WAIT_QUANTUM <= wait < 7.5  # 5s profile, [0.5, 1.5) factor


class TestGates:
    def test_none_profile_disables_every_boundary(self):
        plan = FaultPlan("none", seed=2022)
        assert not plan.dns_active
        assert not plan.connect_active
        assert not plan.probe_active

    def test_crash_drill_terminates(self):
        plan = FaultPlan("hostile", seed=2022)
        assert plan.crash_shard(1, 0)
        assert not plan.crash_shard(1, 1)  # one re-run and the drill is over
        assert not plan.crash_shard(0, 0)

    def test_connect_and_probe_draws_redraw_per_attempt(self):
        plan = FaultPlan("hostile", seed=2022)
        key = fault_key("client-1")
        draws = [plan.connect_fails(key, sequence) for sequence in range(64)]
        assert any(draws) and not all(draws)
        probe_draws = [plan.probe_lost(key, 7, attempt) for attempt in range(64)]
        assert any(probe_draws) and not all(probe_draws)
