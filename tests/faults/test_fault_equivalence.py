"""Worker count must stay invisible under every fault profile.

Same contract as ``tests/scan/test_sharded_equivalence.py`` — query
streams, accounting, rate-limit timeline, address sets, per-AS
attribution, server stats — extended with the fault plane's own
accounting (retries, abandoned subnets, injected-fault counts, injected
waits) and the deterministic telemetry totals.  The ``hostile`` profile
additionally crashes shard 1's worker on its first attempt, so the
multi-worker legs only pass if pool recovery reproduces the sequential
results.
"""

import pytest

from repro.faults import FaultPlan
from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan.ecs_scanner import EcsScanner, EcsScanSettings
from repro.scan.sharding import ShardedCampaignExecutor
from repro.telemetry import Telemetry, deterministic_totals
from repro.worldgen import WorldConfig, build_world

pytestmark = pytest.mark.skipif(
    not ShardedCampaignExecutor.supported(),
    reason="sharded execution requires the fork start method",
)

SEED = 2022
PROFILES = ("lossy", "hostile")
WORKER_COUNTS = (1, 2, 4)


def _run(profile, workers, telemetry=None):
    world = build_world(WorldConfig.tiny(seed=SEED))
    settings = EcsScanSettings(
        workers=workers,
        campaign_seed=SEED,
        fault_plan=FaultPlan(profile, seed=SEED),
    )
    scanner = EcsScanner(
        world.route53, world.routing, world.clock, settings, telemetry=telemetry
    )
    with ShardedCampaignExecutor(scanner, workers) as executor:
        result = executor.scan(RELAY_DOMAIN_QUIC)
    return world, result


@pytest.fixture(scope="module")
def matrix():
    return {
        (profile, workers): _run(profile, workers)
        for profile in PROFILES
        for workers in WORKER_COUNTS
    }


def _pairs(matrix):
    for profile in PROFILES:
        _, sequential = matrix[(profile, 1)]
        for workers in WORKER_COUNTS[1:]:
            yield profile, workers, sequential, matrix[(profile, workers)][1]


class TestFaultedShardEquivalence:
    def test_query_streams_identical(self, matrix):
        for profile, workers, seq, sharded in _pairs(matrix):
            assert [(r.subnet, r.scope) for r in seq.responses] == [
                (r.subnet, r.scope) for r in sharded.responses
            ], f"profile={profile} workers={workers}"
            assert [(r.subnet, r.scope) for r in seq.sparse_responses] == [
                (r.subnet, r.scope) for r in sharded.sparse_responses
            ]

    def test_fault_accounting_identical(self, matrix):
        for profile, workers, seq, sharded in _pairs(matrix):
            context = f"profile={profile} workers={workers}"
            assert seq.retries == sharded.retries, context
            assert seq.gave_up == sharded.gave_up, context
            assert seq.fault_injected == sharded.fault_injected, context
            assert seq.fault_wait_seconds == sharded.fault_wait_seconds, context

    def test_query_accounting_identical(self, matrix):
        for _, _, seq, sharded in _pairs(matrix):
            assert seq.queries_sent == sharded.queries_sent
            assert seq.sparse_queries == sharded.sparse_queries
            assert seq.sparse_answered == sharded.sparse_answered

    def test_rate_limit_timeline_identical(self, matrix):
        for profile, workers, seq, sharded in _pairs(matrix):
            assert seq.started_at == sharded.started_at
            assert seq.finished_at == sharded.finished_at, (
                f"profile={profile} workers={workers}"
            )

    def test_ingress_sets_identical(self, matrix):
        for _, _, seq, sharded in _pairs(matrix):
            assert seq.addresses() == sharded.addresses()
            assert seq.addresses_by_asn() == sharded.addresses_by_asn()

    def test_server_stats_identical(self, matrix):
        for profile in PROFILES:
            seq_world, _ = matrix[(profile, 1)]
            for workers in WORKER_COUNTS[1:]:
                sharded_world, _ = matrix[(profile, workers)]
                assert seq_world.route53.stats == sharded_world.route53.stats


class TestTelemetryEquivalence:
    def test_deterministic_totals_match_across_workers(self):
        totals = {}
        for workers in (1, 4):
            telemetry = Telemetry()
            _run("lossy", workers, telemetry=telemetry)
            totals[workers] = deterministic_totals(telemetry.snapshot())
        assert totals[1]
        assert any(key.startswith("faults.injected") for key in totals[1])
        assert any(key.startswith("scan.retries") for key in totals[1])
        assert totals[1] == totals[4]
