"""Shard-crash recovery and executor exception-safety.

A worker process dying mid-task breaks the whole fork pool; the
executor must respawn it, re-run only the lost shards, and merge the
exact sequential result.  A shard that *keeps* crashing must surface as
:class:`~repro.errors.WorkerCrashed` — with the pool torn down, never
leaked — and an ordinary worker exception must propagate promptly.
"""

import os
import signal

import pytest

from repro.errors import WorkerCrashed
from repro.faults import FaultPlan, FaultProfile
from repro.relay.service import RELAY_DOMAIN_QUIC
from repro.scan import sharding
from repro.scan.ecs_scanner import EcsScanner, EcsScanSettings
from repro.scan.sharding import ShardedCampaignExecutor
from repro.telemetry import Telemetry
from repro.worldgen import WorldConfig, build_world

pytestmark = pytest.mark.skipif(
    not ShardedCampaignExecutor.supported(),
    reason="sharded execution requires the fork start method",
)

SEED = 2022


def _executor(plan, workers=4, telemetry=None):
    world = build_world(WorldConfig.tiny(seed=SEED))
    settings = EcsScanSettings(
        workers=workers, campaign_seed=SEED, fault_plan=plan
    )
    scanner = EcsScanner(
        world.route53, world.routing, world.clock, settings, telemetry=telemetry
    )
    return ShardedCampaignExecutor(scanner, workers)


def _boom(task):
    raise RuntimeError(f"worker bug on shard {task.index}")


class TestCrashRecovery:
    def test_crash_drill_recovers_and_counts_reruns(self):
        telemetry = Telemetry()
        plan = FaultPlan("hostile", seed=SEED)
        with _executor(plan, telemetry=telemetry) as executor:
            result = executor.scan(RELAY_DOMAIN_QUIC)
        assert result.queries_sent > 0
        reruns = [
            entry
            for entry in telemetry.snapshot()["metrics"]["counters"]
            if entry["name"] == "shards.rerun"
        ]
        assert reruns and reruns[0]["value"] >= 1

    def test_unrecoverable_crash_raises_worker_crashed(self):
        profile = FaultProfile(
            name="always-crash",
            crash_shards=(0, 1, 2, 3),
            crash_attempts=10**6,
        )
        executor = _executor(FaultPlan(profile, seed=SEED))
        with executor:
            with pytest.raises(WorkerCrashed):
                executor.scan(RELAY_DOMAIN_QUIC)
        assert executor._pool is None  # torn down, not leaked

    def test_worker_exception_propagates_and_closes_pool(self, monkeypatch):
        monkeypatch.setattr(sharding, "_run_shard", _boom)
        executor = _executor(FaultPlan("none", seed=SEED))
        with executor:
            with pytest.raises(RuntimeError, match="worker bug"):
                executor.scan(RELAY_DOMAIN_QUIC)
        assert executor._pool is None


class TestExecutorLifecycle:
    def test_close_is_idempotent(self):
        executor = _executor(None)
        executor.close()
        executor.close()
        assert executor._pool is None

    def test_close_after_killed_worker_does_not_hang(self):
        executor = _executor(None)
        pool = executor._ensure_pool()
        # Force the pool to actually fork its workers before the kill.
        pool.submit(os.getpid).result()
        victim = next(iter(pool._processes.values()))
        os.kill(victim.pid, signal.SIGKILL)
        executor.close()
        assert executor._pool is None

    def test_context_manager_always_closes(self):
        executor = _executor(None)
        with pytest.raises(ValueError):
            with executor:
                executor._ensure_pool()
                raise ValueError("scan went sideways")
        assert executor._pool is None
