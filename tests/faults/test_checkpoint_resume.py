"""Campaign checkpoint/resume: killed-and-resumed must equal straight.

A campaign that checkpoints each month, is killed, and resumes in a
fresh process (modelled by fresh same-seed worlds) must reproduce the
straight-through campaign bit-for-bit — months, clock, server stats and
the longitudinal archives.  Checkpoints written under different
result-affecting settings must be refused, and torn or alien files must
read as absent, not as errors.
"""

import json

import pytest

from repro.errors import CheckpointError
from repro.faults import FaultPlan
from repro.scan.campaign import ScanCampaign
from repro.scan.checkpoint import (
    CHECKPOINT_VERSION,
    CampaignCheckpointer,
    decode_result,
    encode_result,
)
from repro.scan.ecs_scanner import EcsScanSettings
from repro.worldgen import WorldConfig, build_world

SEED = 2022


def _settings(profile="lossy", workers=1):
    return EcsScanSettings(
        workers=workers,
        campaign_seed=SEED,
        fault_plan=FaultPlan(profile, seed=SEED),
    )


def _campaign(directory, settings=None, resume=False):
    world = build_world(WorldConfig.tiny(seed=SEED))
    campaign = ScanCampaign(
        server=world.route53,
        routing=world.routing,
        clock=world.clock,
        settings=settings if settings is not None else _settings(),
        checkpoint_dir=directory,
        resume=resume,
    )
    with campaign:
        campaign.run(world.scan_months())
    return world, campaign


def _assert_campaigns_identical(a, b):
    a_world, a_campaign = a
    b_world, b_campaign = b
    assert len(a_campaign.months) == len(b_campaign.months)
    for month_a, month_b in zip(a_campaign.months, b_campaign.months):
        assert (month_a.year, month_a.month) == (month_b.year, month_b.month)
        for scan_a, scan_b in (
            (month_a.default, month_b.default),
            (month_a.fallback, month_b.fallback),
        ):
            if scan_a is None:
                assert scan_b is None
                continue
            assert scan_a.queries_sent == scan_b.queries_sent
            assert scan_a.retries == scan_b.retries
            assert scan_a.gave_up == scan_b.gave_up
            assert scan_a.fault_injected == scan_b.fault_injected
            assert scan_a.started_at == scan_b.started_at
            assert scan_a.finished_at == scan_b.finished_at
            assert scan_a.responses == scan_b.responses
            assert scan_a.sparse_responses == scan_b.sparse_responses
    assert a_world.clock.now == b_world.clock.now
    assert a_world.route53.stats == b_world.route53.stats
    assert a_campaign.default_archive.to_csv() == b_campaign.default_archive.to_csv()
    assert (
        a_campaign.fallback_archive.to_csv() == b_campaign.fallback_archive.to_csv()
    )


@pytest.fixture(scope="module")
def straight(tmp_path_factory):
    directory = tmp_path_factory.mktemp("checkpoints")
    return directory, _campaign(directory)


class TestResume:
    def test_checkpoints_written_atomically(self, straight):
        directory, (_, campaign) = straight
        files = sorted(p.name for p in directory.iterdir())
        month_files = [n for n in files if n.startswith("month-")]
        assert len(month_files) == len(campaign.months)
        assert not [n for n in files if n.endswith(".tmp")]

    def test_full_resume_is_bit_identical(self, straight):
        directory, reference = straight
        resumed = _campaign(directory, resume=True)
        _assert_campaigns_identical(reference, resumed)

    def test_partial_resume_rescans_missing_months(self, straight, tmp_path):
        directory, reference = straight
        partial_dir = tmp_path / "partial"
        partial_dir.mkdir()
        month_files = sorted(directory.glob("month-*.json"))
        # Keep only the first half of the campaign: the kill point.
        for path in month_files[: len(month_files) // 2]:
            (partial_dir / path.name).write_bytes(path.read_bytes())
        resumed = _campaign(partial_dir, resume=True)
        _assert_campaigns_identical(reference, resumed)
        # The re-scanned months were checkpointed on the way through.
        assert sorted(p.name for p in partial_dir.glob("month-*.json")) == [
            p.name for p in month_files
        ]

    def test_resume_under_different_worker_count(self, straight):
        directory, reference = straight
        resumed = _campaign(directory, settings=_settings(workers=2), resume=True)
        _assert_campaigns_identical(reference, resumed)

    def test_without_resume_flag_checkpoints_are_ignored(self, straight):
        directory, reference = straight
        rerun = _campaign(directory, resume=False)
        _assert_campaigns_identical(reference, rerun)

    def test_fingerprint_mismatch_refuses_to_resume(self, straight):
        directory, _ = straight
        with pytest.raises(CheckpointError):
            _campaign(directory, settings=_settings(profile="hostile"), resume=True)

    def test_corrupt_checkpoint_is_rescanned(self, straight, tmp_path):
        directory, reference = straight
        corrupt_dir = tmp_path / "corrupt"
        corrupt_dir.mkdir()
        for path in directory.glob("month-*.json"):
            (corrupt_dir / path.name).write_bytes(path.read_bytes())
        victim = sorted(corrupt_dir.glob("month-*.json"))[0]
        victim.write_text('{"version": 1, "fingerpr')  # torn write
        resumed = _campaign(corrupt_dir, resume=True)
        _assert_campaigns_identical(reference, resumed)


class TestCheckpointer:
    FINGERPRINT = {"rate": 2.2, "profile": "lossy"}

    def test_roundtrip(self, tmp_path):
        checkpointer = CampaignCheckpointer(tmp_path, self.FINGERPRINT)
        path = checkpointer.save(2022, 3, {"payload": [1, 2, 3]})
        assert path == checkpointer.path_for(2022, 3)
        document = checkpointer.load(2022, 3)
        assert document["payload"] == [1, 2, 3]
        assert document["year"] == 2022 and document["month"] == 3

    def test_missing_month_reads_as_none(self, tmp_path):
        checkpointer = CampaignCheckpointer(tmp_path, self.FINGERPRINT)
        assert checkpointer.load(2022, 1) is None

    def test_version_mismatch_reads_as_none(self, tmp_path):
        checkpointer = CampaignCheckpointer(tmp_path, self.FINGERPRINT)
        checkpointer.save(2022, 1, {})
        path = checkpointer.path_for(2022, 1)
        document = json.loads(path.read_text())
        document["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(document))
        assert checkpointer.load(2022, 1) is None

    def test_fingerprint_mismatch_raises(self, tmp_path):
        CampaignCheckpointer(tmp_path, self.FINGERPRINT).save(2022, 1, {})
        other = CampaignCheckpointer(tmp_path, {"rate": 9.9})
        with pytest.raises(CheckpointError):
            other.load(2022, 1)

    def test_result_codec_roundtrip(self, straight):
        _, (_, campaign) = straight
        for month in campaign.months:
            for result in (month.default, month.fallback):
                if result is None:
                    continue
                decoded = decode_result(encode_result(result))
                assert decoded.responses == result.responses
                assert decoded.sparse_responses == result.sparse_responses
                assert decoded.gave_up == result.gave_up
                assert decoded.queries_sent == result.queries_sent
                assert decoded.finished_at == result.finished_at
                assert decoded.addresses() == result.addresses()
