"""Storage fault plane: gate determinism, atomic-write exits, accounting."""

import errno
import json

import pytest

from repro.faults import FaultPlan
from repro.faults.profiles import FaultProfile
from repro.faults.storage import (
    InjectedStorageFault,
    StorageFaultKind,
    StorageGate,
    atomic_write_json,
    count_handled,
    count_injected,
)
from repro.telemetry import Telemetry


def _gate(seed=11, **rates):
    return StorageGate(FaultProfile(name="none", **rates), seed=seed)


def _counter_values(registry):
    out = {}
    for entry in registry.snapshot()["counters"]:
        key = (entry["name"], tuple(sorted(entry["labels"].items())))
        out[key] = entry["value"]
    return out


class TestStorageGate:
    def test_inactive_without_rates(self):
        assert not _gate().active
        assert _gate(storage_error=0.1).active

    def test_outcome_is_a_pure_function_of_the_key(self):
        gate = _gate(storage_error=0.3, storage_fsync=0.2)
        keys = [("checkpoint", f"2022-{m:02d}", a) for m in range(1, 13)
                for a in range(3)]
        forward = {k: gate.outcome(*k) for k in keys}
        backward = {k: gate.outcome(*k) for k in reversed(keys)}
        assert forward == backward
        # A fresh gate with the same (profile, seed) — a resumed process
        # — replays the same weather.
        again = _gate(storage_error=0.3, storage_fsync=0.2)
        assert {k: again.outcome(*k) for k in keys} == forward

    def test_seed_and_surface_decorrelate_draws(self):
        a = _gate(seed=1, storage_error=0.5)
        b = _gate(seed=2, storage_error=0.5)
        items = [("snapshot", f"d{i}.example.", 0) for i in range(64)]
        assert [a.outcome(*k) for k in items] != [b.outcome(*k) for k in items]
        surfaces = [a.outcome("checkpoint", f"d{i}.example.", 0)
                    for i in range(64)]
        assert surfaces != [a.outcome(*k) for k in items]

    def test_attempt_is_part_of_the_key(self):
        # Retryability: a failing first attempt must not doom every
        # retry — some item's attempt 1 draws OK after attempt 0 failed.
        gate = _gate(storage_error=0.5)
        healed = [
            item
            for item in (f"2022-{m:02d}" for m in range(1, 13))
            if gate.outcome("checkpoint", item, 0) != StorageFaultKind.OK
            and gate.outcome("checkpoint", item, 1) == StorageFaultKind.OK
        ]
        assert healed

    def test_rates_partition_the_unit_range(self):
        gate = _gate(
            storage_error=0.25,
            storage_short_write=0.25,
            storage_fsync=0.25,
            storage_torn_rename=0.25,
        )
        outcomes = {gate.outcome("eventlog", str(n), 0) for n in range(200)}
        assert outcomes == {1, 2, 3, 4}  # rates sum to 1: OK impossible

    def test_plan_exposes_the_storage_gate(self):
        plan = FaultPlan("hostile", seed=3)
        assert plan.storage.active
        assert not FaultPlan("none", seed=3).storage.active


def _forced(kind_rate):
    """A gate that injects exactly one kind on every attempt."""
    return _gate(**{kind_rate: 1.0})


class TestAtomicWriteJson:
    def test_plain_write_is_canonical_json(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"b": 2, "a": 1})
        text = path.read_text()
        assert json.loads(text) == {"a": 1, "b": 2}
        assert not list(tmp_path.glob("*.tmp"))

    @pytest.mark.parametrize(
        "rate,kind,expected_errno",
        [
            ("storage_error", StorageFaultKind.WRITE_ERROR, errno.ENOSPC),
            ("storage_short_write", StorageFaultKind.SHORT_WRITE, errno.ENOSPC),
            ("storage_fsync", StorageFaultKind.FSYNC_FAIL, errno.EIO),
            ("storage_torn_rename", StorageFaultKind.TORN_RENAME, errno.EIO),
        ],
    )
    def test_each_kind_fails_cleanly(self, tmp_path, rate, kind, expected_errno):
        path = tmp_path / "out.json"
        with pytest.raises(InjectedStorageFault) as excinfo:
            atomic_write_json(
                path, {"x": 1}, gate=_forced(rate), surface="checkpoint",
                item="2022-01",
            )
        assert excinfo.value.kind == kind
        assert excinfo.value.errno == expected_errno
        assert isinstance(excinfo.value, OSError)
        # No torn target, no leaked temp file — ever.
        assert not path.exists()
        assert not list(tmp_path.glob("*.tmp"))

    @pytest.mark.parametrize(
        "rate",
        ["storage_error", "storage_short_write", "storage_fsync",
         "storage_torn_rename"],
    )
    def test_previous_file_survives_every_kind(self, tmp_path, rate):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"generation": 1})
        with pytest.raises(InjectedStorageFault):
            atomic_write_json(
                path, {"generation": 2}, gate=_forced(rate),
                surface="snapshot", item="d.example.",
            )
        assert json.loads(path.read_text()) == {"generation": 1}
        assert not list(tmp_path.glob("*.tmp"))

    def test_injected_raises_are_counted_once(self, tmp_path):
        telemetry = Telemetry()
        with pytest.raises(InjectedStorageFault):
            atomic_write_json(
                tmp_path / "out.json", {},
                gate=_forced("storage_fsync"), surface="checkpoint",
                item="2022-01", registry=telemetry.registry,
            )
        values = _counter_values(telemetry.registry)
        key = (
            "faults.storage.injected",
            (("kind", "fsync_fail"), ("surface", "checkpoint")),
        )
        assert values[key] == 1

    def test_retry_with_higher_attempt_can_succeed(self, tmp_path):
        gate = _gate(storage_error=0.5)
        path = tmp_path / "out.json"
        wrote = False
        for item_n in range(12):
            item = f"2022-{item_n:02d}"
            if gate.outcome("checkpoint", item, 0) == StorageFaultKind.OK:
                continue
            with pytest.raises(InjectedStorageFault):
                atomic_write_json(
                    path, {"n": item_n}, gate=gate, surface="checkpoint",
                    item=item, attempt=0,
                )
            if gate.outcome("checkpoint", item, 1) == StorageFaultKind.OK:
                atomic_write_json(
                    path, {"n": item_n}, gate=gate, surface="checkpoint",
                    item=item, attempt=1,
                )
                wrote = True
                break
        assert wrote and path.exists()


class TestAccountingHelpers:
    def test_count_handled_splits_absorbed_and_surfaced(self):
        telemetry = Telemetry()
        count_injected(telemetry.registry, "snapshot", StorageFaultKind.WRITE_ERROR)
        count_injected(telemetry.registry, "snapshot", StorageFaultKind.WRITE_ERROR)
        count_handled(telemetry.registry, "snapshot", 1, 1)
        values = _counter_values(telemetry.registry)
        injected = sum(v for (name, _), v in values.items()
                       if name == "faults.storage.injected")
        absorbed = sum(v for (name, _), v in values.items()
                       if name == "faults.storage.absorbed")
        surfaced = sum(v for (name, _), v in values.items()
                       if name == "faults.storage.surfaced")
        assert injected == absorbed + surfaced == 2

    def test_helpers_tolerate_missing_registry(self):
        count_injected(None, "checkpoint", StorageFaultKind.FSYNC_FAIL)
        count_handled(None, "checkpoint", 1, 0)
