"""Robustness and failure-injection tests.

Decoders must fail with the library's typed errors on arbitrary input
(never ``IndexError``/``struct.error`` leaking out); scanners must
degrade gracefully when infrastructure misbehaves; resource accounting
must obey conservation laws.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DnsWireError, QuicError, ReproError
from repro.dns.message import DnsMessage, Rcode
from repro.dns.ratelimit import TokenBucket
from repro.dns.rr import RRType
from repro.dns.server import AuthoritativeServer, EcsPolicy
from repro.dns.wire import decode_message, encode_message
from repro.dns.zone import Zone
from repro.netmodel.addr import IPAddress, Prefix
from repro.quic.packet import decode_packet
from repro.scan.ecs_scanner import EcsScanner, EcsScanSettings
from repro.simtime import SimClock
from repro.worldgen.internet import SpaceAllocator


# ----------------------------------------------------------------------
# Decoder fuzzing
# ----------------------------------------------------------------------


@given(st.binary(max_size=200))
@settings(max_examples=300)
def test_dns_decode_never_crashes(data):
    try:
        message = decode_message(data)
    except DnsWireError:
        return
    # Anything that decodes must re-encode without crashing.
    encode_message(message)


@given(st.binary(max_size=100))
@settings(max_examples=300)
def test_quic_decode_never_crashes(data):
    try:
        decode_packet(data)
    except QuicError:
        pass


@given(st.binary(min_size=12, max_size=60))
@settings(max_examples=200)
def test_dns_decode_bitflips(data):
    """Flipping bits of a valid query never raises a foreign error."""
    base = encode_message(
        DnsMessage.query("mask.icloud.com", RRType.A, message_id=7)
    )
    mutated = bytes(a ^ b for a, b in zip(base, data.ljust(len(base), b"\0")))
    try:
        decode_message(mutated)
    except DnsWireError:
        pass


# ----------------------------------------------------------------------
# Rate limiter conservation
# ----------------------------------------------------------------------


@given(
    st.floats(min_value=0.5, max_value=100.0),
    st.floats(min_value=1.0, max_value=50.0),
    st.integers(min_value=1, max_value=200),
)
def test_token_bucket_conservation(rate, burst, takes):
    """Tokens granted never exceed burst + rate x elapsed-time."""
    clock = SimClock()
    bucket = TokenBucket(rate, burst, clock)
    start = clock.now
    for _ in range(takes):
        bucket.take()
    elapsed = clock.now - start
    assert takes <= burst + rate * elapsed + 1e-6


@given(st.integers(min_value=2, max_value=100))
def test_token_bucket_steady_state_rate(takes):
    """Long-run take() throughput converges to the configured rate."""
    clock = SimClock()
    bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
    bucket.take()
    start = clock.now
    for _ in range(takes):
        bucket.take()
    assert clock.now - start == pytest.approx(takes / 4.0)


# ----------------------------------------------------------------------
# Allocation invariants
# ----------------------------------------------------------------------


@given(st.lists(st.integers(min_value=12, max_value=24), min_size=1, max_size=60))
def test_space_allocator_never_overlaps(lengths):
    allocator = SpaceAllocator([Prefix.parse("10.0.0.0/8")], start="1.0.0.0")
    allocated = [allocator.allocate(length) for length in sorted(lengths)]
    spans = sorted((p.value, p.broadcast_value) for p in allocated)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 < s2
    reserved = Prefix.parse("10.0.0.0/8")
    for prefix in allocated:
        assert not reserved.overlaps(prefix)


# ----------------------------------------------------------------------
# Scanner failure injection
# ----------------------------------------------------------------------


class _RefusingServer(AuthoritativeServer):
    """A server that refuses every query."""

    def handle(self, query, source_address=None):
        self.stats.queries += 1
        return query.reply(rcode=Rcode.REFUSED, recursion_available=False)


class _NoScopeServer(AuthoritativeServer):
    """A server whose responses never carry an ECS option."""

    def __init__(self, address, inner):
        super().__init__(address, EcsPolicy(enabled=False))
        self._inner = inner

    def handle(self, query, source_address=None):
        response = self._inner.handle(query, source_address)
        return DnsMessage(
            message_id=response.message_id,
            is_response=True,
            rcode=response.rcode,
            question=response.question,
            answers=response.answers,
        )


class _SingleRoute:
    def __init__(self, prefix, world):
        self._prefix = prefix
        self._world = world

    def routed_v4_prefixes(self):
        return [self._prefix]

    def origin_of(self, address):
        return self._world.routing.origin_of(address)


class TestScannerFailureInjection:
    def test_all_refused_yields_empty_result(self, tiny_world):
        world = tiny_world
        server = _RefusingServer(IPAddress.parse("205.251.192.7"))
        prefix = world.ground.client_ases[0].asys.prefixes[0]
        scanner = EcsScanner(
            server, _SingleRoute(prefix, world), world.clock,
            EcsScanSettings(rate=1e9),
        )
        result = scanner.scan("mask.icloud.com")
        assert result.addresses() == set()
        assert result.queries_sent > 0
        assert server.stats.queries == result.queries_sent

    def test_missing_ecs_option_falls_back_to_slash24_walk(self, tiny_world):
        world = tiny_world
        wrapped = _NoScopeServer(IPAddress.parse("205.251.192.8"), world.route53)
        prefixes = [
            p for p in world.routing.routed_v4_prefixes()
            if (world.routing.origin_of(p.network_address) or 0) >= 100_000
            and 20 <= p.length <= 22
        ]
        prefix = prefixes[0]
        scanner = EcsScanner(
            wrapped, _SingleRoute(prefix, world), world.clock,
            EcsScanSettings(rate=1e9),
        )
        result = scanner.scan("mask.icloud.com")
        # Without scope information the scanner queries every /24.
        assert result.queries_sent >= prefix.count_subnets(24)
        assert result.addresses()

    def test_zone_with_empty_answer_records_no_response(self, tiny_world):
        world = tiny_world
        server = AuthoritativeServer(IPAddress.parse("205.251.192.9"))
        zone = Zone("empty.example.")
        zone.add_dynamic("relay.empty.example.", RRType.A, lambda n, s: ([], 16))
        server.add_zone(zone)
        prefix = world.ground.client_ases[0].asys.prefixes[0]
        scanner = EcsScanner(
            server, _SingleRoute(prefix, world), world.clock,
            EcsScanSettings(rate=1e9),
        )
        result = scanner.scan("relay.empty.example.")
        assert result.addresses() == set()


class TestServiceFailureModes:
    def test_unserved_country_raises_typed_error(self, tiny_world):
        world = tiny_world
        from repro.relay.ingress import RelayProtocol

        ingress = sorted(
            world.ingress_v4.active_addresses(world.clock.now, RelayProtocol.QUIC)
        )[0]
        # A country with no egress pools at all.
        with pytest.raises(ReproError):
            world.service.connect(
                client_address=world.ground.vantage_prefix.address_at(77),
                client_asn=64496,
                client_country="ZZ",
                client_location=None,
                ingress_address=ingress,
                target_authority="example.org",
            )

    def test_udp_proxying_rejected(self):
        from repro.masque.http import ConnectMethod, ConnectRequest
        from repro.masque.proxy import establish_tunnel

        tunnel, response = establish_tunnel(
            client_address=IPAddress.parse("131.159.0.17"),
            client_asn=64496,
            ingress_address=IPAddress.parse("172.224.0.5"),
            ingress_asn=36183,
            egress_service_address=IPAddress.parse("172.232.0.8"),
            egress_service_asn=36183,
            egress_address=IPAddress.parse("172.232.0.8"),
            egress_asn=36183,
            request=ConnectRequest("dns.example", 443, method=ConnectMethod.CONNECT_UDP),
        )
        assert tunnel is None
        assert not response.ok
