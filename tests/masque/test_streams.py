"""Tests for the MASQUE data plane (streams, padding, size leakage)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MasqueError
from repro.masque.streams import (
    Direction,
    PaddingPolicy,
    StreamState,
    TunnelDataPlane,
)


class TestPaddingPolicy:
    def test_no_padding(self):
        assert PaddingPolicy(0).padded(1234) == 1234

    def test_block_padding(self):
        policy = PaddingPolicy(512)
        assert policy.padded(1) == 512
        assert policy.padded(512) == 512
        assert policy.padded(513) == 1024

    def test_zero_payload_stays_zero(self):
        assert PaddingPolicy(512).padded(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(MasqueError):
            PaddingPolicy(-1)
        with pytest.raises(MasqueError):
            PaddingPolicy(64).padded(-1)


class TestTunnelDataPlane:
    def test_stream_ids_quic_style(self):
        plane = TunnelDataPlane()
        ids = [plane.open_stream().stream_id for _ in range(3)]
        assert ids == [0, 4, 8]

    def test_byte_accounting(self):
        plane = TunnelDataPlane()
        stream = plane.open_stream()
        plane.send(stream.stream_id, 1000, Direction.UP)
        plane.send(stream.stream_id, 5000, Direction.DOWN)
        assert stream.bytes_up == 1000
        assert stream.bytes_down == 5000
        assert stream.total_bytes == 6000
        assert plane.application_bytes() == 6000
        assert plane.observable_bytes() == 6000  # no padding

    def test_closed_stream_rejects_sends(self):
        plane = TunnelDataPlane()
        stream = plane.open_stream()
        plane.close_stream(stream.stream_id)
        assert stream.state is StreamState.CLOSED
        with pytest.raises(MasqueError):
            plane.send(stream.stream_id, 1, Direction.UP)

    def test_unknown_stream(self):
        with pytest.raises(MasqueError):
            TunnelDataPlane().send(99, 1, Direction.UP)

    def test_multiplexing_degree(self):
        plane = TunnelDataPlane()
        a = plane.open_stream()
        plane.open_stream()
        plane.close_stream(a.stream_id)
        assert plane.open_stream_count() == 1

    def test_padding_overhead(self):
        plane = TunnelDataPlane(PaddingPolicy(1000))
        stream = plane.open_stream()
        plane.send(stream.stream_id, 100, Direction.UP)
        assert plane.observable_bytes() == 1000
        assert plane.padding_overhead() == pytest.approx(0.9)

    def test_padding_collapses_size_fingerprints(self):
        """Two tunnels with different true sizes look identical padded —
        the size-correlation defence the MASQUE draft hints at."""
        coarse = PaddingPolicy(4096)
        plane_a = TunnelDataPlane(coarse)
        plane_b = TunnelDataPlane(coarse)
        for plane, sizes in ((plane_a, [100, 3000]), (plane_b, [2000, 3500])):
            for size in sizes:
                stream = plane.open_stream()
                plane.send(stream.stream_id, size, Direction.DOWN)
        assert plane_a.size_fingerprint() == plane_b.size_fingerprint()
        # Without padding the same traffic is distinguishable.
        bare_a = TunnelDataPlane()
        bare_b = TunnelDataPlane()
        for plane, sizes in ((bare_a, [100, 3000]), (bare_b, [2000, 3500])):
            for size in sizes:
                stream = plane.open_stream()
                plane.send(stream.stream_id, size, Direction.DOWN)
        assert bare_a.size_fingerprint() != bare_b.size_fingerprint()


@given(
    st.integers(min_value=1, max_value=8192),
    st.integers(min_value=0, max_value=1 << 20),
)
def test_padding_properties(block, size):
    policy = PaddingPolicy(block)
    padded = policy.padded(size)
    assert padded >= size
    if size > 0:
        assert padded % block == 0
        assert padded - size < block


@given(st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=20))
def test_accounting_conservation(sizes):
    plane = TunnelDataPlane(PaddingPolicy(512))
    for size in sizes:
        stream = plane.open_stream()
        plane.send(stream.stream_id, size, Direction.UP)
    assert plane.application_bytes() == sum(sizes)
    assert plane.observable_bytes() >= plane.application_bytes()
    assert 0.0 <= plane.padding_overhead() < 1.0 or plane.observable_bytes() == 0
