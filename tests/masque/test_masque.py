"""Tests for the MASQUE proxy layer."""

import pytest

from repro.errors import MasqueError
from repro.masque.http import (
    ConnectMethod,
    ConnectRequest,
    ConnectResponse,
    HttpVersion,
)
from repro.masque.proxy import MasqueTunnel, TunnelLeg, establish_tunnel
from repro.netmodel.addr import IPAddress


def addr(text: str) -> IPAddress:
    return IPAddress.parse(text)


class TestConnectRequest:
    def test_target(self):
        request = ConnectRequest("example.org", 443)
        assert request.target == "example.org:443"

    def test_empty_authority_rejected(self):
        with pytest.raises(MasqueError):
            ConnectRequest("", 80)

    def test_port_bounds(self):
        with pytest.raises(MasqueError):
            ConnectRequest("example.org", 0)
        with pytest.raises(MasqueError):
            ConnectRequest("example.org", 70000)

    def test_connect_udp_requires_h3(self):
        with pytest.raises(MasqueError):
            ConnectRequest(
                "example.org", 443,
                method=ConnectMethod.CONNECT_UDP,
                http_version=HttpVersion.H2,
            )

    def test_responses(self):
        assert ConnectResponse.established().ok
        assert not ConnectResponse.rejected("nope").ok


def build_tunnel(**overrides):
    kwargs = dict(
        client_address=addr("131.159.0.17"),
        client_asn=64496,
        ingress_address=addr("172.224.0.5"),
        ingress_asn=36183,
        egress_service_address=addr("172.232.0.8"),
        egress_service_asn=36183,
        egress_address=addr("172.232.0.8"),
        egress_asn=36183,
        request=ConnectRequest("example.org", 80),
    )
    kwargs.update(overrides)
    return establish_tunnel(**kwargs)


class TestTunnel:
    def test_establish(self):
        tunnel, response = build_tunnel()
        assert response.ok
        assert tunnel is not None
        assert tunnel.client_address == addr("131.159.0.17")
        assert tunnel.destination_authority == "example.org"

    def test_udp_rejected(self):
        tunnel, response = build_tunnel(
            request=ConnectRequest(
                "example.org", 443, method=ConnectMethod.CONNECT_UDP
            )
        )
        assert tunnel is None
        assert response.status == 403

    def test_legs_must_join(self):
        leg_a = TunnelLeg(addr("1.1.1.1"), addr("2.2.2.2"), 1, 2)
        leg_b = TunnelLeg(addr("3.3.3.3"), addr("4.4.4.4"), 3, 4)
        with pytest.raises(MasqueError):
            MasqueTunnel(
                ingress_leg=leg_a,
                egress_leg=leg_b,
                destination_authority="x",
                destination_port=80,
                egress_address=addr("4.4.4.4"),
                egress_asn=4,
            )

    def test_visibility_split(self):
        tunnel, _ = build_tunnel(
            ingress_address=addr("17.0.0.5"),
            ingress_asn=714,
            egress_service_address=addr("104.16.0.1"),
            egress_service_asn=13335,
            egress_address=addr("104.16.0.1"),
            egress_asn=13335,
        )
        assert tunnel.asns_seeing_client() == {64496, 714}
        assert tunnel.asns_seeing_destination() == {13335}
        # Disjoint operators: nobody correlates.
        assert tunnel.correlating_asns() == set()

    def test_correlation_when_same_as_hosts_both(self):
        # Akamai-PR ingress AND egress: the Section 6 finding.
        tunnel, _ = build_tunnel()
        assert tunnel.correlating_asns() == {36183}

    def test_egress_leg_never_carries_client(self):
        tunnel, _ = build_tunnel()
        assert tunnel.client_address not in tunnel.egress_leg.endpoints()

    def test_ingress_leg_never_carries_destination_address(self):
        tunnel, _ = build_tunnel()
        assert tunnel.egress_address not in tunnel.ingress_leg.endpoints()
