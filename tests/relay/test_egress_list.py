"""Tests for repro.relay.egress_list."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EgressListError
from repro.netmodel.addr import IPAddress, Prefix
from repro.relay.egress_list import EgressEntry, EgressList


def entry(prefix: str, cc: str = "US", region: str = "US-NA", city: str = "US-City-000") -> EgressEntry:
    return EgressEntry(Prefix.parse(prefix), cc, region, city)


class TestEgressEntry:
    def test_valid(self):
        e = entry("172.224.224.0/31")
        assert e.has_city

    def test_blank_city(self):
        e = entry("172.224.224.0/31", city="")
        assert not e.has_city

    def test_country_code_validated(self):
        with pytest.raises(EgressListError):
            entry("10.0.0.0/29", cc="usa")
        with pytest.raises(EgressListError):
            entry("10.0.0.0/29", cc="us")

    def test_v6_must_be_slash64(self):
        with pytest.raises(EgressListError):
            EgressEntry(Prefix.parse("2001:db8::/48"), "US", "US-NA", "X")
        EgressEntry(Prefix.parse("2001:db8::/64"), "US", "US-NA", "X")


class TestEgressList:
    def test_add_and_len(self):
        lst = EgressList([entry("10.0.0.0/29"), entry("10.0.0.8/29", cc="DE")])
        assert len(lst) == 2

    def test_duplicate_rejected(self):
        lst = EgressList([entry("10.0.0.0/29")])
        with pytest.raises(EgressListError):
            lst.add(entry("10.0.0.0/29"))

    def test_entries_by_version(self):
        lst = EgressList(
            [entry("10.0.0.0/29"), EgressEntry(Prefix.parse("2001:db8::/64"), "US", "R", "C")]
        )
        assert len(lst.entries(4)) == 1
        assert len(lst.entries(6)) == 1
        assert len(lst.entries()) == 2

    def test_lookup_covering(self):
        lst = EgressList([entry("10.0.0.0/29")])
        assert lst.lookup(Prefix.parse("10.0.0.0/30")) is not None
        assert lst.lookup(Prefix.parse("10.0.1.0/30")) is None

    def test_contains_address(self):
        lst = EgressList([entry("10.0.0.0/29")])
        assert lst.contains_address(IPAddress.parse("10.0.0.5"))
        assert not lst.contains_address(IPAddress.parse("10.0.0.9"))

    def test_entry_for_address(self):
        e = entry("10.0.0.0/29")
        lst = EgressList([e])
        assert lst.entry_for_address(IPAddress.parse("10.0.0.1")) is e

    def test_country_codes(self):
        lst = EgressList([entry("10.0.0.0/29"), entry("10.0.0.8/29", cc="DE")])
        assert lst.country_codes() == {"US", "DE"}

    def test_cities_excludes_blank(self):
        lst = EgressList([entry("10.0.0.0/29"), entry("10.0.0.8/29", city="")])
        assert lst.cities() == {("US", "US-City-000")}

    def test_subnets_per_country(self):
        lst = EgressList(
            [entry("10.0.0.0/29"), entry("10.0.0.8/29"), entry("10.0.0.16/29", cc="DE")]
        )
        assert lst.subnets_per_country() == {"US": 2, "DE": 1}

    def test_missing_city_fraction(self):
        lst = EgressList([entry("10.0.0.0/29"), entry("10.0.0.8/29", city="")])
        assert lst.missing_city_fraction() == 0.5
        assert EgressList().missing_city_fraction() == 0.0

    def test_total_ipv4_addresses(self):
        lst = EgressList([entry("10.0.0.0/29"), entry("10.0.0.8/30")])
        assert lst.total_ipv4_addresses() == 12

    def test_churn(self):
        old = EgressList([entry("10.0.0.0/29"), entry("10.0.0.8/29")])
        new = EgressList([entry("10.0.0.0/29"), entry("10.0.0.16/29")])
        kept, added, removed = new.churn_against(old)
        assert (kept, added, removed) == (1, 1, 1)

    def test_csv_roundtrip(self):
        lst = EgressList(
            [
                entry("172.224.224.0/31", "US", "US-CA", "LOSANGELES"),
                entry("172.224.224.2/31", "DE", "DE-BY", ""),
                EgressEntry(Prefix.parse("2a02:26f7::/64"), "FR", "FR-75", "PARIS"),
            ]
        )
        parsed = EgressList.from_csv(lst.to_csv())
        assert [e.prefix for e in parsed] == [e.prefix for e in lst]
        assert [e.city for e in parsed] == ["LOSANGELES", "", "PARIS"]

    def test_csv_skips_blank_lines(self):
        parsed = EgressList.from_csv("\n10.0.0.0/29,US,US-NA,CITY\n\n")
        assert len(parsed) == 1

    def test_csv_bad_columns(self):
        with pytest.raises(EgressListError):
            EgressList.from_csv("10.0.0.0/29,US,US-NA\n")

    def test_csv_bad_prefix(self):
        with pytest.raises(EgressListError):
            EgressList.from_csv("10.0.0.1/29,US,US-NA,CITY\n")


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 24) - 1),
            st.sampled_from(["US", "DE", "GB", "FR"]),
        ),
        min_size=1,
        max_size=30,
        unique_by=lambda t: t[0],
    )
)
def test_csv_roundtrip_property(items):
    entries = [
        EgressEntry(Prefix(4, value << 8, 29), cc, f"{cc}-R", f"{cc}-City-000")
        for value, cc in items
    ]
    lst = EgressList(entries)
    parsed = EgressList.from_csv(lst.to_csv())
    assert len(parsed) == len(lst)
    assert parsed.subnets_per_country() == lst.subnets_per_country()
