"""Tests for repro.relay.geohash."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netmodel.geo import GeoPoint
from repro.relay.geohash import geohash_decode_center, geohash_encode


class TestGeohash:
    def test_known_value(self):
        # Munich encodes to u281 at precision 4 (standard geohash).
        assert geohash_encode(GeoPoint(48.137, 11.575), precision=4) == "u281"

    def test_equator_prime_meridian(self):
        assert geohash_encode(GeoPoint(0.0, 0.0), precision=1) == "s"

    def test_precision_length(self):
        for precision in (1, 4, 8):
            assert len(geohash_encode(GeoPoint(10.0, 10.0), precision)) == precision

    def test_bad_precision(self):
        with pytest.raises(ValueError):
            geohash_encode(GeoPoint(0.0, 0.0), precision=0)

    def test_decode_center_close(self):
        point = GeoPoint(48.137, 11.575)
        center = geohash_decode_center(geohash_encode(point, precision=6))
        assert point.distance_km(center) < 1.0

    def test_decode_rejects_bad_chars(self):
        with pytest.raises(ValueError):
            geohash_decode_center("abc!")

    def test_decode_rejects_empty(self):
        with pytest.raises(ValueError):
            geohash_decode_center("")

    def test_prefix_property(self):
        # A longer geohash refines (starts with) the shorter one.
        point = GeoPoint(-33.86, 151.21)
        assert geohash_encode(point, 6).startswith(geohash_encode(point, 3))


@given(
    st.floats(min_value=-89.9, max_value=89.9),
    st.floats(min_value=-179.9, max_value=179.9),
)
def test_encode_decode_within_cell(lat, lon):
    point = GeoPoint(lat, lon)
    geohash = geohash_encode(point, precision=5)
    center = geohash_decode_center(geohash)
    # Precision-5 cells are ~4.9 km x 4.9 km: the centre must be nearby.
    assert point.distance_km(center) < 6.0


@given(
    st.floats(min_value=-89.9, max_value=89.9),
    st.floats(min_value=-179.9, max_value=179.9),
)
def test_roundtrip_stable(lat, lon):
    point = GeoPoint(lat, lon)
    geohash = geohash_encode(point, precision=4)
    # Encoding the decoded centre yields the same cell.
    assert geohash_encode(geohash_decode_center(geohash), precision=4) == geohash
