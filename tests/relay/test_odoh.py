"""Tests for the Appendix B oblivious-DoH path."""

import pytest

from repro.errors import RelayError
from repro.dns.rr import RRType
from repro.netmodel.addr import IPAddress
from repro.netmodel.geo import GeoPoint
from repro.relay.ingress import RelayProtocol
from repro.relay.odoh import ObliviousDnsPath, oblivious_path_for_session
from repro.worldgen.world import CONTROL_DOMAIN


@pytest.fixture()
def session(tiny_world):
    world = tiny_world
    vantage = world.ground.vantage_prefix
    ingress = sorted(
        world.ingress_v4.active_addresses(world.clock.now, RelayProtocol.QUIC)
    )[0]
    return world.service.connect(
        client_address=vantage.address_at(90),
        client_asn=64496,
        client_country="DE",
        client_location=GeoPoint(48.1, 11.5),
        ingress_address=ingress,
        target_authority="observer.vantage.example",
    )


@pytest.fixture()
def doh_resolver(tiny_world):
    from repro.dns.resolver import PublicResolver

    return PublicResolver(
        tiny_world.ns_registry,
        IPAddress.parse("1.1.1.1"),
        "Cloudflare",
        clock=tiny_world.clock,
        send_ecs=True,  # ECS here carries the *egress* hint, not the client
    )


class TestObliviousPath:
    def test_resolves_through_doh(self, session, doh_resolver):
        path = oblivious_path_for_session(session, doh_resolver)
        addresses = path.resolve_addresses(CONTROL_DOMAIN, RRType.A)
        assert addresses
        assert path.provider == "Cloudflare"

    def test_resolver_never_sees_client(self, session, doh_resolver):
        path = oblivious_path_for_session(session, doh_resolver)
        path.resolve(CONTROL_DOMAIN, RRType.A)
        record = path.log[-1]
        assert record.resolver_saw == session.ingress_address
        assert not record.ingress_read_question

    def test_ecs_optimised_for_egress(self, session, doh_resolver):
        path = oblivious_path_for_session(session, doh_resolver)
        path.resolve("mask.icloud.com", RRType.A, optimise_for_egress=True)
        record = path.log[-1]
        assert record.ecs_source is not None
        # The ECS subnet derives from the egress address, not the client.
        assert record.ecs_source.contains_address(session.egress_address)
        assert not record.ecs_source.contains_address(
            session.tunnel.client_address
        )

    def test_no_optimisation_without_flag(self, tiny_world, session):
        from repro.dns.resolver import PublicResolver

        no_ecs = PublicResolver(
            tiny_world.ns_registry,
            IPAddress.parse("1.1.1.1"),
            "Cloudflare",
            clock=tiny_world.clock,
            send_ecs=False,
        )
        path = oblivious_path_for_session(session, no_ecs)
        path.resolve("mask.icloud.com", RRType.A, optimise_for_egress=False)
        assert path.log[-1].ecs_source is None

    def test_requires_session(self, doh_resolver):
        with pytest.raises(RelayError):
            oblivious_path_for_session(None, doh_resolver)

    def test_direct_construction(self, doh_resolver):
        path = ObliviousDnsPath(
            doh_resolver=doh_resolver,
            ingress_address=IPAddress.parse("172.224.0.1"),
            egress_address=IPAddress.parse("172.232.0.1"),
        )
        path.resolve(CONTROL_DOMAIN, RRType.A)
        assert len(path.log) == 1
