"""Tests for repro.relay.ingress and repro.relay.egress."""

import random

import pytest

from repro.errors import RelayError
from repro.netmodel.addr import IPAddress, Prefix
from repro.relay.egress import EgressFleet, EgressPool, RotationPolicy
from repro.relay.egress_list import EgressEntry, EgressList
from repro.relay.ingress import IngressFleet, IngressRelay, RelayProtocol


def relay(text: str, asn: int = 36183, protocol=RelayProtocol.QUIC, pod="EU-0",
          active_from=0.0, active_until=None) -> IngressRelay:
    return IngressRelay(IPAddress.parse(text), asn, protocol, pod, active_from, active_until)


class TestIngressRelay:
    def test_active_window(self):
        r = relay("172.224.0.1", active_from=10.0, active_until=20.0)
        assert not r.is_active(5.0)
        assert r.is_active(10.0)
        assert r.is_active(19.9)
        assert not r.is_active(20.0)

    def test_open_ended(self):
        r = relay("172.224.0.1", active_from=10.0)
        assert r.is_active(1e12)


class TestIngressFleet:
    def test_version_enforced(self):
        fleet = IngressFleet(4)
        with pytest.raises(RelayError):
            fleet.add(
                IngressRelay(
                    IPAddress.parse("2a02:26f7::1"), 36183, RelayProtocol.QUIC, "EU-0"
                )
            )

    def test_active_filters(self):
        fleet = IngressFleet(4)
        fleet.add(relay("172.224.0.1", asn=36183))
        fleet.add(relay("17.0.0.1", asn=714))
        fleet.add(relay("17.0.0.2", asn=714, protocol=RelayProtocol.TCP_FALLBACK))
        assert len(fleet.active(0.0)) == 3
        assert len(fleet.active(0.0, RelayProtocol.QUIC)) == 2
        assert len(fleet.active(0.0, RelayProtocol.QUIC, asn=714)) == 1

    def test_counts_by_asn(self):
        fleet = IngressFleet(4)
        fleet.add(relay("172.224.0.1"))
        fleet.add(relay("172.224.0.2"))
        fleet.add(relay("17.0.0.1", asn=714))
        assert fleet.counts_by_asn(0.0, RelayProtocol.QUIC) == {36183: 2, 714: 1}

    def test_pod_relays(self):
        fleet = IngressFleet(4)
        fleet.add(relay("172.224.0.1", pod="EU-0"))
        fleet.add(relay("172.224.0.2", pod="NA-0"))
        assert len(fleet.pod_relays("EU-0", RelayProtocol.QUIC, 0.0)) == 1
        assert fleet.pods() == {"EU-0", "NA-0"}

    def test_pod_relays_respect_time(self):
        fleet = IngressFleet(4)
        fleet.add(relay("172.224.0.1", pod="EU-0", active_from=100.0))
        assert fleet.pod_relays("EU-0", RelayProtocol.QUIC, 50.0) == []

    def test_deployment_epochs(self):
        fleet = IngressFleet(4)
        fleet.add(relay("172.224.0.1", active_from=0.0, active_until=100.0))
        fleet.add(relay("172.224.0.2", active_from=50.0))
        assert fleet.deployment_epoch(10.0) != fleet.deployment_epoch(60.0)
        assert fleet.deployment_epoch(60.0) != fleet.deployment_epoch(150.0)

    def test_active_cached_consistent(self):
        fleet = IngressFleet(4)
        fleet.add(relay("172.224.0.1", active_from=0.0, active_until=100.0))
        fleet.add(relay("172.224.0.2", active_from=50.0))
        for t in (10.0, 60.0, 150.0):
            assert fleet.active_cached(t, RelayProtocol.QUIC) == fleet.active(
                t, RelayProtocol.QUIC
            )

    def test_cache_invalidated_on_add(self):
        fleet = IngressFleet(4)
        fleet.add(relay("172.224.0.1"))
        assert len(fleet.active_cached(0.0, RelayProtocol.QUIC)) == 1
        fleet.add(relay("172.224.0.2"))
        assert len(fleet.active_cached(0.0, RelayProtocol.QUIC)) == 2

    def test_asns(self):
        fleet = IngressFleet(4)
        fleet.add(relay("172.224.0.1"))
        fleet.add(relay("17.0.0.1", asn=714, active_from=100.0))
        assert fleet.asns(0.0) == {36183}
        assert fleet.asns(100.0) == {36183, 714}


def make_pool(count: int = 6, policy=RotationPolicy.PER_CONNECTION, stickiness=0.0) -> EgressPool:
    addresses = [IPAddress(4, (172 << 24) | (232 << 16) | i) for i in range(count)]
    return EgressPool(36183, "DE", addresses, policy, stickiness)


class TestEgressPool:
    def test_empty_rejected(self):
        with pytest.raises(RelayError):
            EgressPool(36183, "DE", [])

    def test_stickiness_bounds(self):
        with pytest.raises(RelayError):
            make_pool(stickiness=1.0)

    def test_per_connection_rotates(self):
        pool = make_pool(stickiness=0.0)
        rng = random.Random(1)
        draws = [pool.select("client", rng) for _ in range(300)]
        changes = sum(1 for a, b in zip(draws, draws[1:]) if a != b)
        # Uniform over six addresses: ~5/6 of draws change.
        assert changes / (len(draws) - 1) > 0.66
        assert len(set(draws)) == 6

    def test_sticky_policy_never_rotates(self):
        pool = make_pool(policy=RotationPolicy.STICKY)
        rng = random.Random(2)
        first = pool.select("client", rng)
        assert all(pool.select("client", rng) == first for _ in range(50))

    def test_stickiness_reduces_changes(self):
        rng_a, rng_b = random.Random(3), random.Random(3)
        loose = make_pool(stickiness=0.0)
        sticky = make_pool(stickiness=0.9)
        loose_draws = [loose.select("c", rng_a) for _ in range(400)]
        sticky_draws = [sticky.select("c", rng_b) for _ in range(400)]
        change = lambda seq: sum(1 for a, b in zip(seq, seq[1:]) if a != b)
        assert change(sticky_draws) < change(loose_draws)

    def test_contexts_are_independent(self):
        pool = make_pool(policy=RotationPolicy.STICKY)
        rng = random.Random(7)
        a = pool.select("client-a", rng)
        b = pool.select("client-b", rng)
        # Different contexts may draw different sticky addresses.
        assert pool.select("client-a", rng) == a
        assert pool.select("client-b", rng) == b

    def test_distinct_subnet_count(self):
        entries = [
            EgressEntry(Prefix.parse("172.232.0.0/29"), "DE", "DE-EU", "DE-City-000"),
            EgressEntry(Prefix.parse("172.232.0.8/29"), "DE", "DE-EU", "DE-City-001"),
        ]
        lst = EgressList(entries)
        pool = EgressPool(
            36183,
            "DE",
            [IPAddress.parse("172.232.0.1"), IPAddress.parse("172.232.0.9")],
        )
        assert pool.distinct_subnet_count(lst) == 2


class TestEgressFleet:
    def test_pool_registration(self):
        fleet = EgressFleet()
        pool = make_pool()
        fleet.add_pool(pool)
        assert fleet.pool_for(36183, "DE") is pool
        with pytest.raises(RelayError):
            fleet.add_pool(make_pool())

    def test_missing_pool(self):
        with pytest.raises(RelayError):
            EgressFleet().pool_for(36183, "DE")

    def test_presence_weights(self):
        fleet = EgressFleet()
        fleet.set_presence("DE", {13335: 0.55, 36183: 0.45, 54113: 0.0})
        ops = fleet.operators_for("DE")
        assert ops == {13335: 0.55, 36183: 0.45}

    def test_presence_requires_positive_weight(self):
        with pytest.raises(RelayError):
            EgressFleet().set_presence("DE", {13335: 0.0})

    def test_choose_operator_weighted(self):
        fleet = EgressFleet()
        fleet.set_presence("DE", {13335: 1.0, 36183: 0.0})
        rng = random.Random(5)
        assert all(fleet.choose_operator("DE", rng) == 13335 for _ in range(20))

    def test_choose_operator_no_presence(self):
        with pytest.raises(RelayError):
            EgressFleet().choose_operator("ZZ", random.Random(0))

    def test_operator_asns(self):
        fleet = EgressFleet()
        fleet.add_pool(make_pool())
        assert fleet.operator_asns() == {36183}
