"""Deep behaviour tests of the relay DNS zone across the deployment
timeline — the mechanisms behind Table 1's emergent properties."""

import pytest

from repro.dns.message import DnsMessage
from repro.dns.rr import RRType
from repro.netmodel.addr import Prefix
from repro.relay.ingress import RelayProtocol
from repro.relay.service import (
    MAX_RECORDS_PER_RESPONSE,
    RELAY_DOMAIN_FALLBACK,
    RELAY_DOMAIN_QUIC,
)
from repro.worldgen.deployment import scan_time


def client_subnet(world, index: int = 0) -> Prefix:
    prefix = world.ground.client_ases[index].asys.prefixes[0]
    return Prefix.from_address(prefix.network_address, 24)


@pytest.fixture(scope="module")
def timeline_world():
    """A dedicated world whose clock we steer across months."""
    from repro.worldgen import WorldConfig, build_world

    return build_world(WorldConfig.tiny(seed=31))


class TestZoneTimeline:
    def test_fallback_served_by_apple_before_march(self, timeline_world):
        world = timeline_world
        world.clock.advance_to(scan_time(2022, 2))
        # Query a subnet assigned to the AKAMAI operator: with no Akamai
        # fallback relays deployed yet, Apple serves (the paper's
        # "fallback relays were initially served by Apple").
        akamai_unit = next(
            u for u in world.assignment.units() if u.operator_asn == 36183
        )
        subnet = Prefix.from_address(akamai_unit.prefix.network_address, 24)
        response = world.route53.handle(
            DnsMessage.query(RELAY_DOMAIN_FALLBACK, RRType.A, ecs=subnet)
        )
        asns = {world.routing.origin_of(a) for a in response.answer_addresses()}
        assert asns == {714}

    def test_fallback_served_by_akamai_in_april(self, timeline_world):
        world = timeline_world
        world.clock.advance_to(scan_time(2022, 4))
        akamai_unit = next(
            u for u in world.assignment.units() if u.operator_asn == 36183
        )
        subnet = Prefix.from_address(akamai_unit.prefix.network_address, 24)
        response = world.route53.handle(
            DnsMessage.query(RELAY_DOMAIN_FALLBACK, RRType.A, ecs=subnet)
        )
        asns = {world.routing.origin_of(a) for a in response.answer_addresses()}
        assert asns == {36183}

    def test_record_cap(self, timeline_world):
        world = timeline_world
        for _ in range(30):
            response = world.route53.handle(
                DnsMessage.query(
                    RELAY_DOMAIN_QUIC, RRType.A, ecs=client_subnet(world)
                )
            )
            assert 1 <= len(response.answers) <= MAX_RECORDS_PER_RESPONSE

    def test_rotation_covers_pod(self, timeline_world):
        """Repeated queries for one subnet cycle through the pod."""
        world = timeline_world
        subnet = client_subnet(world)
        unit = world.assignment.lookup(subnet)
        pod_size = len(
            [
                r
                for r in world.ingress_v4.pod_relays(
                    unit.pod, RelayProtocol.QUIC, world.clock.now
                )
                if r.asn == unit.operator_asn
            ]
        ) or len(
            world.ingress_v4.active_cached(
                world.clock.now, RelayProtocol.QUIC, unit.operator_asn
            )
        )
        seen = set()
        for _ in range(pod_size + MAX_RECORDS_PER_RESPONSE):
            response = world.route53.handle(
                DnsMessage.query(RELAY_DOMAIN_QUIC, RRType.A, ecs=subnet)
            )
            seen.update(response.answer_addresses())
        assert len(seen) == pod_size

    def test_answers_single_as_always(self, timeline_world):
        world = timeline_world
        for index in range(0, 40, 4):
            response = world.route53.handle(
                DnsMessage.query(
                    RELAY_DOMAIN_QUIC, RRType.A, ecs=client_subnet(world, index)
                )
            )
            asns = {
                world.routing.origin_of(a) for a in response.answer_addresses()
            }
            assert len(asns) == 1

    def test_scope_matches_assignment_unit(self, timeline_world):
        world = timeline_world
        subnet = client_subnet(world)
        unit = world.assignment.lookup(subnet)
        response = world.route53.handle(
            DnsMessage.query(RELAY_DOMAIN_QUIC, RRType.A, ecs=subnet)
        )
        assert response.client_subnet.scope_prefix_length == unit.scope_len

    def test_aaaa_answers_follow_same_assignment(self, timeline_world):
        world = timeline_world
        akamai_unit = next(
            u for u in world.assignment.units() if u.operator_asn == 36183
        )
        subnet = Prefix.from_address(akamai_unit.prefix.network_address, 24)
        response = world.route53.handle(
            DnsMessage.query(RELAY_DOMAIN_QUIC, RRType.AAAA, ecs=subnet)
        )
        addresses = response.answer_addresses()
        assert addresses
        assert {world.routing.origin_of(a) for a in addresses} == {36183}


class TestSessionDataPlane:
    def test_fetch_accounts_bytes(self, timeline_world):
        world = timeline_world
        client = world.make_vantage_client()
        # Issue the request via a session to inspect the data plane.
        from repro.relay.ingress import RelayProtocol as RP

        ingress = sorted(
            world.ingress_v4.active_addresses(world.clock.now, RP.QUIC)
        )[0]
        session = world.service.connect(
            client_address=client.address,
            client_asn=client.asn,
            client_country=client.country,
            client_location=client.location,
            ingress_address=ingress,
            target_authority=world.web_server.hostname,
        )
        session.fetch(world.web_server)
        plane = session.data_plane
        assert plane.application_bytes() > 0
        assert plane.observable_bytes() >= plane.application_bytes()
        # The configured 512-byte padding quantises observable sizes.
        for stream in plane.streams.values():
            assert stream.wire_bytes_up % 512 == 0
            assert stream.wire_bytes_down % 512 == 0

    def test_parallel_fetches_use_distinct_streams(self, timeline_world):
        world = timeline_world
        client = world.make_vantage_client()
        from repro.relay.ingress import RelayProtocol as RP

        ingress = sorted(
            world.ingress_v4.active_addresses(world.clock.now, RP.QUIC)
        )[0]
        session = world.service.connect(
            client_address=client.address,
            client_asn=client.asn,
            client_country=client.country,
            client_location=client.location,
            ingress_address=ingress,
            target_authority=world.web_server.hostname,
        )
        session.fetch(world.web_server)
        session.fetch(world.web_server, path="/second")
        assert len(session.data_plane.streams) == 2
        assert session.data_plane.open_stream_count() == 0  # both closed
