"""Tests for the access-token fraud-prevention subsystem."""

import pytest

from repro.errors import RelayError
from repro.relay.tokens import AccessToken, TokenIssuer
from repro.simtime import SECONDS_PER_DAY, SimClock


@pytest.fixture()
def issuer():
    return TokenIssuer(SimClock(), daily_budget=3)


class TestTokenIssuer:
    def test_issue_and_consume(self, issuer):
        token = issuer.issue("account-1")
        assert issuer.validate_and_consume(token)

    def test_single_use(self, issuer):
        token = issuer.issue("account-1")
        assert issuer.validate_and_consume(token)
        assert not issuer.validate_and_consume(token)
        assert issuer.rejected_validation == 1

    def test_forged_token_rejected(self, issuer):
        forged = AccessToken("0" * 64, 0.0)
        assert not issuer.validate_and_consume(forged)

    def test_malformed_token_rejected(self):
        with pytest.raises(RelayError):
            AccessToken("short", 0.0)

    def test_daily_budget_enforced(self, issuer):
        for _ in range(3):
            issuer.issue("account-1")
        with pytest.raises(RelayError):
            issuer.issue("account-1")
        assert issuer.rejected_issuance == 1
        assert issuer.remaining_budget("account-1") == 0

    def test_budget_is_per_account(self, issuer):
        for _ in range(3):
            issuer.issue("account-1")
        issuer.issue("account-2")
        assert issuer.remaining_budget("account-2") == 2

    def test_budget_resets_daily(self):
        clock = SimClock()
        issuer = TokenIssuer(clock, daily_budget=1)
        issuer.issue("account-1")
        with pytest.raises(RelayError):
            issuer.issue("account-1")
        clock.advance(SECONDS_PER_DAY)
        issuer.issue("account-1")  # new day, fresh budget

    def test_tokens_unique(self, issuer):
        tokens = {issuer.issue("account-1").token_id for _ in range(3)}
        assert len(tokens) == 3

    def test_unlinkability_invariant(self, issuer):
        token = issuer.issue("account-1")
        assert not issuer.can_link_token_to_account(token)
        # The validation-side state must not mention the account id.
        assert "account-1" not in repr(issuer._valid_tokens)

    def test_invalid_budget(self):
        with pytest.raises(RelayError):
            TokenIssuer(SimClock(), daily_budget=0)

    def test_old_token_valid_across_days_until_consumed(self):
        clock = SimClock()
        issuer = TokenIssuer(clock, daily_budget=2)
        token = issuer.issue("account-1")
        clock.advance(2 * SECONDS_PER_DAY)
        assert issuer.validate_and_consume(token)
