"""Tests for repro.relay.service, client, and observer using a tiny world."""

import pytest

from repro.errors import RelayError, RelayUnavailable
from repro.dns.message import DnsMessage
from repro.dns.rr import RRType
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.geo import GeoPoint
from repro.relay.client import DnsConfig, RelayClient, RequestTool
from repro.relay.ingress import RelayProtocol
from repro.relay.observer import EchoService, ObservationServer
from repro.relay.service import (
    RELAY_DOMAIN_FALLBACK,
    RELAY_DOMAIN_QUIC,
    AssignmentMap,
    AssignmentUnit,
)


class TestAssignmentMap:
    def test_lookup_exact_and_contained(self):
        amap = AssignmentMap()
        unit = AssignmentUnit(Prefix.parse("10.0.0.0/16"), 16, 714, "EU-0")
        amap.add(unit)
        assert amap.lookup(Prefix.parse("10.0.5.0/24")) is unit
        assert amap.lookup(Prefix.parse("10.0.0.0/16")) is unit
        assert amap.lookup(Prefix.parse("11.0.0.0/24")) is None

    def test_wider_query_matches_by_first_address(self):
        amap = AssignmentMap()
        unit = AssignmentUnit(Prefix.parse("10.0.0.0/16"), 16, 714, "EU-0")
        amap.add(unit)
        assert amap.lookup(Prefix.parse("10.0.0.0/8")) is unit

    def test_scope_cannot_be_wider_than_prefix(self):
        with pytest.raises(RelayError):
            AssignmentUnit(Prefix.parse("10.0.0.0/16"), 8, 714, "EU-0")


class TestRelayZone:
    def test_quic_domain_answers_with_ecs(self, tiny_world):
        world = tiny_world
        client_prefix = world.ground.client_ases[0].asys.prefixes[0]
        subnet = Prefix.from_address(client_prefix.network_address, 24)
        query = DnsMessage.query(RELAY_DOMAIN_QUIC, RRType.A, ecs=subnet)
        response = world.route53.handle(query)
        addresses = response.answer_addresses()
        assert addresses
        assert len(addresses) <= 8
        asns = {world.routing.origin_of(a) for a in addresses}
        assert asns <= {714, 36183}
        assert len(asns) == 1  # single-AS responses

    def test_fallback_domain_exists(self, tiny_world):
        response = tiny_world.route53.handle(
            DnsMessage.query(RELAY_DOMAIN_FALLBACK, RRType.A)
        )
        assert response.answer_addresses()

    def test_aaaa_answers(self, tiny_world):
        response = tiny_world.route53.handle(
            DnsMessage.query(RELAY_DOMAIN_QUIC, RRType.AAAA)
        )
        addresses = response.answer_addresses()
        assert addresses
        assert all(a.version == 6 for a in addresses)

    def test_ipv6_ecs_scope_zero(self, tiny_world):
        query = DnsMessage.query(
            RELAY_DOMAIN_QUIC, RRType.A, ecs=Prefix.parse("2001:db8::/56")
        )
        response = tiny_world.route53.handle(query)
        assert response.client_subnet.scope_prefix_length == 0

    def test_unknown_subdomain_nxdomain(self, tiny_world):
        from repro.dns.message import Rcode

        response = tiny_world.route53.handle(
            DnsMessage.query("nothing.icloud.com", RRType.A)
        )
        assert response.rcode == Rcode.NXDOMAIN


class TestService:
    def _client_args(self, world):
        vantage = world.ground.vantage_prefix
        return dict(
            client_address=vantage.address_at(40),
            client_asn=64496,
            client_country="DE",
            client_location=GeoPoint(48.1, 11.5),
            target_authority="observer.vantage.example",
        )

    def _active_ingress(self, world):
        return sorted(
            world.ingress_v4.active_addresses(world.clock.now, RelayProtocol.QUIC)
        )[0]

    def test_connect_builds_session(self, tiny_world):
        world = tiny_world
        session = world.service.connect(
            ingress_address=self._active_ingress(world), **self._client_args(world)
        )
        assert session.ingress_asn in (714, 36183)
        assert session.egress_operator_asn in (13335, 36183)
        assert session.geohash is not None
        assert session.tunnel.client_address == self._client_args(world)["client_address"]

    def test_connect_rejects_inactive_ingress(self, tiny_world):
        world = tiny_world
        with pytest.raises(RelayError):
            world.service.connect(
                ingress_address=IPAddress.parse("192.0.2.1"),
                **self._client_args(world),
            )

    def test_connect_rejects_unavailable_country(self, tiny_world):
        world = tiny_world
        args = self._client_args(world)
        args["client_country"] = "CN"
        with pytest.raises(RelayUnavailable):
            world.service.connect(
                ingress_address=self._active_ingress(world), **args
            )

    def test_no_location_preservation(self, tiny_world):
        world = tiny_world
        session = world.service.connect(
            ingress_address=self._active_ingress(world),
            preserve_location=False,
            **self._client_args(world),
        )
        assert session.geohash is None

    def test_egress_rotation_across_connections(self, tiny_world):
        world = tiny_world
        args = self._client_args(world)
        ingress = self._active_ingress(world)
        addresses = {
            world.service.connect(ingress_address=ingress, **args).egress_address
            for _ in range(40)
        }
        assert len(addresses) > 1

    def test_management_connection_in_ingress_prefix(self, tiny_world):
        world = tiny_world
        ingress = self._active_ingress(world)
        target = world.service.management_connection_target(ingress)
        assert world.routing.routed_prefix_of(target) == world.routing.routed_prefix_of(
            ingress
        )

    def test_quic_endpoint_only_for_active_quic_ingress(self, tiny_world):
        world = tiny_world
        ingress = self._active_ingress(world)
        assert world.service.quic_endpoint_for(ingress) is not None
        assert world.service.quic_endpoint_for(IPAddress.parse("192.0.2.1")) is None


class TestRelayClient:
    def test_open_dns_request(self, tiny_world):
        world = tiny_world
        client = world.make_vantage_client()
        obs = client.request(world.web_server, RequestTool.SAFARI)
        assert obs.protocol == RelayProtocol.QUIC
        assert world.routing.origin_of(obs.egress_address) == obs.egress_asn
        assert world.web_server.log[-1].requester == obs.egress_address
        assert world.web_server.log[-1].tool == "safari"

    def test_server_never_sees_client_address(self, tiny_world):
        world = tiny_world
        world.web_server.clear()
        client = world.make_vantage_client()
        client.request(world.web_server)
        assert client.address not in world.web_server.requester_addresses()

    def test_echo_returns_egress(self, tiny_world):
        world = tiny_world
        client = world.make_vantage_client()
        obs = client.request(world.echo_server, RequestTool.CURL, path="/plain")
        assert obs.body == str(obs.egress_address)

    def test_fixed_dns_pins_ingress(self, tiny_world):
        world = tiny_world
        ingress = sorted(
            world.ingress_v4.active_addresses(world.clock.now, RelayProtocol.QUIC)
        )[1]
        client = world.make_vantage_client(
            DnsConfig.fixed({("mask.icloud.com", RRType.A): [ingress]})
        )
        obs = client.request(world.web_server)
        assert obs.ingress_address == ingress

    def test_fixed_dns_empty_means_blocked(self, tiny_world):
        world = tiny_world
        client = world.make_vantage_client(DnsConfig.fixed({}))
        with pytest.raises(RelayUnavailable):
            client.request(world.web_server)

    def test_fallback_used_when_quic_unresolvable(self, tiny_world):
        world = tiny_world
        fallback = sorted(
            world.ingress_v4.active_addresses(
                world.clock.now, RelayProtocol.TCP_FALLBACK
            )
        )[0]
        client = world.make_vantage_client(
            DnsConfig.fixed({(RELAY_DOMAIN_FALLBACK, RRType.A): [fallback]})
        )
        obs = client.request(world.web_server)
        assert obs.protocol == RelayProtocol.TCP_FALLBACK

    def test_parallel_requests(self, tiny_world):
        world = tiny_world
        client = world.make_vantage_client()
        safari, curl = client.request_parallel(world.web_server, world.echo_server)
        assert safari.tool == RequestTool.SAFARI
        assert curl.tool == RequestTool.CURL


class TestObservers:
    def test_observation_log(self):
        server = ObservationServer("obs", IPAddress.parse("131.159.0.10"), 64496)
        server.handle_request(1.0, IPAddress.parse("172.232.0.1"), 36183, "curl")
        assert len(server.log) == 1
        server.clear()
        assert not server.log

    def test_echo_body(self):
        echo = EchoService("ipecho.net", IPAddress.parse("205.251.192.9"), 16509)
        body = echo.handle_request(1.0, IPAddress.parse("172.232.0.1"))
        assert body == "172.232.0.1"
        assert echo.requests_served == 1
