"""Client behaviour under DNS failure: the blocking user experience.

The whitepaper's stated blocking mechanism is "not resolving DNS
requests for the service's domain names" — these tests pin down what a
client actually experiences behind each resolver behaviour.
"""

import pytest

from repro.errors import RelayUnavailable, ResolutionTimeout
from repro.dns.message import Rcode
from repro.dns.resolver import (
    BlockingResolver,
    HijackingResolver,
    RecursiveResolver,
    TimeoutResolver,
)
from repro.netmodel.addr import IPAddress
from repro.relay.client import DnsConfig
from repro.relay.service import RELAY_DOMAIN_FALLBACK, RELAY_DOMAIN_QUIC


def vantage_resolver(world, **kwargs) -> RecursiveResolver:
    return RecursiveResolver(
        world.ns_registry,
        world.ground.vantage_prefix.address_at(99),
        clock=world.clock,
        send_ecs=False,
        **kwargs,
    )


class TestClientBehindBlockingResolvers:
    def test_nxdomain_blocking_makes_relay_unavailable(self, tiny_world):
        world = tiny_world
        resolver = BlockingResolver(
            vantage_resolver(world),
            [RELAY_DOMAIN_QUIC, RELAY_DOMAIN_FALLBACK],
            Rcode.NXDOMAIN,
        )
        client = world.make_vantage_client(DnsConfig.open(resolver))
        with pytest.raises(RelayUnavailable):
            client.request(world.web_server)

    def test_quic_only_blocking_falls_back_to_tcp(self, tiny_world):
        world = tiny_world
        resolver = BlockingResolver(
            vantage_resolver(world), [RELAY_DOMAIN_QUIC], Rcode.NXDOMAIN
        )
        client = world.make_vantage_client(DnsConfig.open(resolver))
        observation = client.request(world.web_server)
        from repro.relay.ingress import RelayProtocol

        assert observation.protocol == RelayProtocol.TCP_FALLBACK

    def test_timeout_resolver_propagates(self, tiny_world):
        world = tiny_world
        resolver = TimeoutResolver(world.ground.vantage_prefix.address_at(98))
        client = world.make_vantage_client(DnsConfig.open(resolver))
        with pytest.raises(ResolutionTimeout):
            client.request(world.web_server)

    def test_hijacked_client_cannot_connect(self, tiny_world):
        world = tiny_world
        resolver = HijackingResolver(
            vantage_resolver(world),
            [RELAY_DOMAIN_QUIC, RELAY_DOMAIN_FALLBACK],
            IPAddress.parse("45.90.28.1"),
        )
        client = world.make_vantage_client(DnsConfig.open(resolver))
        # The hijack target is not an active relay: the connection attempt
        # fails at the service rather than silently proxying elsewhere.
        from repro.errors import RelayError

        with pytest.raises(RelayError):
            client.request(world.web_server)

    def test_blocked_client_still_resolves_other_domains(self, tiny_world):
        world = tiny_world
        from repro.dns.rr import RRType
        from repro.worldgen.world import CONTROL_DOMAIN

        resolver = BlockingResolver(
            vantage_resolver(world),
            [RELAY_DOMAIN_QUIC, RELAY_DOMAIN_FALLBACK],
            Rcode.REFUSED,
        )
        assert resolver.resolve_addresses(CONTROL_DOMAIN, RRType.A)
