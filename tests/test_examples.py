"""Smoke tests: every example script runs end-to-end at tiny scale."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--scale", "0.004")
        assert "ingress addresses" in out
        assert "Table 3" in out
        assert "not the client" in out

    def test_ingress_enumeration(self):
        out = run_example("ingress_enumeration.py", "--scale", "0.004")
        assert "Table 1" in out
        assert "Table 2" in out
        assert "IPv6 ingress via Atlas" in out

    def test_egress_geo_study(self, tmp_path):
        out = run_example(
            "egress_geo_study.py", "--scale", "0.004", "--export-dir", str(tmp_path)
        )
        assert "Table 4" in out
        assert "US share" in out
        assert list(tmp_path.glob("fig2_scatter_*.csv"))
        assert list(tmp_path.glob("fig4_cdf_*.csv"))

    def test_relay_rotation_study(self):
        out = run_example("relay_rotation_study.py", "--scale", "0.004")
        assert "Figure 3" in out
        assert "address change rate" in out
        assert "QUIC probing" in out
        assert "share a last hop: True" in out

    def test_blocking_study(self):
        out = run_example("blocking_study.py", "--scale", "0.01")
        assert "Resolver survey" in out
        assert "blocked probes" in out

    def test_operator_impact_study(self):
        out = run_example("operator_impact_study.py", "--scale", "0.004")
        assert "ISP monitor" in out
        assert "server-side IDS" in out
        assert "QoE" in out

    def test_correlation_attack(self):
        out = run_example("correlation_attack.py", "--scale", "0.004", "--flows", "60")
        assert "Akamai_PR" in out
        assert "100.0%" in out  # the dual-role AS correlates

    def test_reproduce_paper(self, tmp_path):
        report = tmp_path / "report.md"
        run_example(
            "reproduce_paper.py", "--scale", "0.004", "--output", str(report)
        )
        text = report.read_text()
        assert "| Artefact | Quantity | Paper | Measured |" in text
        assert "Table 1" in text and "92.2" in text
