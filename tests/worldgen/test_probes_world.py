"""Tests for the probe population and the world facade."""

import pytest

from repro.dns.resolver import (
    BlockingResolver,
    HijackingResolver,
    PublicResolver,
    TimeoutResolver,
)
from repro.worldgen import WorldConfig, build_world


class TestProbePopulation:
    def test_probe_count_scales(self, small_world):
        config = small_world.config
        assert len(small_world.atlas) == config.s(config.atlas_probe_count, 40)

    def test_region_bias(self, small_world):
        by_region = small_world.atlas.probes_by_region()
        total = sum(by_region.values())
        na_eu = by_region.get("EU", 0) + by_region.get("NA", 0)
        assert na_eu / total > 0.6  # the documented NA/EU bias

    def test_probes_in_covered_countries_only(self, small_world):
        covered = set(small_world.deployment.probe_countries)
        for probe in small_world.atlas.probes.values():
            assert probe.country in covered

    def test_resolver_behaviour_quotas(self, small_world):
        config = small_world.config
        probes = list(small_world.atlas.probes.values())
        timeouts = sum(1 for p in probes if isinstance(p.resolver, TimeoutResolver))
        blocked = sum(1 for p in probes if isinstance(p.resolver, BlockingResolver))
        hijacked = sum(1 for p in probes if isinstance(p.resolver, HijackingResolver))
        public = sum(1 for p in probes if isinstance(p.resolver, PublicResolver))
        total = len(probes)
        assert abs(timeouts / total - config.atlas_timeout_fraction) < 0.02
        assert abs(blocked / total - config.atlas_block_fraction) < 0.02
        assert hijacked == config.atlas_hijack_probes
        expected_public = sum(config.atlas_public_resolver_shares.values())
        assert abs(public / total - expected_public) < 0.05

    def test_public_resolver_share_over_half(self, small_world):
        shares = small_world.atlas.resolver_provider_shares()
        public = sum(v for k, v in shares.items() if k != "local")
        assert public > 0.4

    def test_probe_addresses_routed_to_probe_as(self, small_world):
        for probe in list(small_world.atlas.probes.values())[:100]:
            assert small_world.routing.origin_of(probe.address) == probe.asn

    def test_many_distinct_ases(self, small_world):
        config = small_world.config
        target = config.s(config.atlas_as_count, 20)
        assert len(small_world.atlas.distinct_asns()) > 0.3 * target


class TestWorldFacade:
    def test_scan_months(self, tiny_world):
        assert tiny_world.scan_months() == [(2022, 1), (2022, 2), (2022, 3), (2022, 4)]

    def test_registry_routes_relay_domain(self, tiny_world):
        from repro.dns.name import DnsName

        server = tiny_world.ns_registry.authoritative_for(
            DnsName.parse("mask.icloud.com")
        )
        assert server is tiny_world.route53

    def test_control_domain_resolvable(self, tiny_world):
        from repro.dns.message import DnsMessage
        from repro.dns.rr import RRType
        from repro.worldgen.world import CONTROL_DOMAIN

        response = tiny_world.control_server.handle(
            DnsMessage.query(CONTROL_DOMAIN, RRType.A)
        )
        assert response.answer_addresses()

    def test_vantage_clients_get_distinct_addresses(self, tiny_world):
        a = tiny_world.make_vantage_client()
        b = tiny_world.make_vantage_client()
        assert a.address != b.address
        assert a.country == tiny_world.config.vantage_country

    def test_deterministic_generation(self):
        a = build_world(WorldConfig.tiny())
        b = build_world(WorldConfig.tiny())
        assert [r.address for r in a.ingress_v4.relays] == [
            r.address for r in b.ingress_v4.relays
        ]
        assert a.egress_list_may.to_csv() == b.egress_list_may.to_csv()

    def test_different_seeds_differ(self):
        a = build_world(WorldConfig.tiny(seed=1))
        b = build_world(WorldConfig.tiny(seed=2))
        assert a.egress_list_may.to_csv() != b.egress_list_may.to_csv()

    def test_web_server_attached_to_topology(self, tiny_world):
        assert tiny_world.topology.has_host(tiny_world.web_server.address)
