"""Tests for worldgen configuration and the base-Internet builder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorldGenError
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.asn import WellKnownAS
from repro.worldgen.config import WorldConfig
from repro.worldgen.internet import (
    SpaceAllocator,
    _power_law_counts,
    _round_to_power_of_two,
    build_internet,
    reserved_prefixes,
)


class TestWorldConfig:
    def test_defaults_valid(self):
        WorldConfig()

    def test_scale_bounds(self):
        with pytest.raises(WorldGenError):
            WorldConfig(scale=0.0)
        with pytest.raises(WorldGenError):
            WorldConfig(scale=1.5)

    def test_share_validation(self):
        with pytest.raises(WorldGenError):
            WorldConfig(both_apple_share=1.0)
        with pytest.raises(WorldGenError):
            WorldConfig(atlas_region_shares={"EU": 0.5})

    def test_scaled_accessor(self):
        config = WorldConfig(scale=0.5)
        assert config.s(100) == 50
        assert config.s(1, minimum=1) == 1
        assert config.s(0, minimum=0) == 0

    def test_presets(self):
        assert WorldConfig.tiny().scale < WorldConfig.small().scale <= 1.0


class TestSpaceAllocator:
    def test_allocates_aligned(self):
        allocator = SpaceAllocator([], start="1.0.0.0")
        a = allocator.allocate(24)
        b = allocator.allocate(24)
        assert a == Prefix.parse("1.0.0.0/24")
        assert b == Prefix.parse("1.0.1.0/24")

    def test_skips_reserved(self):
        reserved = [Prefix.parse("1.0.0.0/16")]
        allocator = SpaceAllocator(reserved, start="1.0.0.0")
        assert allocator.allocate(24) == Prefix.parse("1.1.0.0/24")

    def test_big_first_no_waste(self):
        allocator = SpaceAllocator([], start="1.0.0.0")
        allocator.allocate(16)
        allocator.allocate(20)
        allocator.allocate(24)
        assert allocator.wasted == 0

    def test_reserved_inside_span(self):
        reserved = [Prefix.parse("1.0.128.0/24")]
        allocator = SpaceAllocator(reserved, start="1.0.0.0")
        # A /16 cannot fit at 1.0.0.0 (overlaps the reserved /24).
        assert allocator.allocate(16) == Prefix.parse("1.1.0.0/16")


class TestDistributionHelpers:
    def test_power_law_total(self):
        counts = _power_law_counts(1000, 10, 0.5, 1)
        assert sum(counts) == 1000
        assert counts[0] >= counts[-1]
        assert min(counts) >= 1

    def test_power_law_minimum_enforced(self):
        counts = _power_law_counts(100, 40, 0.3, 2)
        assert min(counts) >= 2

    def test_round_to_power_of_two(self):
        counts = _round_to_power_of_two([3, 5, 9, 100], 1)
        for count in counts:
            assert count & (count - 1) == 0  # power of two

    def test_round_drift_bounded(self):
        original = [10] * 100
        rounded = _round_to_power_of_two(original, 1)
        assert abs(sum(rounded) - sum(original)) <= max(rounded)


@given(st.integers(min_value=10, max_value=10000), st.integers(min_value=1, max_value=50))
def test_power_law_counts_property(total, n):
    if total < n:
        total = n
    counts = _power_law_counts(total, n, 0.4, 1)
    assert len(counts) == n
    assert sum(counts) >= total  # exact unless minimums force overshoot
    assert all(c >= 1 for c in counts)


class TestBuildInternet:
    @pytest.fixture(scope="class")
    def ground(self):
        return build_internet(WorldConfig.tiny())

    def test_operator_ases_registered(self, ground):
        for asn in WellKnownAS:
            assert int(asn) in ground.registry

    def test_client_categories(self, ground):
        config = ground.config
        categories = {}
        for client in ground.client_ases:
            categories[client.category] = categories.get(client.category, 0) + 1
        assert categories["apple"] == config.s(config.apple_only_as_count, 4)
        assert categories["akamai"] == config.s(config.akamai_only_as_count, 4)
        assert categories["both"] == config.s(config.both_as_count, 4)

    def test_client_prefixes_routed(self, ground):
        for client in ground.client_ases[:50]:
            prefix = client.asys.prefixes[0]
            ann = ground.routing.covering_route(prefix)
            assert ann is not None and ann.origin_asn == client.asys.number

    def test_client_space_avoids_reserved(self, ground):
        reserved = reserved_prefixes()
        for client in ground.client_ases[:200]:
            prefix = client.asys.prefixes[0]
            assert not any(r.overlaps(prefix) for r in reserved)

    def test_slash24_totals_close_to_config(self, ground):
        config = ground.config
        total = ground.client_slash24_total()
        target = (
            config.s(config.apple_only_slash24s, 8)
            + config.s(config.akamai_only_slash24s, 16)
            + config.s(config.both_slash24s, 32)
        )
        assert abs(total - target) / target < 0.25

    def test_both_as_chunks_have_both_operators(self, ground):
        apple, akamai = int(WellKnownAS.APPLE), int(WellKnownAS.AKAMAI_PR)
        both_clients = [c for c in ground.client_ases if c.category == "both"]
        chunk_ops: dict[int, set[int]] = {}
        for chunk in ground.chunks:
            ann = ground.routing.covering_route(chunk.prefix)
            if ann is not None:
                chunk_ops.setdefault(ann.origin_asn, set()).add(chunk.operator_asn)
        for client in both_clients[:50]:
            assert chunk_ops[client.asys.number] == {apple, akamai}

    def test_single_operator_categories(self, ground):
        apple = int(WellKnownAS.APPLE)
        by_asn = {c.asys.number: c for c in ground.client_ases}
        for chunk in ground.chunks:
            if chunk.country.startswith("@"):
                continue
            ann = ground.routing.covering_route(chunk.prefix)
            if ann is None or ann.origin_asn not in by_asn:
                continue
            category = by_asn[ann.origin_asn].category
            if category == "apple":
                assert chunk.operator_asn == apple

    def test_population_totals(self, ground):
        config = ground.config
        total = sum(
            ground.population.population(c.asys.number) for c in ground.client_ases
        )
        target = (
            config.s(config.apple_only_population)
            + config.s(config.akamai_only_population)
            + config.s(config.both_population)
        )
        assert abs(total - target) / target < 0.05

    def test_resolver_sites_routed(self, ground):
        for (provider, _region), address in ground.resolver_sites.items():
            asn = ground.routing.origin_of(address)
            assert asn is not None

    def test_chunk_scopes_at_least_prefix(self, ground):
        for chunk in ground.chunks[:500]:
            assert chunk.scope_len >= chunk.prefix.length
