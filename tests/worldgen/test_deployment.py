"""Tests for the deployment builder (via tiny_world ground truth)."""

import pytest

from repro.errors import WorldGenError
from repro.netmodel.asn import WellKnownAS
from repro.relay.ingress import RelayProtocol
from repro.simtime import month_to_seconds
from repro.worldgen.deployment import compose_subnet_lengths, scan_time

APPLE = int(WellKnownAS.APPLE)
AKAMAI_PR = int(WellKnownAS.AKAMAI_PR)


class TestComposeSubnetLengths:
    def test_all_slash32(self):
        assert compose_subnet_lengths(10, 10) == [32] * 10

    def test_all_slash31(self):
        assert compose_subnet_lengths(10, 20) == [31] * 10

    def test_all_slash29(self):
        assert compose_subnet_lengths(4, 32) == [29] * 4

    def test_mixed_exact(self):
        lengths = compose_subnet_lengths(1602, 5100)
        total = sum(1 << (32 - l) for l in lengths)
        assert total == 5100
        assert set(lengths) <= {30, 31}

    def test_akamai_pr_shape(self):
        lengths = compose_subnet_lengths(9890, 57589)
        total = sum(1 << (32 - l) for l in lengths)
        assert abs(total - 57589) < 8
        assert set(lengths) <= {29, 30}

    def test_infeasible(self):
        with pytest.raises(WorldGenError):
            compose_subnet_lengths(2, 17)
        with pytest.raises(WorldGenError):
            compose_subnet_lengths(2, 1)


class TestScanTime:
    def test_one_day_into_month(self):
        assert scan_time(2022, 4) == month_to_seconds(2022, 4) + 86400.0


class TestIngressDeployment:
    def test_monthly_counts_match_config(self, tiny_world):
        world = tiny_world
        config = world.config
        for month in config.ingress_months:
            at = scan_time(month.year, month.month)
            quic = world.ingress_v4.counts_by_asn(at, RelayProtocol.QUIC)
            assert quic.get(APPLE, 0) == config.s(month.quic_apple, 4)
            assert quic.get(AKAMAI_PR, 0) == config.s(month.quic_akamai, 8)
            fallback = world.ingress_v4.counts_by_asn(at, RelayProtocol.TCP_FALLBACK)
            assert fallback.get(APPLE, 0) == config.s(month.fallback_apple, 4)

    def test_late_relay_activates_after_april_scan(self, tiny_world):
        world = tiny_world
        april = world.deployment.april_scan_start
        before = world.ingress_v4.active_addresses(april, RelayProtocol.QUIC)
        after = world.ingress_v4.active_addresses(
            april + 40 * 3600.0, RelayProtocol.QUIC
        )
        assert len(after) == len(before) + 1

    def test_ingress_addresses_in_two_ases(self, tiny_world):
        world = tiny_world
        at = world.deployment.april_scan_start
        asns = {
            world.routing.origin_of(r.address)
            for r in world.ingress_v4.relays
            if r.is_active(at)
        }
        assert asns == {APPLE, AKAMAI_PR}

    def test_v6_fleet_counts(self, tiny_world):
        world = tiny_world
        config = world.config
        counts = world.ingress_v6.counts_by_asn(
            world.deployment.april_scan_start, RelayProtocol.QUIC
        )
        assert counts[APPLE] == config.s(config.ingress_v6_apple, 4)
        assert counts[AKAMAI_PR] == config.s(config.ingress_v6_akamai, 4)

    def test_hidden_relays_in_tail_pods(self, tiny_world):
        world = tiny_world
        tail_pods = {
            r.pod for r in world.ingress_v4.relays if r.pod.startswith("CC:")
        }
        for pod in tail_pods:
            assert pod[3:] in set(world.deployment.tail_countries)


class TestEgressDeployment:
    def test_total_growth_since_january(self, tiny_world):
        world = tiny_world
        growth = len(world.egress_list_may) / len(world.egress_list_jan) - 1.0
        assert 0.05 < growth < 0.30

    def test_churn_is_small(self, tiny_world):
        world = tiny_world
        kept, added, removed = world.egress_list_may.churn_against(
            world.egress_list_jan
        )
        assert removed < 0.05 * len(world.egress_list_jan)
        assert kept > 0.8 * len(world.egress_list_jan)

    def test_v6_entries_are_slash64(self, tiny_world):
        for entry in tiny_world.egress_list_may.entries(6):
            assert entry.prefix.length == 64

    def test_missing_city_fraction(self, tiny_world):
        fraction = tiny_world.egress_list_may.missing_city_fraction()
        assert 0.0 < fraction < 0.06

    def test_egress_prefixes_routed_by_operator(self, tiny_world):
        world = tiny_world
        operators = {APPLE, AKAMAI_PR, int(WellKnownAS.AKAMAI_EG),
                     int(WellKnownAS.CLOUDFLARE), int(WellKnownAS.FASTLY)}
        for entry in world.egress_list_may.entries()[:500]:
            asn = world.routing.origin_of(entry.prefix.network_address)
            assert asn in operators and asn != APPLE

    def test_ingress_egress_prefixes_disjoint(self, tiny_world):
        world = tiny_world
        egress_prefixes = set()
        for entry in world.egress_list_may:
            prefix = world.routing.routed_prefix_of(entry.prefix.network_address)
            if prefix is not None:
                egress_prefixes.add(prefix)
        for relay in world.ingress_v4.relays + world.ingress_v6.relays:
            prefix = world.routing.routed_prefix_of(relay.address)
            assert prefix not in egress_prefixes

    def test_pools_cover_vantage_country(self, tiny_world):
        world = tiny_world
        weights = world.egress_fleet.operators_for(world.config.vantage_country)
        assert set(weights) == {int(WellKnownAS.CLOUDFLARE), AKAMAI_PR}

    def test_pool_addresses_inside_egress_list(self, tiny_world):
        world = tiny_world
        pool = world.egress_fleet.pool_for(AKAMAI_PR, "DE")
        for address in pool.addresses:
            assert world.egress_list_may.contains_address(address)


class TestHistoryAndTopology:
    def test_akamai_pr_first_seen(self, tiny_world):
        world = tiny_world
        assert world.history.first_occurrence(AKAMAI_PR) == (2021, 6)

    def test_other_operators_visible_from_start(self, tiny_world):
        world = tiny_world
        start = world.history.months()[0]
        visible = world.history.visible_in(*start)
        assert APPLE in visible
        assert int(WellKnownAS.CLOUDFLARE) in visible
        assert AKAMAI_PR not in visible

    def test_history_span(self, tiny_world):
        months = tiny_world.history.months()
        assert months[0] == (2016, 1)
        assert months[-1] == (2022, 5)
        assert len(months) == 77

    def test_ingress_hosts_attached(self, tiny_world):
        world = tiny_world
        for relay in world.ingress_v4.relays[:20]:
            assert world.topology.has_host(relay.address)

    def test_geodb_mostly_adopts_egress_mapping(self, tiny_world):
        assert tiny_world.geodb.adoption_rate() > 0.85
