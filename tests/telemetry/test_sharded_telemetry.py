"""Telemetry determinism across worker counts.

The merged shard snapshot must agree with the sequential run on every
counter in :func:`repro.telemetry.deterministic_totals` — the same
invariant the bench harness gates in-run and CI checks across the
perf-smoke matrix legs — and the probe accounting must close exactly:
every probe the scanner sent is answered or classified by the server.
"""

import pytest

from repro.scan.campaign import ScanCampaign
from repro.scan.ecs_scanner import EcsScanSettings
from repro.scan.sharding import ShardedCampaignExecutor
from repro.telemetry import Telemetry, deterministic_totals
from repro.worldgen import WorldConfig, build_world

pytestmark = pytest.mark.skipif(
    not ShardedCampaignExecutor.supported(),
    reason="sharded execution requires the fork start method",
)

WORKER_COUNTS = (1, 4)


@pytest.fixture(scope="module")
def snapshots():
    """workers -> full telemetry snapshot of a same-seed tiny campaign."""
    result = {}
    for workers in WORKER_COUNTS:
        telemetry = Telemetry()
        world = build_world(WorldConfig.tiny(seed=2022), telemetry=telemetry)
        with ScanCampaign(
            server=world.route53,
            routing=world.routing,
            clock=world.clock,
            settings=EcsScanSettings(workers=workers, campaign_seed=2022),
            telemetry=telemetry,
        ) as campaign:
            campaign.run(world.scan_months())
        result[workers] = telemetry.snapshot()
    return result


def _counters(snapshot):
    return {
        (entry["name"], tuple(sorted(entry["labels"].items()))): entry["value"]
        for entry in snapshot["metrics"]["counters"]
    }


class TestShardedTelemetry:
    def test_deterministic_totals_identical(self, snapshots):
        sequential = deterministic_totals(snapshots[1])
        sharded = deterministic_totals(snapshots[4])
        assert sequential == sharded
        assert len(sequential) > 20  # the invariant covers real breadth

    def test_probe_accounting_closes(self, snapshots):
        """sent == answered + nodata + nxdomain + refused, per run."""
        for workers, snapshot in snapshots.items():
            counters = _counters(snapshot)
            sent = sum(
                value
                for (name, _), value in counters.items()
                if name == "ecs.probes_sent"
            )
            server = {
                name.removeprefix("dns.server."): value
                for (name, labels), value in counters.items()
                if name.startswith("dns.server.")
                and dict(labels).get("server") == "route53"
            }
            assert sent > 0
            accounted = (
                server["answered"]
                + server["nodata"]
                + server["nxdomain"]
                + server["refused"]
            )
            assert sent == accounted, f"workers={workers}"
            assert server["queries"] == sent

    def test_answers_match_scope_observations(self, snapshots):
        """Every answered probe contributes one ecs.scope observation."""
        for snapshot in snapshots.values():
            counters = _counters(snapshot)
            answered = sum(
                value
                for (name, _), value in counters.items()
                if name in ("ecs.answers", "ecs.sparse_answered")
            )
            observed = sum(
                entry["count"]
                for entry in snapshot["metrics"]["histograms"]
                if entry["name"] == "ecs.scope"
            )
            assert answered == observed > 0

    def test_shard_bookkeeping_present_only_when_sharded(self, snapshots):
        sequential = _counters(snapshots[1])
        sharded = _counters(snapshots[4])
        assert not any(name == "ecs.shards" for name, _ in sequential)
        shard_counts = [
            value for (name, _), value in sharded.items() if name == "ecs.shards"
        ]
        assert shard_counts and all(count > 0 for count in shard_counts)

    def test_worldgen_spans_recorded(self, snapshots):
        for snapshot in snapshots.values():
            names = {span["name"] for span in snapshot["spans"]}
            assert "worldgen.internet" in names
            assert any(
                span["name"] == "campaign.month" for span in snapshot["spans"]
            )
