"""Span tracing: nesting, sim vs wall clocks, Chrome trace export."""

from repro.simtime import SimClock
from repro.telemetry import NullTracer, Tracer


class TestTracer:
    def test_sim_time_tracks_clock_advance(self):
        clock = SimClock()
        tracer = Tracer()
        tracer.bind_clock(clock)
        clock.advance_to(100.0)
        with tracer.span("scan"):
            clock.advance(3600.0)
        (root,) = tracer.roots
        assert root.sim_start == 100.0
        assert root.sim_end == 3700.0
        assert root.sim_seconds == 3600.0
        assert root.wall_seconds > 0.0

    def test_unbound_clock_records_zero_sim_time(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert tracer.roots[0].sim_seconds == 0.0

    def test_nesting(self):
        tracer = Tracer(SimClock())
        with tracer.span("outer"):
            with tracer.span("inner", month=1):
                pass
            with tracer.span("inner", month=2):
                pass
        with tracer.span("second-root"):
            pass
        assert [r.name for r in tracer.roots] == ["outer", "second-root"]
        outer = tracer.roots[0]
        assert [c.attrs["month"] for c in outer.children] == [1, 2]
        assert outer.children[0].children == []

    def test_open_span_reports_zero_duration(self):
        tracer = Tracer()
        context = tracer.span("open")
        span = context.__enter__()
        assert span.wall_seconds == 0.0
        assert span.sim_seconds == 0.0
        context.__exit__(None, None, None)
        assert span.wall_seconds > 0.0

    def test_exception_unwinding_closes_the_stack(self):
        tracer = Tracer()
        try:
            with tracer.span("outer"):
                tracer.span("leaked").__enter__()  # never exited
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        # The stack fully unwound: a new span is a root, not a child.
        with tracer.span("after"):
            pass
        assert [r.name for r in tracer.roots] == ["outer", "after"]

    def test_tree_is_json_friendly(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("parent", phase="x"):
            clock.advance(5.0)
            with tracer.span("child"):
                pass
        (tree,) = tracer.tree()
        assert tree["name"] == "parent"
        assert tree["attrs"] == {"phase": "x"}
        assert tree["sim_seconds"] == 5.0
        assert tree["children"][0]["name"] == "child"


class TestChromeTrace:
    def test_events_are_relative_microseconds(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("a"):
            clock.advance(10.0)
            with tracer.span("b"):
                pass
        trace = tracer.chrome_trace()
        events = trace["traceEvents"]
        assert [e["name"] for e in events] == ["a", "b"]
        first = events[0]
        assert first["ph"] == "X"
        assert first["ts"] == 0.0  # relative to the earliest span
        assert first["dur"] > 0.0
        assert first["args"]["sim_start_s"] == 0.0
        assert first["args"]["sim_end_s"] == 10.0
        assert events[1]["ts"] >= 0.0

    def test_empty_and_open_spans(self):
        tracer = Tracer()
        assert tracer.chrome_trace() == {"traceEvents": []}
        tracer.span("open").__enter__()
        assert tracer.chrome_trace() == {"traceEvents": []}


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        tracer.bind_clock(SimClock())
        with tracer.span("x", k="v") as span:
            assert span.wall_seconds == 0.0
        assert tracer.roots == []
        assert tracer.tree() == []
        assert tracer.chrome_trace() == {"traceEvents": []}

    def test_shares_span_singleton(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")
