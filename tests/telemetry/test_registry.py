"""Registry semantics: labels, histograms, merging, the null registry."""

import pickle

import pytest

from repro.perfstats import CacheStats
from repro.telemetry import (
    DURATION_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestInstruments:
    def test_counter_inc_and_direct_value(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        counter.value += 2
        assert counter.value == 7

    def test_histogram_le_semantics(self):
        histogram = Histogram((1.0, 5.0))
        histogram.observe(1.0)  # le=1.0 is inclusive
        histogram.observe(1.1)
        histogram.observe(100.0)  # overflow bucket
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.total == pytest.approx(102.1)

    def test_histogram_observe_many_matches_observe(self):
        one_at_a_time = Histogram(DURATION_BUCKETS)
        batched = Histogram(DURATION_BUCKETS)
        for _ in range(1000):
            one_at_a_time.observe(0.42)
        batched.observe_many(0.42, 1000)
        assert batched.counts == one_at_a_time.counts
        assert batched.count == one_at_a_time.count
        assert batched.total == pytest.approx(one_at_a_time.total)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram((5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))

    def test_counter_pickles(self):
        counter = Counter(41)
        assert pickle.loads(pickle.dumps(counter)).value == 41


class TestRegistry:
    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("x", foo="1", bar="2")
        b = registry.counter("x", bar="2", foo="1")
        assert a is b
        assert registry.counter("x", foo="1", bar="3") is not a

    def test_histogram_bounds_must_agree(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", (1.0, 3.0))

    def test_snapshot_shape_and_order(self):
        registry = MetricsRegistry()
        registry.counter("b.second").inc(2)
        registry.counter("a.first", k="v").inc(1)
        registry.gauge("g").set(9)
        snapshot = registry.snapshot()
        assert [e["name"] for e in snapshot["counters"]] == ["a.first", "b.second"]
        assert snapshot["counters"][0]["labels"] == {"k": "v"}
        assert snapshot["gauges"] == [{"name": "g", "labels": {}, "value": 9}]
        assert snapshot["histograms"] == []

    def test_adopted_visible_but_not_owned(self):
        registry = MetricsRegistry()
        stats = CacheStats(hits=5)
        registry.adopt("cache.hits", stats.counter("hits"), cache="test")
        assert registry.owned_snapshot()["counters"] == []
        snapshot = registry.snapshot()
        assert snapshot["counters"] == [
            {"name": "cache.hits", "labels": {"cache": "test"}, "value": 5}
        ]

    def test_collectors_run_at_snapshot(self):
        registry = MetricsRegistry()
        registry.add_collector(lambda r: r.gauge("live").set(3))
        assert registry.snapshot()["gauges"][0]["value"] == 3

    def test_reset_owned_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(7)
        histogram = registry.histogram("h", (1.0,))
        histogram.observe(0.5)
        registry.reset_owned()
        assert counter.value == 0
        assert histogram.count == 0 and histogram.counts == [0, 0]
        assert registry.counter("c") is counter  # same object survives

    def test_absorb_is_order_independent(self):
        """Counters sum, gauges max, buckets add — any merge order."""
        shards = []
        for value in (3, 10, 4):
            shard = MetricsRegistry()
            shard.counter("n", d="x").inc(value)
            shard.gauge("peak").set(value)
            shard.histogram("h", (5.0,)).observe(value)
            shards.append(shard.owned_snapshot())

        merged = []
        for order in ([0, 1, 2], [2, 0, 1], [1, 2, 0]):
            parent = MetricsRegistry()
            for index in order:
                parent.absorb(shards[index])
            merged.append(parent.snapshot())
        assert merged[0] == merged[1] == merged[2]
        assert merged[0]["counters"][0]["value"] == 17
        assert merged[0]["gauges"][0]["value"] == 10
        assert merged[0]["histograms"][0]["counts"] == [2, 1]

    def test_absorb_none_is_noop(self):
        registry = MetricsRegistry()
        registry.absorb(None)
        registry.absorb({})
        assert registry.snapshot()["counters"] == []


class TestNullRegistry:
    def test_disabled_and_inert(self):
        registry = NullRegistry()
        assert registry.enabled is False
        counter = registry.counter("anything", k="v")
        counter.inc(100)
        registry.gauge("g").set(5)
        registry.histogram("h", (1.0,)).observe(3.0)
        registry.histogram("h", (1.0,)).observe_many(3.0, 10)
        assert counter.value == 0
        assert registry.snapshot() == {
            "counters": [],
            "gauges": [],
            "histograms": [],
        }

    def test_shares_singletons(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b", k="v")

    def test_adopt_and_collectors_ignored(self):
        registry = NullRegistry()
        registry.adopt("c", Counter(9))
        registry.add_collector(lambda r: (_ for _ in ()).throw(AssertionError))
        assert registry.snapshot()["counters"] == []
