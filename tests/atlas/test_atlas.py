"""Tests for the Atlas-style measurement platform."""

import pytest

from repro.errors import MeasurementError
from repro.atlas.measurement import (
    DnsMeasurementResult,
    DnsMeasurementSpec,
    MeasurementTarget,
    ProbeDnsResult,
)
from repro.atlas.platform import AtlasPlatform
from repro.atlas.probe import Probe
from repro.dns.message import Rcode
from repro.dns.name import DnsName
from repro.dns.resolver import RecursiveResolver, TimeoutResolver
from repro.dns.rr import RRType, a_record
from repro.dns.server import AuthoritativeServer, NameServerRegistry
from repro.dns.zone import Zone
from repro.netmodel.addr import IPAddress
from repro.simtime import SimClock

DOMAIN = "service.example."


@pytest.fixture()
def setup():
    clock = SimClock()
    registry = NameServerRegistry()
    server = AuthoritativeServer(IPAddress.parse("205.251.192.1"))
    zone = Zone(DOMAIN)
    zone.add_record(
        a_record(DnsName.parse(DOMAIN), IPAddress.parse("192.0.2.80"))
    )
    server.add_zone(zone)
    registry.register(server)
    platform = AtlasPlatform(registry, clock)
    return platform, registry, clock


def make_probe(probe_id: int, registry, clock, resolver=None, country="DE", v6=False) -> Probe:
    address = IPAddress(4, (100 << 24) + probe_id * 256 + 7)
    if resolver is None:
        resolver = RecursiveResolver(registry, IPAddress(4, address.value ^ 1), clock=clock)
    return Probe(
        probe_id=probe_id,
        asn=100000 + probe_id,
        country=country,
        region="EU",
        address=address,
        resolver=resolver,
        address_v6=IPAddress.parse(f"2001:db8::{probe_id + 1}") if v6 else None,
    )


class TestProbe:
    def test_requires_v4_primary(self, setup):
        platform, registry, clock = setup
        with pytest.raises(ValueError):
            Probe(1, 1, "DE", "EU", IPAddress.parse("::1"),
                  TimeoutResolver(IPAddress.parse("::1")))

    def test_v6_flag(self, setup):
        _platform, registry, clock = setup
        assert make_probe(1, registry, clock, v6=True).has_ipv6
        assert not make_probe(2, registry, clock).has_ipv6


class TestPlatform:
    def test_add_probe_and_duplicates(self, setup):
        platform, registry, clock = setup
        platform.add_probe(make_probe(1, registry, clock))
        with pytest.raises(MeasurementError):
            platform.add_probe(make_probe(1, registry, clock))
        assert len(platform) == 1
        assert platform.probe(1).probe_id == 1
        with pytest.raises(MeasurementError):
            platform.probe(99)

    def test_inventory_stats(self, setup):
        platform, registry, clock = setup
        platform.add_probe(make_probe(1, registry, clock, country="DE"))
        platform.add_probe(make_probe(2, registry, clock, country="US"))
        assert platform.distinct_countries() == {"DE", "US"}
        assert len(platform.distinct_asns()) == 2
        assert platform.probes_by_region() == {"EU": 2}

    def test_local_resolver_measurement(self, setup):
        platform, registry, clock = setup
        for i in range(3):
            platform.add_probe(make_probe(i, registry, clock))
        result = platform.run_dns(DnsMeasurementSpec(DOMAIN, RRType.A))
        assert len(result) == 3
        assert all(r.succeeded for r in result.results)
        assert result.distinct_addresses() == {IPAddress.parse("192.0.2.80")}

    def test_timeout_probe(self, setup):
        platform, registry, clock = setup
        probe = make_probe(
            1, registry, clock,
            resolver=TimeoutResolver(IPAddress.parse("100.0.0.1")),
        )
        platform.add_probe(probe)
        result = platform.run_dns(DnsMeasurementSpec(DOMAIN, RRType.A))
        assert result.results[0].timed_out
        assert len(result.timeouts()) == 1

    def test_authoritative_target(self, setup):
        platform, registry, clock = setup
        platform.add_probe(make_probe(1, registry, clock))
        result = platform.run_dns(
            DnsMeasurementSpec(DOMAIN, RRType.A, MeasurementTarget.AUTHORITATIVE)
        )
        assert result.results[0].succeeded

    def test_authoritative_unknown_domain_times_out(self, setup):
        platform, registry, clock = setup
        platform.add_probe(make_probe(1, registry, clock))
        result = platform.run_dns(
            DnsMeasurementSpec("nowhere.test.", RRType.A, MeasurementTarget.AUTHORITATIVE)
        )
        assert result.results[0].timed_out

    def test_aaaa_authoritative_needs_v6(self, setup):
        platform, registry, clock = setup
        platform.add_probe(make_probe(1, registry, clock, v6=False))
        platform.add_probe(make_probe(2, registry, clock, v6=True))
        result = platform.run_dns(
            DnsMeasurementSpec(DOMAIN, RRType.AAAA, MeasurementTarget.AUTHORITATIVE)
        )
        by_id = {r.probe_id: r for r in result.results}
        assert by_id[1].timed_out
        assert not by_id[2].timed_out

    def test_probe_selection(self, setup):
        platform, registry, clock = setup
        for i in range(4):
            platform.add_probe(make_probe(i, registry, clock))
        result = platform.run_dns(
            DnsMeasurementSpec(DOMAIN, RRType.A, probe_ids=(1, 3))
        )
        assert {r.probe_id for r in result.results} == {1, 3}

    def test_clock_advances_per_measurement(self, setup):
        platform, registry, clock = setup
        platform.add_probe(make_probe(1, registry, clock))
        before = clock.now
        platform.run_dns(DnsMeasurementSpec(DOMAIN, RRType.A))
        assert clock.now == before + platform.measurement_duration

    def test_resolver_provider_shares(self, setup):
        platform, registry, clock = setup
        google = make_probe(1, registry, clock)
        google.resolver_provider = "Google"
        platform.add_probe(google)
        platform.add_probe(make_probe(2, registry, clock))
        shares = platform.resolver_provider_shares()
        assert shares == {"Google": 0.5, "local": 0.5}


class TestMeasurementResult:
    def _result(self, rcode, addresses=(), timed_out=False):
        return ProbeDnsResult(1, 100, "DE", rcode, tuple(addresses), timed_out)

    def test_succeeded(self):
        ok = self._result(Rcode.NOERROR, [IPAddress.parse("1.1.1.1")])
        assert ok.succeeded and not ok.failed_with_response

    def test_nodata_is_failure_with_response(self):
        nodata = self._result(Rcode.NOERROR)
        assert not nodata.succeeded
        assert nodata.failed_with_response

    def test_timeout_is_not_failure_with_response(self):
        timeout = self._result(None, timed_out=True)
        assert not timeout.failed_with_response

    def test_rcode_breakdown(self):
        result = DnsMeasurementResult(
            spec=DnsMeasurementSpec(DOMAIN, RRType.A), started_at=0.0
        )
        result.results.extend(
            [
                self._result(Rcode.NXDOMAIN),
                self._result(Rcode.NXDOMAIN),
                self._result(Rcode.REFUSED),
                self._result(Rcode.NOERROR),  # nodata
                self._result(Rcode.NOERROR, [IPAddress.parse("1.1.1.1")]),
            ]
        )
        assert result.rcode_breakdown() == {
            "NXDOMAIN": 2,
            "REFUSED": 1,
            "NOERROR": 1,
        }
        assert len(result.successes()) == 1
        assert len(result.failures_with_response()) == 4
