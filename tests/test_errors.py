"""The exception hierarchy: one root, typed branches, no bare ValueErrors."""

import inspect

import pytest

from repro import errors
from repro.errors import (
    CheckpointError,
    ConnectionFailed,
    DnsError,
    FaultConfigError,
    RateLimitExceeded,
    RelayError,
    ReproError,
    WorkerCrashed,
)
from repro.faults import FaultProfile, profile_named
from repro.scan.checkpoint import CampaignCheckpointer


def _error_classes():
    return [
        obj
        for _, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, Exception)
    ]


class TestHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for cls in _error_classes():
            assert issubclass(cls, ReproError), cls.__name__

    def test_every_error_is_documented(self):
        for cls in _error_classes():
            assert cls.__doc__, cls.__name__

    def test_catching_the_root_catches_everything(self):
        for cls in _error_classes():
            if cls is ReproError:
                continue
            with pytest.raises(ReproError):
                raise cls("boom")

    def test_branch_parentage(self):
        assert issubclass(ConnectionFailed, RelayError)
        assert issubclass(CheckpointError, ReproError)
        assert issubclass(WorkerCrashed, ReproError)
        assert issubclass(RateLimitExceeded, ReproError)
        assert not issubclass(DnsError, RelayError)

    def test_fault_config_error_is_also_a_value_error(self):
        # Callers validating configuration can catch plain ValueError.
        assert issubclass(FaultConfigError, ValueError)
        assert issubclass(FaultConfigError, ReproError)


class TestRaisedTypes:
    def test_unknown_profile_raises_fault_config_error(self):
        with pytest.raises(FaultConfigError):
            profile_named("no-such-profile")

    def test_invalid_profile_raises_fault_config_error(self):
        with pytest.raises(FaultConfigError):
            FaultProfile(name="bad", drop=2.0)

    def test_checkpoint_fingerprint_mismatch_raises(self, tmp_path):
        CampaignCheckpointer(tmp_path, {"seed": 1}).save(2022, 1, {})
        with pytest.raises(CheckpointError):
            CampaignCheckpointer(tmp_path, {"seed": 2}).load(2022, 1)
