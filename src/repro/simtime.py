"""Simulated wall clock.

Measurements in the paper span months (monthly ECS scans), days (relay
scan days), and hours (a single ECS scan takes up to 40 hours under rate
limiting).  Every component that needs time — scanners, relay fleets with
address churn, BGP history — shares a :class:`SimClock` instead of reading
the real clock, so experiments are deterministic and fast.

Timestamps are seconds since the simulation epoch (float).  Helpers convert
between calendar-style ``(year, month)`` pairs and epoch seconds using a
fixed 30-day month, which is sufficient for monthly-granularity analyses
such as BGP visibility history.
"""

from __future__ import annotations

from dataclasses import dataclass, field

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_MONTH = 30 * SECONDS_PER_DAY

#: Calendar anchor for the simulation epoch: t=0 is 2016-01-01, matching the
#: start of the paper's BGP visibility examination window (2016 to 2022).
EPOCH_YEAR = 2016
EPOCH_MONTH = 1


def month_index(year: int, month: int) -> int:
    """Number of whole months between (year, month) and the epoch."""
    if not 1 <= month <= 12:
        raise ValueError(f"month must be in 1..12, got {month}")
    return (year - EPOCH_YEAR) * 12 + (month - EPOCH_MONTH)


def month_to_seconds(year: int, month: int) -> float:
    """Epoch seconds at the start of the given calendar month."""
    return month_index(year, month) * SECONDS_PER_MONTH


def seconds_to_month(timestamp: float) -> tuple[int, int]:
    """Calendar (year, month) containing the given epoch timestamp."""
    if timestamp < 0:
        raise ValueError(f"timestamp must be >= 0, got {timestamp}")
    idx = int(timestamp // SECONDS_PER_MONTH)
    year, month0 = divmod(idx + (EPOCH_MONTH - 1), 12)
    return EPOCH_YEAR + year, month0 + 1


def format_month(year: int, month: int) -> str:
    """Render a calendar month as ``YYYY-MM``."""
    return f"{year:04d}-{month:02d}"


@dataclass
class SimClock:
    """A monotonic simulated clock shared by simulation components.

    The clock only moves forward.  Components advance it explicitly —
    e.g. the ECS scanner advances it by the inter-query delay imposed by
    its rate limiter, so a full scan "takes" the right amount of simulated
    time and fleet churn during the scan becomes observable.
    """

    now: float = 0.0
    _observers: list = field(default_factory=list, repr=False)

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot move clock backwards by {seconds}s")
        self.now += seconds
        for observer in self._observers:
            observer(self.now)
        return self.now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute timestamp.

        Advancing to a timestamp in the past is an error; advancing to the
        current time is a no-op.
        """
        if timestamp < self.now:
            raise ValueError(
                f"cannot move clock backwards: now={self.now}, target={timestamp}"
            )
        return self.advance(timestamp - self.now)

    def reset_to(self, timestamp: float) -> float:
        """Set the clock to ``timestamp``, even backwards.

        Only for *replica* clocks: a shard worker process owns a forked
        copy of the world and rewinds its private clock to a scan's start
        slot before each task (its previous task may have left the copy
        ahead of the slot).  The authoritative campaign clock must never
        be rewound — use :meth:`advance_to` there.
        """
        if timestamp < 0:
            raise ValueError(f"cannot reset clock to negative time {timestamp}")
        self.now = timestamp
        for observer in self._observers:
            observer(self.now)
        return self.now

    def advance_to_month(self, year: int, month: int) -> float:
        """Move the clock to the start of a calendar month."""
        return self.advance_to(month_to_seconds(year, month))

    def subscribe(self, observer) -> None:
        """Register ``observer(now)`` to be called after every advance."""
        self._observers.append(observer)

    @property
    def calendar_month(self) -> tuple[int, int]:
        """The calendar (year, month) of the current simulated time."""
        return seconds_to_month(self.now)
