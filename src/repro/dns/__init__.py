"""DNS substrate: messages, wire codec, EDNS0/ECS, servers, resolvers.

Implements enough of the DNS to run the paper's measurement pipeline
faithfully: RFC 1035 messages with a binary wire codec (including name
compression), the EDNS0 OPT pseudo-record with the RFC 7871 Client
Subnet option, an ECS-aware authoritative server modelled on the AWS
Route 53 behaviour the paper observed for ``mask.icloud.com``, and a
family of recursive-resolver models covering the blocking behaviours the
RIPE Atlas study classified (NXDOMAIN, NOERROR-without-data, REFUSED,
SERVFAIL, FORMERR, timeouts, and one hijacker).
"""

from repro.dns.edns import ClientSubnetOption, EdnsOptions
from repro.dns.message import DnsMessage, Opcode, Question, Rcode
from repro.dns.name import DnsName
from repro.dns.ratelimit import TokenBucket
from repro.dns.resolver import (
    BlockingResolver,
    HijackingResolver,
    PublicResolver,
    RecursiveResolver,
    Resolver,
    TimeoutResolver,
)
from repro.dns.rr import RRClass, RRType, ResourceRecord
from repro.dns.server import AuthoritativeServer, EcsPolicy
from repro.dns.wire import decode_message, encode_message
from repro.dns.zone import Zone

__all__ = [
    "ClientSubnetOption",
    "EdnsOptions",
    "DnsMessage",
    "Opcode",
    "Question",
    "Rcode",
    "DnsName",
    "TokenBucket",
    "Resolver",
    "RecursiveResolver",
    "PublicResolver",
    "BlockingResolver",
    "HijackingResolver",
    "TimeoutResolver",
    "RRClass",
    "RRType",
    "ResourceRecord",
    "AuthoritativeServer",
    "EcsPolicy",
    "decode_message",
    "encode_message",
    "Zone",
]
