"""DNS over HTTPS (RFC 8484) framing.

The relay's oblivious DNS path carries queries over DoH.  This module
provides the concrete carrier: queries are encoded with the RFC 1035
wire codec and wrapped in HTTP exchanges (`POST` with
``application/dns-message``, or `GET` with base64url per §4.1 of the
RFC), and a :class:`DohServer` unwraps them, hands them to a resolver
or authoritative server, and wraps the answer back up.

The HTTP layer is a faithful message model (method, path, headers,
body, status) rather than a socket implementation — consistent with
the rest of the simulated transports.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field

from repro.errors import DnsWireError, ReproError
from repro.dns.message import DnsMessage
from repro.dns.resolver import Resolver
from repro.dns.wire import decode_message, encode_message

DNS_MESSAGE_TYPE = "application/dns-message"
DOH_PATH = "/dns-query"


class DohError(ReproError):
    """A DoH exchange failed at the HTTP layer."""


@dataclass(frozen=True, slots=True)
class HttpRequest:
    """One HTTP request in a DoH exchange."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


@dataclass(frozen=True, slots=True)
class HttpResponse:
    """One HTTP response in a DoH exchange."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def encode_doh_post(query: DnsMessage) -> HttpRequest:
    """Wrap a DNS query as an RFC 8484 POST request.

    Per §4.1, the transaction id SHOULD be 0 for cache friendliness.
    """
    wire = encode_message(query.with_id(0))
    return HttpRequest(
        method="POST",
        path=DOH_PATH,
        headers={
            "content-type": DNS_MESSAGE_TYPE,
            "accept": DNS_MESSAGE_TYPE,
        },
        body=wire,
    )


def encode_doh_get(query: DnsMessage) -> HttpRequest:
    """Wrap a DNS query as a GET with base64url ``dns`` parameter."""
    wire = encode_message(query.with_id(0))
    encoded = base64.urlsafe_b64encode(wire).rstrip(b"=").decode("ascii")
    return HttpRequest(
        method="GET",
        path=f"{DOH_PATH}?dns={encoded}",
        headers={"accept": DNS_MESSAGE_TYPE},
    )


def decode_doh_request(request: HttpRequest) -> DnsMessage:
    """Extract the DNS query from a DoH HTTP request."""
    if request.method == "POST":
        if request.headers.get("content-type") != DNS_MESSAGE_TYPE:
            raise DohError(
                f"unsupported content type {request.headers.get('content-type')!r}"
            )
        return decode_message(request.body)
    if request.method == "GET":
        path, _, query_string = request.path.partition("?")
        if path != DOH_PATH:
            raise DohError(f"unknown path {path!r}")
        params = dict(
            pair.partition("=")[::2] for pair in query_string.split("&") if pair
        )
        encoded = params.get("dns")
        if not encoded:
            raise DohError("GET request without dns parameter")
        padding = "=" * (-len(encoded) % 4)
        try:
            wire = base64.urlsafe_b64decode(encoded + padding)
        except (ValueError, TypeError) as exc:
            raise DohError(f"invalid base64url dns parameter: {exc}") from exc
        return decode_message(wire)
    raise DohError(f"unsupported method {request.method!r}")


def decode_doh_response(response: HttpResponse) -> DnsMessage:
    """Extract the DNS answer from a DoH HTTP response."""
    if not response.ok:
        raise DohError(f"DoH server returned status {response.status}")
    if response.headers.get("content-type") != DNS_MESSAGE_TYPE:
        raise DohError(
            f"unsupported content type {response.headers.get('content-type')!r}"
        )
    return decode_message(response.body)


@dataclass
class DohServer:
    """A DoH front-end in front of a recursive resolver."""

    resolver: Resolver
    requests_served: int = 0
    bad_requests: int = 0

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Process one DoH exchange end to end."""
        try:
            query = decode_doh_request(request)
        except (DohError, DnsWireError):
            self.bad_requests += 1
            return HttpResponse(status=400)
        if query.question is None:
            self.bad_requests += 1
            return HttpResponse(status=400)
        ecs = query.client_subnet
        client_hint = None
        if ecs is not None:
            client_hint = ecs.source.network_address
        answer = self.resolver.resolve(
            query.question.name, query.question.rtype, client_address=client_hint
        )
        self.requests_served += 1
        # TTL-derived cache lifetime, as RFC 8484 recommends.
        ttl = min((rr.ttl for rr in answer.answers), default=0)
        return HttpResponse(
            status=200,
            headers={
                "content-type": DNS_MESSAGE_TYPE,
                "cache-control": f"max-age={ttl}",
            },
            body=encode_message(answer.with_id(0)),
        )


@dataclass
class DohClient:
    """A stub resolver speaking DoH to a :class:`DohServer`."""

    server: DohServer
    use_get: bool = False

    def resolve(self, query: DnsMessage) -> DnsMessage:
        """Send one query over DoH and decode the answer."""
        request = (
            encode_doh_get(query) if self.use_get else encode_doh_post(query)
        )
        return decode_doh_response(self.server.handle(request))
