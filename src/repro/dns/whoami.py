"""A ``whoami.akamai.net``-style resolver-identity service.

The paper measured ``whoami.akamai.net`` from RIPE Atlas probes to learn
which recursive resolver each probe's queries actually reach the
authoritative layer from — finding more than half of probes behind the
big four public resolvers.

The real service returns the requester's (i.e. the recursive resolver's)
IP address as an A record.  Here the requester address is threaded
through the resolver models: a resolver stamps its egress address into
the query context before contacting the authoritative server.
"""

from __future__ import annotations

from repro.dns.message import DnsMessage, Rcode
from repro.dns.name import DnsName
from repro.dns.rr import RRType, a_record, aaaa_record
from repro.dns.server import AuthoritativeServer, EcsPolicy
from repro.dns.zone import Zone
from repro.netmodel.addr import IPAddress

WHOAMI_DOMAIN = "whoami.akamai.net."


class WhoamiServer(AuthoritativeServer):
    """Authoritative server answering with the querying resolver's address.

    The resolver's egress address arrives via :meth:`handle_from`; plain
    :meth:`handle` calls (no known requester) return NODATA, matching the
    real service queried directly without a resolver in between.
    """

    def __init__(self, address: IPAddress) -> None:
        super().__init__(address, EcsPolicy(enabled=False), name="whoami")
        self._zone = Zone(WHOAMI_DOMAIN)
        self._name = DnsName.parse(WHOAMI_DOMAIN)
        # The name exists even without a requester context: direct
        # queries yield NODATA rather than NXDOMAIN.
        self._zone.add_dynamic(self._name, RRType.A, lambda _n, _s: ([], None))
        self._zone.add_dynamic(self._name, RRType.AAAA, lambda _n, _s: ([], None))
        self.add_zone(self._zone)

    def handle_from(self, query: DnsMessage, requester: IPAddress) -> DnsMessage:
        """Answer a query arriving from ``requester`` (the resolver)."""
        self.stats.queries += 1
        question = query.question
        if question is None or question.name != self._name:
            return self.handle(query)
        if question.rtype == RRType.A and requester.version == 4:
            self.stats.answered += 1
            return query.reply(
                rcode=Rcode.NOERROR,
                answers=(a_record(self._name, requester),),
                authoritative=True,
                recursion_available=False,
            )
        if question.rtype == RRType.AAAA and requester.version == 6:
            self.stats.answered += 1
            return query.reply(
                rcode=Rcode.NOERROR,
                answers=(aaaa_record(self._name, requester),),
                authoritative=True,
                recursion_available=False,
            )
        self.stats.nodata += 1
        return query.reply(
            rcode=Rcode.NOERROR, authoritative=True, recursion_available=False
        )
