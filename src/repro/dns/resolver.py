"""Recursive resolver models.

The RIPE Atlas blocking study (Section 4.1 of the paper) classifies
probes by the behaviour of their configured resolver: most resolve the
relay domains normally; some are public resolvers (Google, Cloudflare,
Quad9, OpenDNS — used by over half of all probes); a minority block the
relay domains by forging NXDOMAIN, NOERROR-without-data, or REFUSED (or
break with SERVFAIL/FORMERR); one observed resolver hijacked the name to
a filtering service; and some probes simply time out.

Each of these behaviours is a resolver class here.  All resolvers go
through a :class:`~repro.dns.server.NameServerRegistry` to reach the
authoritative layer, stamping their own egress address so the whoami
service can identify them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ResolutionTimeout
from repro.dns.message import DnsMessage, Rcode
from repro.dns.name import DnsName
from repro.dns.rr import RRType, a_record, aaaa_record
from repro.dns.server import NameServerRegistry
from repro.dns.whoami import WhoamiServer
from repro.netmodel.addr import IPAddress, Prefix
from repro.simtime import SimClock


class Resolver(abc.ABC):
    """A recursive resolver as seen by a stub client."""

    #: The resolver's egress address (what authoritative servers see).
    address: IPAddress

    @abc.abstractmethod
    def resolve(
        self,
        name: DnsName | str,
        rtype: RRType,
        client_address: IPAddress | None = None,
    ) -> DnsMessage:
        """Resolve a question; raises :class:`ResolutionTimeout` on silence."""

    def resolve_addresses(
        self, name: DnsName | str, rtype: RRType, client_address: IPAddress | None = None
    ) -> list[IPAddress]:
        """Resolve and return just the answer addresses (possibly empty)."""
        return self.resolve(name, rtype, client_address).answer_addresses()


@dataclass
class _CacheEntry:
    response: DnsMessage
    expires_at: float


class RecursiveResolver(Resolver):
    """A well-behaved recursive resolver.

    ``send_ecs`` controls whether the resolver forwards an ECS option
    derived from its client's address (as Google Public DNS does) —
    truncated to ``ecs_source_len`` — or contacts the authoritative
    server without ECS (as Cloudflare's 1.1.1.1 famously does not).
    """

    def __init__(
        self,
        registry: NameServerRegistry,
        address: IPAddress,
        clock: SimClock | None = None,
        send_ecs: bool = True,
        ecs_source_len: int = 24,
        cache_enabled: bool = True,
        name: str = "",
    ) -> None:
        self.registry = registry
        self.address = address
        self.clock = clock or SimClock()
        self.send_ecs = send_ecs
        self.ecs_source_len = ecs_source_len
        self.cache_enabled = cache_enabled
        self.name = name or f"resolver@{address}"
        self._cache: dict[tuple[DnsName, RRType, Prefix | None], _CacheEntry] = {}
        self.upstream_queries = 0

    def _ecs_for(self, client_address: IPAddress | None) -> Prefix | None:
        if not self.send_ecs:
            return None
        source = client_address if client_address is not None else self.address
        length = self.ecs_source_len if source.version == 4 else 56
        return source.to_prefix(length)

    def resolve(
        self,
        name: DnsName | str,
        rtype: RRType,
        client_address: IPAddress | None = None,
    ) -> DnsMessage:
        """Resolve via cache or the authoritative layer (with ECS)."""
        if isinstance(name, str):
            name = DnsName.parse(name)
        ecs = self._ecs_for(client_address)
        cache_key = (name, rtype, ecs)
        if self.cache_enabled:
            entry = self._cache.get(cache_key)
            if entry is not None and entry.expires_at > self.clock.now:
                return entry.response
        server = self.registry.authoritative_for(name)
        if server is None:
            # No delegation found: a real recursive returns SERVFAIL.
            return DnsMessage.query(name, rtype).reply(rcode=Rcode.SERVFAIL)
        query = DnsMessage.query(name, rtype, ecs=ecs)
        self.upstream_queries += 1
        if isinstance(server, WhoamiServer):
            response = server.handle_from(query, self.address)
        else:
            response = server.handle(query, source_address=self.address)
        if self.cache_enabled:
            ttl = min((rr.ttl for rr in response.answers), default=60)
            self._cache[cache_key] = _CacheEntry(response, self.clock.now + ttl)
        return response

    def flush_cache(self) -> None:
        """Drop all cached responses."""
        self._cache.clear()


class PublicResolver(RecursiveResolver):
    """A large anycast public resolver (Google, Cloudflare, Quad9, OpenDNS)."""

    def __init__(
        self,
        registry: NameServerRegistry,
        address: IPAddress,
        provider: str,
        clock: SimClock | None = None,
        send_ecs: bool = True,
    ) -> None:
        super().__init__(
            registry, address, clock=clock, send_ecs=send_ecs, name=provider
        )
        self.provider = provider


#: The anycast service addresses of the big four public resolvers, used
#: by worldgen and recognised by the whoami analysis.
PUBLIC_RESOLVER_ADDRESSES: dict[str, str] = {
    "Google": "8.8.8.8",
    "Cloudflare": "1.1.1.1",
    "Quad9": "9.9.9.9",
    "OpenDNS": "208.67.222.222",
}


def build_public_resolvers(
    registry: NameServerRegistry, clock: SimClock | None = None
) -> dict[str, PublicResolver]:
    """Instantiate the big four public resolvers.

    Cloudflare does not forward ECS (a documented privacy stance); the
    other three do.
    """
    resolvers = {}
    for provider, addr_text in PUBLIC_RESOLVER_ADDRESSES.items():
        resolvers[provider] = PublicResolver(
            registry,
            IPAddress.parse(addr_text),
            provider,
            clock=clock,
            send_ecs=(provider != "Cloudflare"),
        )
    return resolvers


class BlockingResolver(Resolver):
    """A resolver that blocks configured domains with a forged response.

    ``block_rcode`` selects the forged shape: ``Rcode.NXDOMAIN``,
    ``Rcode.REFUSED``, ``Rcode.SERVFAIL``, ``Rcode.FORMERR``, or
    ``Rcode.NOERROR`` (which produces a NOERROR response without data).
    Non-blocked names are delegated to ``inner`` so that — as the paper
    verified with "a second unrelated domain" — the resolver demonstrably
    works for everything else.
    """

    def __init__(
        self,
        inner: Resolver,
        blocked_suffixes: list[DnsName | str],
        block_rcode: Rcode = Rcode.NXDOMAIN,
    ) -> None:
        self.inner = inner
        self.address = inner.address
        self.blocked_suffixes = [
            DnsName.parse(s) if isinstance(s, str) else s for s in blocked_suffixes
        ]
        if block_rcode not in (
            Rcode.NXDOMAIN,
            Rcode.NOERROR,
            Rcode.REFUSED,
            Rcode.SERVFAIL,
            Rcode.FORMERR,
        ):
            raise ValueError(f"unsupported blocking rcode {block_rcode!r}")
        self.block_rcode = block_rcode
        self.blocked_queries = 0

    def is_blocked(self, name: DnsName) -> bool:
        """Whether the resolver forges responses for ``name``."""
        return any(name.is_subdomain_of(suffix) for suffix in self.blocked_suffixes)

    def resolve(
        self,
        name: DnsName | str,
        rtype: RRType,
        client_address: IPAddress | None = None,
    ) -> DnsMessage:
        """Forge the configured rcode for blocked names; else delegate."""
        if isinstance(name, str):
            name = DnsName.parse(name)
        if self.is_blocked(name):
            self.blocked_queries += 1
            return DnsMessage.query(name, rtype).reply(rcode=self.block_rcode)
        return self.inner.resolve(name, rtype, client_address)


class HijackingResolver(Resolver):
    """A resolver that redirects blocked domains to a filtering service.

    Reproduces the paper's single observed DNS hijack "hinting at the use
    of nextdns.io": instead of an error, the resolver answers with an
    address it controls.
    """

    def __init__(
        self,
        inner: Resolver,
        blocked_suffixes: list[DnsName | str],
        redirect_v4: IPAddress,
        redirect_v6: IPAddress | None = None,
        service_name: str = "nextdns",
    ) -> None:
        self.inner = inner
        self.address = inner.address
        self.blocked_suffixes = [
            DnsName.parse(s) if isinstance(s, str) else s for s in blocked_suffixes
        ]
        if redirect_v4.version != 4:
            raise ValueError("redirect_v4 must be an IPv4 address")
        if redirect_v6 is not None and redirect_v6.version != 6:
            raise ValueError("redirect_v6 must be an IPv6 address")
        self.redirect_v4 = redirect_v4
        self.redirect_v6 = redirect_v6
        self.service_name = service_name

    def is_blocked(self, name: DnsName) -> bool:
        """Whether the resolver hijacks ``name``."""
        return any(name.is_subdomain_of(suffix) for suffix in self.blocked_suffixes)

    def resolve(
        self,
        name: DnsName | str,
        rtype: RRType,
        client_address: IPAddress | None = None,
    ) -> DnsMessage:
        """Redirect blocked names to the filtering service; else delegate."""
        if isinstance(name, str):
            name = DnsName.parse(name)
        if self.is_blocked(name):
            query = DnsMessage.query(name, rtype)
            if rtype == RRType.A:
                return query.reply(answers=(a_record(name, self.redirect_v4),))
            if rtype == RRType.AAAA and self.redirect_v6 is not None:
                return query.reply(answers=(aaaa_record(name, self.redirect_v6),))
            return query.reply()
        return self.inner.resolve(name, rtype, client_address)


class TimeoutResolver(Resolver):
    """A resolver (or path to it) that never answers.

    Models the ~10 % of Atlas probes whose DNS measurements time out for
    reasons unrelated to the relay domains (the paper cross-checked with
    another domain and saw similar timeout shares).
    """

    def __init__(self, address: IPAddress) -> None:
        self.address = address

    def resolve(
        self,
        name: DnsName | str,
        rtype: RRType,
        client_address: IPAddress | None = None,
    ) -> DnsMessage:
        """Never answers — every query times out."""
        raise ResolutionTimeout(f"no response from {self.address} for {name}")
