"""Resource records.

Covers the record types the measurement pipeline touches: A and AAAA for
the relay domains, CNAME for zone plumbing, TXT for the
``whoami.akamai.net``-style resolver-identity service, NS/SOA for zone
structure, and OPT as the EDNS0 pseudo-record carrier.

Rdata is stored in decoded form (an :class:`IPAddress` for A/AAAA, a
:class:`DnsName` for CNAME/NS, a string tuple for TXT) with conversion to
and from wire bytes handled by :mod:`repro.dns.wire`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.errors import DnsWireError
from repro.dns.name import DnsName
from repro.netmodel.addr import IPAddress


class RRType(enum.IntEnum):
    """DNS record type codes (subset)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    TXT = 16
    AAAA = 28
    OPT = 41

    @classmethod
    def for_ip_version(cls, version: int) -> "RRType":
        """The address record type for an IP version (A or AAAA)."""
        if version == 4:
            return cls.A
        if version == 6:
            return cls.AAAA
        raise DnsWireError(f"no address RR type for IP version {version}")


class RRClass(enum.IntEnum):
    """DNS class codes."""

    IN = 1
    ANY = 255


@dataclass(frozen=True, slots=True)
class SoaData:
    """SOA rdata (zone authority metadata)."""

    mname: DnsName
    rname: DnsName
    serial: int
    refresh: int = 7200
    retry: int = 900
    expire: int = 1209600
    minimum: int = 86400


Rdata = Union[IPAddress, DnsName, tuple[str, ...], SoaData, bytes]


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """One RR: owner name, type, class, TTL, and decoded rdata."""

    name: DnsName
    rtype: RRType
    rclass: RRClass
    ttl: int
    rdata: Rdata

    def __post_init__(self) -> None:
        if self.ttl < 0 or self.ttl > 2**31 - 1:
            raise DnsWireError(f"TTL {self.ttl} out of range")
        expected = _RDATA_TYPES.get(self.rtype)
        if expected is not None and not isinstance(self.rdata, expected):
            raise DnsWireError(
                f"{self.rtype.name} rdata must be {expected}, got {type(self.rdata)}"
            )
        if self.rtype in (RRType.A, RRType.AAAA):
            want = 4 if self.rtype == RRType.A else 6
            if self.rdata.version != want:  # type: ignore[union-attr]
                raise DnsWireError(
                    f"{self.rtype.name} record carries IPv{self.rdata.version} address"  # type: ignore[union-attr]
                )

    @property
    def address(self) -> IPAddress:
        """The address of an A/AAAA record (type-checked accessor)."""
        if self.rtype not in (RRType.A, RRType.AAAA):
            raise DnsWireError(f"{self.rtype.name} record has no address")
        assert isinstance(self.rdata, IPAddress)
        return self.rdata

    def __str__(self) -> str:
        return f"{self.name} {self.ttl} {self.rclass.name} {self.rtype.name} {self.rdata}"


_RDATA_TYPES: dict[RRType, type | tuple[type, ...]] = {
    RRType.A: IPAddress,
    RRType.AAAA: IPAddress,
    RRType.CNAME: DnsName,
    RRType.NS: DnsName,
    RRType.TXT: tuple,
    RRType.SOA: SoaData,
    RRType.OPT: bytes,
}


def a_record(name: DnsName, address: IPAddress, ttl: int = 60) -> ResourceRecord:
    """Convenience constructor for an A record."""
    return ResourceRecord(name, RRType.A, RRClass.IN, ttl, address)


def aaaa_record(name: DnsName, address: IPAddress, ttl: int = 60) -> ResourceRecord:
    """Convenience constructor for an AAAA record."""
    return ResourceRecord(name, RRType.AAAA, RRClass.IN, ttl, address)


def txt_record(name: DnsName, *strings: str, ttl: int = 60) -> ResourceRecord:
    """Convenience constructor for a TXT record."""
    return ResourceRecord(name, RRType.TXT, RRClass.IN, ttl, tuple(strings))
