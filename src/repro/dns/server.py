"""ECS-aware authoritative name server.

Models the behaviour the paper observed from the AWS Route 53 servers
authoritative for the iCloud Private Relay domains:

* IPv4 ECS queries are honoured — the answer depends on the client
  subnet, and the response echoes the option with a scope prefix length
  declaring the answer's validity range ("the name server always uses
  the subnet provided in the query"; scope can be *shorter* than the
  source, which the scanner's ethics pruning relies on).
* IPv6 ECS queries always come back with **scope 0**, i.e. the response
  claims validity for the entire IPv6 space — the reason the paper's ECS
  enumeration "does not work for IPv6".

The per-subnet answer computation itself lives in the zone's dynamic
handlers (see :mod:`repro.dns.zone`); this module implements the message
handling, ECS policy, and query accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dns.answer_cache import ScopeAnswerCache
from repro.dns.message import DnsMessage, Opcode, Rcode
from repro.dns.name import DnsName
from repro.dns.zone import Zone
from repro.netmodel.addr import IPAddress, Prefix
from repro.perfstats import CacheStats
from repro.telemetry.registry import Counter


@dataclass(frozen=True, slots=True)
class EcsPolicy:
    """How a server treats EDNS Client Subnet options.

    ``max_source_v4`` caps the honoured IPv4 source length (RFC 7871
    recommends truncating overly specific subnets); ``ipv6_scope_zero``
    reproduces the observed always-/0 behaviour for IPv6 sources.
    """

    enabled: bool = True
    max_source_v4: int = 24
    ipv6_scope_zero: bool = True

    def effective_subnet(self, subnet: Prefix | None) -> Prefix | None:
        """The subnet the answer computation may depend on."""
        if not self.enabled or subnet is None:
            return None
        if subnet.version == 4 and subnet.length > self.max_source_v4:
            return subnet.truncate(self.max_source_v4)
        return subnet

    def response_scope(self, subnet: Prefix, zone_scope: int | None) -> int:
        """The scope prefix length to place in the response's ECS option."""
        if subnet.version == 6 and self.ipv6_scope_zero:
            return 0
        if zone_scope is not None:
            return zone_scope
        return min(subnet.length, self.max_source_v4 if subnet.version == 4 else 56)


class ServerStats:
    """Query accounting, used by the ethics/ablation analyses.

    Like :class:`~repro.perfstats.CacheStats`, this is an adapter over
    telemetry :class:`~repro.telemetry.registry.Counter` objects: the
    attribute API is unchanged (``stats.queries += 1``), but each field's
    counter can be adopted by a metrics registry, and resets/setters
    mutate counter values in place so adopted references stay live.
    """

    __slots__ = ("_queries", "_ecs_queries", "_nxdomain", "_nodata", "_answered", "_refused")

    #: Field names, in declaration order (drives merge/reset/copy).
    _FIELDS = ("queries", "ecs_queries", "nxdomain", "nodata", "answered", "refused")

    def __init__(
        self,
        queries: int = 0,
        ecs_queries: int = 0,
        nxdomain: int = 0,
        nodata: int = 0,
        answered: int = 0,
        refused: int = 0,
    ) -> None:
        self._queries = Counter(queries)
        self._ecs_queries = Counter(ecs_queries)
        self._nxdomain = Counter(nxdomain)
        self._nodata = Counter(nodata)
        self._answered = Counter(answered)
        self._refused = Counter(refused)

    @property
    def queries(self) -> int:
        """Total queries received."""
        return self._queries.value

    @queries.setter
    def queries(self, value: int) -> None:
        self._queries.value = value

    @property
    def ecs_queries(self) -> int:
        """Queries carrying an ECS option."""
        return self._ecs_queries.value

    @ecs_queries.setter
    def ecs_queries(self, value: int) -> None:
        self._ecs_queries.value = value

    @property
    def nxdomain(self) -> int:
        """Queries answered NXDOMAIN."""
        return self._nxdomain.value

    @nxdomain.setter
    def nxdomain(self, value: int) -> None:
        self._nxdomain.value = value

    @property
    def nodata(self) -> int:
        """Queries answered NOERROR with no records."""
        return self._nodata.value

    @nodata.setter
    def nodata(self, value: int) -> None:
        self._nodata.value = value

    @property
    def answered(self) -> int:
        """Queries answered with records."""
        return self._answered.value

    @answered.setter
    def answered(self, value: int) -> None:
        self._answered.value = value

    @property
    def refused(self) -> int:
        """Queries refused (malformed or no matching zone)."""
        return self._refused.value

    @refused.setter
    def refused(self, value: int) -> None:
        self._refused.value = value

    def counter(self, field: str) -> Counter:
        """The live Counter behind ``field`` (for registry adoption)."""
        if field not in self._FIELDS:
            raise KeyError(f"no such ServerStats field: {field!r}")
        return getattr(self, "_" + field)

    def reset(self) -> None:
        """Zero all counters (in place — adopted references stay live)."""
        for field in self._FIELDS:
            getattr(self, "_" + field).value = 0

    def merge(self, other: "ServerStats") -> None:
        """Accumulate another counter set (shard-result aggregation)."""
        for field in self._FIELDS:
            getattr(self, "_" + field).value += getattr(other, field)

    def copy(self) -> "ServerStats":
        """An independent snapshot (shipped back from shard workers)."""
        return ServerStats(
            queries=self.queries,
            ecs_queries=self.ecs_queries,
            nxdomain=self.nxdomain,
            nodata=self.nodata,
            answered=self.answered,
            refused=self.refused,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServerStats):
            return NotImplemented
        return all(
            getattr(self, field) == getattr(other, field) for field in self._FIELDS
        )

    def __repr__(self) -> str:
        body = ", ".join(f"{field}={getattr(self, field)}" for field in self._FIELDS)
        return f"ServerStats({body})"


class AuthoritativeServer:
    """Serves one or more zones, honouring ECS per its policy."""

    def __init__(self, address: IPAddress, ecs_policy: EcsPolicy | None = None, name: str = "") -> None:
        self.address = address
        self.name = name or f"auth@{address}"
        self.ecs_policy = ecs_policy or EcsPolicy()
        self.stats = ServerStats()
        # Hoisted counters for handle(): the stats fields are properties
        # now, and handle() runs per query.  ServerStats.reset() mutates
        # these in place, so the references stay live.
        self._n_queries = self.stats.counter("queries")
        self._n_ecs_queries = self.stats.counter("ecs_queries")
        self._n_nxdomain = self.stats.counter("nxdomain")
        self._n_nodata = self.stats.counter("nodata")
        self._n_answered = self.stats.counter("answered")
        self._n_refused = self.stats.counter("refused")
        #: Scope-block answer-plan cache (the scan fast path).  Always
        #: wired; scanners may flip ``enabled`` off to exercise the
        #: reference path (results are identical either way).
        self.answer_cache = ScopeAnswerCache()
        self._zones: list[Zone] = []
        self._zone_for: dict[DnsName, Zone | None] = {}
        self.zone_for_stats = CacheStats()

    def add_zone(self, zone: Zone) -> Zone:
        """Attach a zone to this server."""
        self._zones.append(zone)
        if self._zone_for:
            self._zone_for.clear()
            self.zone_for_stats.invalidations += 1
        return zone

    def zones(self) -> list[Zone]:
        """All attached zones."""
        return list(self._zones)

    def zone_for(self, name: DnsName) -> Zone | None:
        """The most specific attached zone containing ``name`` (memoised).

        The linear apex scan only runs once per distinct name; every
        query of a hot loop afterwards is a dict probe.  Invalidated on
        :meth:`add_zone`.
        """
        cache = self._zone_for
        if name in cache:
            self.zone_for_stats.hits += 1
            return cache[name]
        self.zone_for_stats.misses += 1
        best: Zone | None = None
        for zone in self._zones:
            if name.is_subdomain_of(zone.apex):
                if best is None or len(zone.apex.labels) > len(best.apex.labels):
                    best = zone
        cache[name] = best
        return best

    def handle(
        self, query: DnsMessage, source_address: IPAddress | None = None
    ) -> DnsMessage:
        """Answer one query message.

        ``source_address`` is the transport-level source of the query —
        the recursive resolver's egress address.  When the query carries
        no ECS option, location-dependent zones fall back to it (how
        Route 53 geolocates queries from non-ECS resolvers such as
        Cloudflare's 1.1.1.1).
        """
        self._n_queries.value += 1
        if query.is_response or query.opcode != Opcode.QUERY or query.question is None:
            self._n_refused.value += 1
            return query.reply(rcode=Rcode.FORMERR, recursion_available=False)
        question = query.question
        zone = self.zone_for(question.name)
        if zone is None:
            self._n_refused.value += 1
            return query.reply(rcode=Rcode.REFUSED, recursion_available=False)
        subnet = None
        policy = self.ecs_policy
        edns = query.edns
        ecs_option = edns.client_subnet if edns is not None else None
        if ecs_option is not None:
            self._n_ecs_queries.value += 1
            # policy.effective_subnet() inlined — this runs per scan query.
            if policy.enabled:
                subnet = ecs_option.source
                if subnet.version == 4 and subnet.length > policy.max_source_v4:
                    subnet = subnet.truncate(policy.max_source_v4)
        elif source_address is not None:
            length = policy.max_source_v4 if source_address.version == 4 else 56
            subnet = source_address.to_prefix(length)
        if self.answer_cache.enabled:
            result = self.answer_cache.lookup(
                zone, question.name, question.rtype, subnet
            )
        else:
            result = zone.lookup(question.name, question.rtype, subnet)
        scope = None
        if ecs_option is not None:
            # policy.response_scope() inlined, same reason.
            source = ecs_option.source
            if source.version == 6 and policy.ipv6_scope_zero:
                scope = 0
            elif result.scope_override is not None:
                scope = result.scope_override
            else:
                scope = min(
                    source.length,
                    policy.max_source_v4 if source.version == 4 else 56,
                )
        if not result.exists:
            self._n_nxdomain.value += 1
            return query.reply(
                rcode=Rcode.NXDOMAIN,
                authoritative=True,
                recursion_available=False,
                ecs_scope=scope,
            )
        if result.is_nodata:
            self._n_nodata.value += 1
            return query.reply(
                rcode=Rcode.NOERROR,
                authoritative=True,
                recursion_available=False,
                ecs_scope=scope,
            )
        self._n_answered.value += 1
        return query.reply(
            rcode=Rcode.NOERROR,
            answers=tuple(result.records),
            authoritative=True,
            recursion_available=False,
            ecs_scope=scope,
        )

    def serves(self, name: DnsName) -> bool:
        """Whether this server is authoritative for ``name``."""
        return self.zone_for(name) is not None


class NameServerRegistry:
    """Maps names to the authoritative server responsible for them.

    Stands in for delegation-following: recursive resolvers ask the
    registry which server to contact instead of walking the root.
    """

    def __init__(self) -> None:
        self._servers: list[AuthoritativeServer] = []
        self._delegation: dict[DnsName, AuthoritativeServer | None] = {}
        self.delegation_stats = CacheStats()

    def register(self, server: AuthoritativeServer) -> AuthoritativeServer:
        """Add a server to the registry."""
        self._servers.append(server)
        if self._delegation:
            self._delegation.clear()
            self.delegation_stats.invalidations += 1
        return server

    def servers(self) -> list[AuthoritativeServer]:
        """All registered servers."""
        return list(self._servers)

    def authoritative_for(self, name: DnsName) -> AuthoritativeServer | None:
        """The server with the most specific zone for ``name`` (memoised).

        Resolvers call this per query; the per-server zone scan only runs
        once per distinct name.  Invalidated on :meth:`register` — note a
        zone added to an already-registered server after a name was first
        resolved is not picked up for that name (servers are fully
        populated before registration throughout the pipeline).
        """
        cache = self._delegation
        cached = cache.get(name)
        if cached is not None:
            self.delegation_stats.hits += 1
            return cached
        self.delegation_stats.misses += 1
        best: AuthoritativeServer | None = None
        best_depth = -1
        for server in self._servers:
            zone = server.zone_for(name)
            if zone is not None and len(zone.apex.labels) > best_depth:
                best = server
                best_depth = len(zone.apex.labels)
        if best is not None:
            # Unresolvable names stay uncached: a zone covering them may
            # yet be added to an already-registered server.
            cache[name] = best
        return best
