"""RFC 1035 wire codec with name compression.

Round-trips :class:`~repro.dns.message.DnsMessage` objects to and from
the binary format a real scanner would put on the wire, including the
EDNS0 OPT pseudo-record framing (requestor payload size in the CLASS
field, extended rcode/version/DO bit in the TTL field) and RFC 7871 ECS
options inside it.

The simulated transports exchange message objects directly for speed,
but the codec is part of the public API (and the test suite round-trips
every message shape through it) so the library is usable for real
packet-level tooling.
"""

from __future__ import annotations

import struct

from repro.errors import DnsWireError
from repro.dns.edns import EdnsOptions
from repro.dns.message import DnsMessage, Opcode, Question, Rcode
from repro.dns.name import DnsName
from repro.dns.rr import RRClass, RRType, ResourceRecord, SoaData
from repro.netmodel.addr import IPAddress

_POINTER_MASK = 0xC0
MAX_UDP_MESSAGE = 65535


class _Writer:
    """Accumulates wire bytes and tracks name-compression offsets."""

    def __init__(self) -> None:
        self.chunks: list[bytes] = []
        self.length = 0
        self._name_offsets: dict[tuple[str, ...], int] = {}

    def write(self, data: bytes) -> None:
        self.chunks.append(data)
        self.length += len(data)

    def write_name(self, name: DnsName) -> None:
        """Write a (possibly compressed) domain name."""
        labels = name.labels
        for i in range(len(labels)):
            suffix = labels[i:]
            offset = self._name_offsets.get(suffix)
            if offset is not None:
                self.write(struct.pack("!H", 0xC000 | offset))
                return
            if self.length < 0x3FFF:
                self._name_offsets[suffix] = self.length
            label = labels[i].encode("ascii")
            self.write(bytes([len(label)]) + label)
        self.write(b"\x00")

    def getvalue(self) -> bytes:
        return b"".join(self.chunks)


class _Reader:
    """Cursor over wire bytes with compression-pointer-safe name reads."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def read(self, count: int) -> bytes:
        end = self.offset + count
        if end > len(self.data):
            raise DnsWireError(
                f"truncated message: need {count} bytes at offset {self.offset}"
            )
        chunk = self.data[self.offset : end]
        self.offset = end
        return chunk

    def read_u8(self) -> int:
        return self.read(1)[0]

    def read_u16(self) -> int:
        return struct.unpack("!H", self.read(2))[0]

    def read_u32(self) -> int:
        return struct.unpack("!I", self.read(4))[0]

    def read_name(self) -> DnsName:
        labels: list[str] = []
        jumps = 0
        offset = self.offset
        followed_pointer = False
        while True:
            if offset >= len(self.data):
                raise DnsWireError("name runs past end of message")
            length = self.data[offset]
            if length & _POINTER_MASK == _POINTER_MASK:
                if offset + 1 >= len(self.data):
                    raise DnsWireError("truncated compression pointer")
                target = ((length & 0x3F) << 8) | self.data[offset + 1]
                if not followed_pointer:
                    self.offset = offset + 2
                    followed_pointer = True
                jumps += 1
                if jumps > 127:
                    raise DnsWireError("compression pointer loop")
                if target >= offset:
                    raise DnsWireError("forward compression pointer")
                offset = target
                continue
            if length & _POINTER_MASK:
                raise DnsWireError(f"reserved label type {length:#x}")
            if length == 0:
                if not followed_pointer:
                    self.offset = offset + 1
                break
            start = offset + 1
            end = start + length
            if end > len(self.data):
                raise DnsWireError("label runs past end of message")
            labels.append(self.data[start:end].decode("ascii").lower())
            offset = end
        return DnsName(tuple(labels))


def _encode_rdata(rr: ResourceRecord, writer: _Writer) -> None:
    """Write an RR's RDLENGTH and RDATA (with name compression inside)."""
    if rr.rtype in (RRType.A, RRType.AAAA):
        assert isinstance(rr.rdata, IPAddress)
        payload = rr.rdata.packed()
        writer.write(struct.pack("!H", len(payload)) + payload)
    elif rr.rtype in (RRType.CNAME, RRType.NS):
        assert isinstance(rr.rdata, DnsName)
        # Name rdata is written uncompressed: RDLENGTH must be known before
        # the rdata bytes, which rules out patching in pointers later.
        payload = b"".join(
            bytes([len(label)]) + label.encode("ascii") for label in rr.rdata.labels
        ) + b"\x00"
        writer.write(struct.pack("!H", len(payload)) + payload)
    elif rr.rtype == RRType.TXT:
        assert isinstance(rr.rdata, tuple)
        chunks = []
        for text in rr.rdata:
            raw = text.encode("utf-8")
            if len(raw) > 255:
                raise DnsWireError(f"TXT string exceeds 255 bytes: {text[:40]!r}...")
            chunks.append(bytes([len(raw)]) + raw)
        payload = b"".join(chunks)
        writer.write(struct.pack("!H", len(payload)) + payload)
    elif rr.rtype == RRType.SOA:
        assert isinstance(rr.rdata, SoaData)
        soa = rr.rdata
        names = b""
        for name in (soa.mname, soa.rname):
            names += b"".join(
                bytes([len(label)]) + label.encode("ascii") for label in name.labels
            ) + b"\x00"
        payload = names + struct.pack(
            "!IIIII", soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
        )
        writer.write(struct.pack("!H", len(payload)) + payload)
    elif rr.rtype == RRType.OPT:
        assert isinstance(rr.rdata, bytes)
        writer.write(struct.pack("!H", len(rr.rdata)) + rr.rdata)
    else:
        raise DnsWireError(f"cannot encode rdata for type {rr.rtype!r}")


def _decode_rdata(rtype: RRType, payload: bytes) -> object:
    """Decode RDATA bytes for a record type."""
    if rtype == RRType.A:
        if len(payload) != 4:
            raise DnsWireError(f"A rdata must be 4 bytes, got {len(payload)}")
        return IPAddress.from_packed(payload)
    if rtype == RRType.AAAA:
        if len(payload) != 16:
            raise DnsWireError(f"AAAA rdata must be 16 bytes, got {len(payload)}")
        return IPAddress.from_packed(payload)
    if rtype in (RRType.CNAME, RRType.NS):
        return _Reader(payload).read_name()
    if rtype == RRType.TXT:
        strings = []
        reader = _Reader(payload)
        while reader.offset < len(payload):
            length = reader.read_u8()
            strings.append(reader.read(length).decode("utf-8"))
        return tuple(strings)
    if rtype == RRType.SOA:
        reader = _Reader(payload)
        mname = reader.read_name()
        rname = reader.read_name()
        serial = reader.read_u32()
        refresh = reader.read_u32()
        retry = reader.read_u32()
        expire = reader.read_u32()
        minimum = reader.read_u32()
        return SoaData(mname, rname, serial, refresh, retry, expire, minimum)
    if rtype == RRType.OPT:
        return payload
    raise DnsWireError(f"cannot decode rdata for type {rtype!r}")


def _encode_record(rr: ResourceRecord, writer: _Writer) -> None:
    writer.write_name(rr.name)
    writer.write(struct.pack("!HHI", rr.rtype, rr.rclass, rr.ttl))
    _encode_rdata(rr, writer)


def _opt_record(edns: EdnsOptions) -> ResourceRecord:
    """Build the OPT pseudo-record for a message's EDNS options."""
    ttl = (edns.extended_rcode << 24) | (edns.version << 16)
    if edns.dnssec_ok:
        ttl |= 0x8000
    return ResourceRecord(
        name=DnsName(()),
        rtype=RRType.OPT,
        rclass=_opt_class(edns.udp_payload_size),
        ttl=ttl,
        rdata=edns.options_wire(),
    )


class _OptClass(int):
    """OPT CLASS field carrying a UDP payload size (not a real RRClass)."""

    @property
    def name(self) -> str:  # pragma: no cover - debug repr only
        return f"PAYLOAD({int(self)})"


def _opt_class(size: int) -> RRClass:
    # The OPT CLASS field carries the payload size, which is not a member
    # of the RRClass enum; smuggle it through as a plain int subclass.
    return _OptClass(size)  # type: ignore[return-value]


def encode_message(message: DnsMessage) -> bytes:
    """Serialise a message to RFC 1035 wire format."""
    writer = _Writer()
    flags = 0
    if message.is_response:
        flags |= 0x8000
    flags |= (message.opcode & 0xF) << 11
    if message.authoritative:
        flags |= 0x0400
    if message.truncated:
        flags |= 0x0200
    if message.recursion_desired:
        flags |= 0x0100
    if message.recursion_available:
        flags |= 0x0080
    flags |= message.rcode & 0xF
    additionals = list(message.additionals)
    if message.edns is not None:
        additionals.append(_opt_record(message.edns))
    writer.write(
        struct.pack(
            "!HHHHHH",
            message.message_id,
            flags,
            1 if message.question else 0,
            len(message.answers),
            len(message.authorities),
            len(additionals),
        )
    )
    if message.question is not None:
        writer.write_name(message.question.name)
        writer.write(struct.pack("!HH", message.question.rtype, message.question.rclass))
    for rr in message.answers:
        _encode_record(rr, writer)
    for rr in message.authorities:
        _encode_record(rr, writer)
    for rr in additionals:
        _encode_record(rr, writer)
    wire = writer.getvalue()
    if len(wire) > MAX_UDP_MESSAGE:
        raise DnsWireError(f"message exceeds {MAX_UDP_MESSAGE} bytes")
    return wire


def _read_record(reader: _Reader) -> ResourceRecord:
    name = reader.read_name()
    rtype_code = reader.read_u16()
    rclass_code = reader.read_u16()
    ttl = reader.read_u32()
    rdlength = reader.read_u16()
    payload = reader.read(rdlength)
    try:
        rtype = RRType(rtype_code)
    except ValueError:
        raise DnsWireError(f"unsupported record type {rtype_code}") from None
    if rtype == RRType.OPT:
        # CLASS carries the payload size; TTL carries ext-rcode/version/DO.
        return ResourceRecord(name, rtype, _opt_class(rclass_code), ttl & 0x7FFFFFFF, payload)
    try:
        rclass = RRClass(rclass_code)
    except ValueError:
        raise DnsWireError(f"unsupported record class {rclass_code}") from None
    rdata = _decode_rdata(rtype, payload)
    return ResourceRecord(name, rtype, rclass, ttl, rdata)  # type: ignore[arg-type]


def decode_message(wire: bytes) -> DnsMessage:
    """Parse RFC 1035 wire format into a message object."""
    reader = _Reader(wire)
    if len(wire) < 12:
        raise DnsWireError(f"message shorter than header: {len(wire)} bytes")
    message_id = reader.read_u16()
    flags = reader.read_u16()
    qdcount = reader.read_u16()
    ancount = reader.read_u16()
    nscount = reader.read_u16()
    arcount = reader.read_u16()
    if qdcount > 1:
        raise DnsWireError(f"multi-question messages unsupported ({qdcount})")
    question = None
    if qdcount:
        qname = reader.read_name()
        qtype_code = reader.read_u16()
        qclass_code = reader.read_u16()
        try:
            question = Question(qname, RRType(qtype_code), RRClass(qclass_code))
        except ValueError as exc:
            raise DnsWireError(f"unsupported question: {exc}") from None
    answers = tuple(_read_record(reader) for _ in range(ancount))
    authorities = tuple(_read_record(reader) for _ in range(nscount))
    raw_additionals = [_read_record(reader) for _ in range(arcount)]
    edns = None
    additionals = []
    for rr in raw_additionals:
        if rr.rtype == RRType.OPT:
            if edns is not None:
                raise DnsWireError("multiple OPT records")
            ttl = rr.ttl
            assert isinstance(rr.rdata, bytes)
            edns = EdnsOptions.from_options_wire(
                rr.rdata,
                udp_payload_size=max(512, int(rr.rclass)),
                extended_rcode=(ttl >> 24) & 0xFF,
                dnssec_ok=bool(ttl & 0x8000),
            )
        else:
            additionals.append(rr)
    try:
        opcode = Opcode((flags >> 11) & 0xF)
        rcode = Rcode(flags & 0xF)
    except ValueError as exc:
        raise DnsWireError(f"unsupported opcode/rcode: {exc}") from None
    return DnsMessage(
        message_id=message_id,
        is_response=bool(flags & 0x8000),
        opcode=opcode,
        authoritative=bool(flags & 0x0400),
        truncated=bool(flags & 0x0200),
        recursion_desired=bool(flags & 0x0100),
        recursion_available=bool(flags & 0x0080),
        rcode=rcode,
        question=question,
        answers=answers,
        authorities=authorities,
        additionals=tuple(additionals),
        edns=edns,
    )
