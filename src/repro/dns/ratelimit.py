"""Token-bucket rate limiting against the simulated clock.

The paper applies "a strict query rate limit" to all scans — strict
enough that one full ECS scan takes up to 40 hours.  The scanner drains
a :class:`TokenBucket` before each query; the bucket advances the shared
:class:`~repro.simtime.SimClock` by however long a real scanner would
have had to wait, so scan durations (and the fleet churn that happens
during them) come out right without real sleeping.
"""

from __future__ import annotations

from repro.errors import RateLimitExceeded
from repro.simtime import SimClock


class TokenBucket:
    """A token bucket: ``rate`` tokens/second, capacity ``burst``."""

    def __init__(self, rate: float, burst: float, clock: SimClock) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self._tokens = burst
        self._last = clock.now
        self.total_waited = 0.0
        #: Non-blocking takes that found the bucket empty — the model's
        #: "rate-limit drop" signal, exported as ``ratelimit.denied``.
        self.denied = 0

    def _refill(self) -> None:
        now = self.clock.now
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now

    @property
    def tokens(self) -> float:
        """Tokens currently available (after refill)."""
        self._refill()
        return self._tokens

    def try_take(self, count: float = 1.0) -> bool:
        """Take tokens if available without waiting; returns success."""
        if count > self.burst:
            raise RateLimitExceeded(
                f"requested {count} tokens exceeds burst capacity {self.burst}"
            )
        self._refill()
        if self._tokens >= count:
            self._tokens -= count
            return True
        self.denied += 1
        return False

    def take(self, count: float = 1.0) -> float:
        """Take tokens, advancing the simulated clock as needed.

        Returns the simulated seconds waited (0.0 when tokens were ready).
        """
        if count > self.burst:
            raise RateLimitExceeded(
                f"requested {count} tokens exceeds burst capacity {self.burst}"
            )
        # _refill() inlined (twice): take() runs once per scan query and
        # the method-call overhead is measurable there.  The arithmetic
        # matches _refill exactly so token values stay bit-identical.
        clock = self.clock
        now = clock.now
        tokens = self._tokens
        if now > self._last:
            tokens = min(self.burst, tokens + (now - self._last) * self.rate)
            self._last = now
        if tokens >= count:
            self._tokens = tokens - count
            return 0.0
        wait = (count - tokens) / self.rate
        clock.advance(wait)
        now = clock.now
        if now > self._last:
            tokens = min(self.burst, tokens + (now - self._last) * self.rate)
            self._last = now
        self._tokens = tokens - count
        self.total_waited += wait
        return wait

    def take_many(self, count: int) -> float:
        """Replay ``count`` unit takes; returns the total seconds waited.

        Bit-identical to calling :meth:`take` ``count`` times (the same
        float operations run in the same order, including the per-take
        ``total_waited`` accumulation), with the attribute traffic hoisted
        out of the loop.  The sharded campaign merge uses this to advance
        the authoritative clock by exactly the simulated time a
        sequential scan of the merged query count would have taken.
        """
        clock = self.clock
        rate = self.rate
        burst = self.burst
        advance = clock.advance
        tokens = self._tokens
        last = self._last
        total_waited = self.total_waited
        waited = 0.0
        for _ in range(count):
            now = clock.now
            if now > last:
                tokens = min(burst, tokens + (now - last) * rate)
                last = now
            if tokens >= 1.0:
                tokens = tokens - 1.0
                continue
            wait = (1.0 - tokens) / rate
            advance(wait)
            now = clock.now
            if now > last:
                tokens = min(burst, tokens + (now - last) * rate)
                last = now
            tokens = tokens - 1.0
            total_waited += wait
            waited += wait
        self._tokens = tokens
        self._last = last
        self.total_waited = total_waited
        return waited
