"""Authoritative zone data.

A :class:`Zone` owns an apex name, an SOA, and a set of records indexed
by owner name and type.  Lookups distinguish NXDOMAIN (no records at the
name at all) from NODATA (records exist, but not of the queried type) —
a distinction the blocking study depends on, since blocking resolvers
forge exactly these shapes.

Besides static records, a zone supports *dynamic names*: a callable
registered for an (owner, rtype) pair computes the record set per query,
optionally as a function of the ECS client subnet.  The relay service
registers its ingress assignment logic this way, mirroring how Route 53
serves subnet-dependent answers for ``mask.icloud.com``.

For the scan fast path, a dynamic name may additionally register a
*planner*: given the effective client subnet it derives the scope block
the answer is valid for and returns an :class:`AnswerPlan` whose
``produce()`` emits one query's records.  The server's scope-block cache
(:mod:`repro.dns.answer_cache`) stores plans per block and replays
``produce()`` per query, so per-query side effects (the relay service's
record rotation) advance exactly as they would without the cache and the
fast path stays bit-identical.  Cache freshness hangs off
:meth:`Zone.epoch_token`: the zone's content version plus any registered
epoch sources (the relay service contributes its fleets' deployment
epochs, driven by the shared SimClock).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.errors import ZoneError
from repro.dns.name import DnsName
from repro.dns.rr import RRClass, RRType, ResourceRecord, SoaData
from repro.netmodel.addr import Prefix

#: A dynamic name handler: receives the queried name and the effective
#: client subnet (the ECS source, or None), and returns the answer
#: records plus the ECS scope prefix length the answer is valid for
#: (None lets the server's EcsPolicy decide).
DynamicHandler = Callable[
    [DnsName, Optional[Prefix]], tuple[list[ResourceRecord], Optional[int]]
]


class AnswerPlan(Protocol):
    """One scope block's answer supply.

    ``produce()`` returns one query's :class:`LookupResult`, performing
    any per-query side effects (e.g. rotation bookkeeping) exactly as the
    plain dynamic handler would.
    """

    def produce(self) -> "LookupResult": ...


class _AnySubnet:
    """Sentinel block: the plan is valid regardless of client subnet."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ANY_SUBNET"


#: Block value declaring a plan valid for every query of its (name, rtype),
#: with or without a client subnet (static zone content).
ANY_SUBNET = _AnySubnet()


class _Uncached:
    """Sentinel block: use the plan for this query only, do not store it."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNCACHED"


#: Block value declaring a single-use plan.  The planner already did the
#: derivation work, so the cache consumes the plan once instead of falling
#: back to the handler (which would derive a second time).
UNCACHED = _Uncached()

#: A dynamic name planner: receives the queried name and the effective
#: client subnet and returns (block, plan), where ``block`` is the scope
#: block the plan is valid for within the current epoch — a
#: :class:`~repro.netmodel.addr.Prefix`, None (valid only for queries with
#: no effective subnet), or :data:`ANY_SUBNET`.  Returning None instead of
#: the tuple means the answer cannot safely be reused for a whole block
#: (the cache then falls back to the plain handler, uncached).
DynamicPlanner = Callable[
    [DnsName, Optional[Prefix]],
    Optional[tuple[object, AnswerPlan]],
]


@dataclass(slots=True)
class LookupResult:
    """Outcome of a zone lookup."""

    exists: bool
    records: list[ResourceRecord] = field(default_factory=list)
    scope_override: int | None = None

    @property
    def is_nodata(self) -> bool:
        """Name exists but has no records of the queried type."""
        return self.exists and not self.records


class _ConstantPlan:
    """An :class:`AnswerPlan` for subnet-independent (static) results."""

    __slots__ = ("_exists", "_records", "_scope")

    def __init__(self, result: LookupResult) -> None:
        self._exists = result.exists
        self._records = result.records
        self._scope = result.scope_override

    def produce(self) -> LookupResult:
        return LookupResult(
            exists=self._exists,
            records=list(self._records),
            scope_override=self._scope,
        )


class Zone:
    """One authoritative zone."""

    def __init__(self, apex: DnsName | str, soa: SoaData | None = None) -> None:
        if isinstance(apex, str):
            apex = DnsName.parse(apex)
        self.apex = apex
        if soa is None:
            soa = SoaData(
                mname=apex.child("ns1"),
                rname=apex.child("hostmaster"),
                serial=1,
            )
        self.soa = soa
        #: Content version: bumped on every record/handler registration so
        #: answer caches keyed on :meth:`epoch_token` can never serve data
        #: from before a zone edit.
        self.version = 0
        self._static: dict[DnsName, dict[RRType, list[ResourceRecord]]] = {}
        self._dynamic: dict[tuple[DnsName, RRType], DynamicHandler] = {}
        self._planners: dict[tuple[DnsName, RRType], DynamicPlanner] = {}
        self._dynamic_names: set[DnsName] = set()
        self._epoch_sources: list[Callable[[], object]] = []
        self._epoch_horizons: list[Callable[[], float] | None] = []
        self._replay_enumerators: dict[tuple[DnsName, RRType], Callable] = {}
        self._shard_hooks: list[object] = []
        self._mutation_sources: list[Callable[[], object]] = []

    def _check_in_zone(self, name: DnsName) -> None:
        if not name.is_subdomain_of(self.apex):
            raise ZoneError(f"{name} is not within zone {self.apex}")

    def add_record(self, record: ResourceRecord) -> None:
        """Add a static record (owner must be inside the zone)."""
        self._check_in_zone(record.name)
        by_type = self._static.setdefault(record.name, {})
        by_type.setdefault(record.rtype, []).append(record)
        self.version += 1

    def add_dynamic(
        self,
        name: DnsName | str,
        rtype: RRType,
        handler: DynamicHandler,
        planner: DynamicPlanner | None = None,
    ) -> None:
        """Register a per-query handler (and optional planner) for (name, rtype)."""
        if isinstance(name, str):
            name = DnsName.parse(name)
        self._check_in_zone(name)
        key = (name, rtype)
        if key in self._dynamic:
            raise ZoneError(f"dynamic handler already registered for {name} {rtype.name}")
        self._dynamic[key] = handler
        if planner is not None:
            self._planners[key] = planner
        self._dynamic_names.add(name)
        self.version += 1

    def add_epoch_source(
        self,
        source: Callable[[], object],
        horizon: Callable[[], float] | None = None,
    ) -> None:
        """Register a callable whose value participates in :meth:`epoch_token`.

        Dynamic-handler owners whose answers depend on external state
        (e.g. relay fleet deployment) register a source returning that
        state's epoch; answer caches are invalidated whenever any source's
        value changes.

        ``horizon``, when given, returns the earliest sim-clock time at
        which the source's value may next change (see
        :meth:`epoch_horizon`).  A source without a horizon makes the
        zone's epochs unbounded-unknown, which disables the batch-replay
        scan kernel (it would have no safe batch length).
        """
        self._epoch_sources.append(source)
        self._epoch_horizons.append(horizon)

    def epoch_horizon(self) -> float | None:
        """Until when (sim time) the current :meth:`epoch_token` holds.

        The minimum over the registered sources' horizons: the current
        token is guaranteed stable for any ``clock.now`` strictly below
        the returned time, so batch executors may replay cached answers
        without re-checking the token until then.  ``math.inf`` when no
        epoch sources are registered (only explicit zone edits change the
        token, and those bump ``version`` between scans, not during one).
        None when any source declared no horizon — the token may change
        at any moment and per-query validation is required.
        """
        horizons = self._epoch_horizons
        if not horizons:
            return math.inf
        earliest = math.inf
        for horizon in horizons:
            if horizon is None:
                return None
            when = horizon()
            if when < earliest:
                earliest = when
        return earliest

    def add_replay_enumerator(
        self,
        name: DnsName | str,
        rtype: RRType,
        enumerator: Callable[[int, int], tuple[list, list] | None],
    ) -> None:
        """Register a range enumerator for (name, rtype) answer plans.

        ``enumerator(lo, hi)`` returns the answer structure of the whole
        address range ``[lo, hi]`` for the *current* epoch as ``(rows,
        specs)``: contiguous ``(start, end, spec index)`` rows in
        ascending address order (inclusive bounds, every address covered
        exactly once) over a parallel list of *distinct* replay spec
        tuples (deduplicated — many rows may share one spec).
        It may return None when the current state
        cannot be enumerated safely (e.g. nested assignment units); the
        scan then falls back to per-query lookups.  The answer cache
        compiles these rows into replay programs
        (:meth:`repro.dns.answer_cache.ScopeAnswerCache.replay_program`).
        """
        if isinstance(name, str):
            name = DnsName.parse(name)
        self._check_in_zone(name)
        key = (name, rtype)
        if key in self._replay_enumerators:
            raise ZoneError(
                f"replay enumerator already registered for {name} {rtype.name}"
            )
        self._replay_enumerators[key] = enumerator
        self.version += 1

    def replay_enumerator(
        self, name: DnsName, rtype: RRType
    ) -> Callable[[int, int], tuple[list, list] | None] | None:
        """The registered range enumerator for (name, rtype), or None."""
        return self._replay_enumerators.get((name, rtype))

    def add_shard_hook(self, hook: object) -> None:
        """Register per-query mutable state for sharded scan execution.

        A *shard hook* owns answer state that advances per query (the
        relay service registers its rotation counters).  The sharded
        campaign executor drives hooks in registration order:
        ``hook.reseed(base)`` in a worker before each shard task,
        ``hook.delta_snapshot()`` after it, and ``hook.apply_deltas(...)``
        on the parent's hooks when merging shard results — so the parent
        ends each scan in the same aggregate state a sequential scan
        would have produced.
        """
        self._shard_hooks.append(hook)

    def shard_hooks(self) -> list[object]:
        """Registered shard hooks, in registration order."""
        return list(self._shard_hooks)

    def add_mutation_source(self, source: Callable[[], object]) -> None:
        """Register backing state that can be *edited* between scans.

        Unlike epoch sources, mutation sources must exclude anything
        that is a pure function of simulated time: consumers compare
        :meth:`mutation_token` across clock advances to decide whether
        a forked replica of the served world has gone stale (the
        sharded executor respawns its worker pool on a change), so a
        time-derived term would force a pointless respawn every time
        the clock crosses an epoch boundary.
        """
        self._mutation_sources.append(source)

    def mutation_token(self) -> tuple:
        """Zone content version plus all registered mutable backing state."""
        return (self.version, *[source() for source in self._mutation_sources])

    def epoch_token(self) -> tuple:
        """The zone's current freshness token (content version + sources)."""
        sources = self._epoch_sources
        if not sources:
            return (self.version,)
        if len(sources) == 1:
            # One source is the common case (the relay zone) and this
            # runs per query on the fast path; skip the list build.
            return (self.version, sources[0]())
        return (self.version, *[source() for source in sources])

    def names(self) -> set[DnsName]:
        """All names with static records or dynamic handlers."""
        return set(self._static) | set(self._dynamic_names)

    def lookup(
        self, name: DnsName, rtype: RRType, client_subnet: Prefix | None = None
    ) -> LookupResult:
        """Resolve a (name, type) within this zone.

        Returns ``exists=False`` for NXDOMAIN; an empty record list with
        ``exists=True`` for NODATA.
        """
        self._check_in_zone(name)
        handler = self._dynamic.get((name, rtype))
        if handler is not None:
            records, scope = handler(name, client_subnet)
            return LookupResult(exists=True, records=list(records), scope_override=scope)
        by_type = self._static.get(name)
        if by_type is None and name not in self._dynamic_names:
            return LookupResult(exists=False)
        records = list(by_type.get(rtype, [])) if by_type else []
        # Chase CNAMEs one step within the zone (enough for our zones).
        if not records and by_type and RRType.CNAME in by_type:
            cname = by_type[RRType.CNAME][0]
            records = [cname]
            assert isinstance(cname.rdata, DnsName)
            if cname.rdata.is_subdomain_of(self.apex):
                target = self.lookup(cname.rdata, rtype, client_subnet)
                records.extend(target.records)
        return LookupResult(exists=True, records=records)

    def lookup_plan(
        self, name: DnsName, rtype: RRType, client_subnet: Prefix | None = None
    ) -> tuple[object, AnswerPlan] | None:
        """A cacheable answer plan for (name, type, subnet), or None.

        None means the answer must not be reused across queries (dynamic
        handler without a planner, or a planner declining the block); the
        caller falls back to :meth:`lookup` per query.

        Unlike :meth:`lookup` this does not re-verify the name lies in
        the zone — the caller (the server's answer cache) only reaches a
        zone through :meth:`AuthoritativeServer.zone_for`, and this runs
        once per query on the fast path.
        """
        key = (name, rtype)
        planner = self._planners.get(key)
        if planner is not None:
            return planner(name, client_subnet)
        if key in self._dynamic:
            return None
        by_type = self._static.get(name)
        if by_type is None and name not in self._dynamic_names:
            return ANY_SUBNET, _ConstantPlan(LookupResult(exists=False))
        records = list(by_type.get(rtype, [])) if by_type else []
        if not records and by_type and RRType.CNAME in by_type:
            # CNAME chases may land on a dynamic (subnet-dependent) target;
            # leave them uncached rather than reason about the chain.
            return None
        return ANY_SUBNET, _ConstantPlan(LookupResult(exists=True, records=records))

    def soa_record(self) -> ResourceRecord:
        """The zone's SOA as a resource record (for negative responses)."""
        return ResourceRecord(self.apex, RRType.SOA, RRClass.IN, 900, self.soa)
