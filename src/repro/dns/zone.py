"""Authoritative zone data.

A :class:`Zone` owns an apex name, an SOA, and a set of records indexed
by owner name and type.  Lookups distinguish NXDOMAIN (no records at the
name at all) from NODATA (records exist, but not of the queried type) —
a distinction the blocking study depends on, since blocking resolvers
forge exactly these shapes.

Besides static records, a zone supports *dynamic names*: a callable
registered for an (owner, rtype) pair computes the record set per query,
optionally as a function of the ECS client subnet.  The relay service
registers its ingress assignment logic this way, mirroring how Route 53
serves subnet-dependent answers for ``mask.icloud.com``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ZoneError
from repro.dns.name import DnsName
from repro.dns.rr import RRClass, RRType, ResourceRecord, SoaData
from repro.netmodel.addr import Prefix

#: A dynamic name handler: receives the queried name and the effective
#: client subnet (the ECS source, or None), and returns the answer
#: records plus the ECS scope prefix length the answer is valid for
#: (None lets the server's EcsPolicy decide).
DynamicHandler = Callable[
    [DnsName, Optional[Prefix]], tuple[list[ResourceRecord], Optional[int]]
]


@dataclass
class LookupResult:
    """Outcome of a zone lookup."""

    exists: bool
    records: list[ResourceRecord] = field(default_factory=list)
    scope_override: int | None = None

    @property
    def is_nodata(self) -> bool:
        """Name exists but has no records of the queried type."""
        return self.exists and not self.records


class Zone:
    """One authoritative zone."""

    def __init__(self, apex: DnsName | str, soa: SoaData | None = None) -> None:
        if isinstance(apex, str):
            apex = DnsName.parse(apex)
        self.apex = apex
        if soa is None:
            soa = SoaData(
                mname=apex.child("ns1"),
                rname=apex.child("hostmaster"),
                serial=1,
            )
        self.soa = soa
        self._static: dict[DnsName, dict[RRType, list[ResourceRecord]]] = {}
        self._dynamic: dict[tuple[DnsName, RRType], DynamicHandler] = {}

    def _check_in_zone(self, name: DnsName) -> None:
        if not name.is_subdomain_of(self.apex):
            raise ZoneError(f"{name} is not within zone {self.apex}")

    def add_record(self, record: ResourceRecord) -> None:
        """Add a static record (owner must be inside the zone)."""
        self._check_in_zone(record.name)
        by_type = self._static.setdefault(record.name, {})
        by_type.setdefault(record.rtype, []).append(record)

    def add_dynamic(self, name: DnsName | str, rtype: RRType, handler: DynamicHandler) -> None:
        """Register a per-query handler for (name, rtype)."""
        if isinstance(name, str):
            name = DnsName.parse(name)
        self._check_in_zone(name)
        key = (name, rtype)
        if key in self._dynamic:
            raise ZoneError(f"dynamic handler already registered for {name} {rtype.name}")
        self._dynamic[key] = handler

    def names(self) -> set[DnsName]:
        """All names with static records or dynamic handlers."""
        return set(self._static) | {name for name, _ in self._dynamic}

    def lookup(
        self, name: DnsName, rtype: RRType, client_subnet: Prefix | None = None
    ) -> LookupResult:
        """Resolve a (name, type) within this zone.

        Returns ``exists=False`` for NXDOMAIN; an empty record list with
        ``exists=True`` for NODATA.
        """
        self._check_in_zone(name)
        handler = self._dynamic.get((name, rtype))
        if handler is not None:
            records, scope = handler(name, client_subnet)
            return LookupResult(exists=True, records=list(records), scope_override=scope)
        by_type = self._static.get(name)
        name_has_dynamic = any(dyn_name == name for dyn_name, _ in self._dynamic)
        if by_type is None and not name_has_dynamic:
            return LookupResult(exists=False)
        records = list(by_type.get(rtype, [])) if by_type else []
        # Chase CNAMEs one step within the zone (enough for our zones).
        if not records and by_type and RRType.CNAME in by_type:
            cname = by_type[RRType.CNAME][0]
            records = [cname]
            assert isinstance(cname.rdata, DnsName)
            if cname.rdata.is_subdomain_of(self.apex):
                target = self.lookup(cname.rdata, rtype, client_subnet)
                records.extend(target.records)
        return LookupResult(exists=True, records=records)

    def soa_record(self) -> ResourceRecord:
        """The zone's SOA as a resource record (for negative responses)."""
        return ResourceRecord(self.apex, RRType.SOA, RRClass.IN, 900, self.soa)
