"""Domain names.

:class:`DnsName` stores a name as a tuple of lowercase labels and
enforces the RFC 1035 length limits (63 bytes per label, 255 bytes per
name).  Comparison is case-insensitive by construction, which is what the
zone lookup and resolver caches need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DnsNameError

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255


@dataclass(frozen=True, slots=True)
class DnsName:
    """A fully-qualified domain name as a label tuple (root = empty tuple)."""

    labels: tuple[str, ...]

    def __post_init__(self) -> None:
        total = 1  # terminating root length byte
        for label in self.labels:
            if not label:
                raise DnsNameError("empty label inside name")
            raw = label.encode("ascii", errors="strict") if label.isascii() else None
            if raw is None:
                raise DnsNameError(f"non-ASCII label {label!r}")
            if len(raw) > MAX_LABEL_LENGTH:
                raise DnsNameError(f"label {label!r} exceeds {MAX_LABEL_LENGTH} bytes")
            if label != label.lower():
                raise DnsNameError(
                    f"labels must be stored lowercase, got {label!r} "
                    "(use DnsName.parse for case folding)"
                )
            total += 1 + len(raw)
        if total > MAX_NAME_LENGTH:
            raise DnsNameError(f"name exceeds {MAX_NAME_LENGTH} bytes")

    @classmethod
    def parse(cls, text: str) -> "DnsName":
        """Parse dotted text; a single trailing dot is accepted."""
        text = text.strip()
        if text in ("", "."):
            return cls(())
        if text.endswith("."):
            text = text[:-1]
        labels = tuple(label.lower() for label in text.split("."))
        if any(not label for label in labels):
            raise DnsNameError(f"empty label in {text!r}")
        return cls(labels)

    @property
    def is_root(self) -> bool:
        """Whether this is the root name."""
        return not self.labels

    def __str__(self) -> str:
        if self.is_root:
            return "."
        return ".".join(self.labels) + "."

    def parent(self) -> "DnsName":
        """The name with its leftmost label removed."""
        if self.is_root:
            raise DnsNameError("root has no parent")
        return DnsName(self.labels[1:])

    def is_subdomain_of(self, other: "DnsName") -> bool:
        """Whether this name equals or is beneath ``other``."""
        if len(other.labels) > len(self.labels):
            return False
        return not other.labels or self.labels[-len(other.labels):] == other.labels

    def child(self, label: str) -> "DnsName":
        """Prepend a label (case-folded) to form a subdomain."""
        return DnsName((label.lower(),) + self.labels)
