"""Domain names.

:class:`DnsName` stores a name as a tuple of lowercase labels and
enforces the RFC 1035 length limits (63 bytes per label, 255 bytes per
name).  Comparison is case-insensitive by construction, which is what the
zone lookup and resolver caches need.
"""

from __future__ import annotations

from repro.errors import DnsNameError
from repro.perfstats import CacheStats

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255

#: Intern table for parsed names.  The scan hot loop parses the same two
#: relay domains millions of times; interning turns each parse into one
#: dict probe and lets equal names share a single immutable instance.
#: Keyed by the raw input text, so differently-written spellings of the
#: same name ("A.b." vs "a.b") occupy separate slots but still map to
#: equal values.  Only successful parses are cached.
_INTERN: dict[str, "DnsName"] = {}

#: Hit/miss counters for the intern table (fast-path observability).
intern_stats = CacheStats()


def clear_intern_cache() -> None:
    """Drop all interned names (counts as one invalidation)."""
    # repro: allow[CONC001] test-only reset hook; the whole-program pass (CONC101) proves it unreachable from worker entry points
    _INTERN.clear()
    # repro: allow[CONC001] test-only reset hook; unreachable from worker entry points (CONC101-clean)
    intern_stats.invalidations += 1


class DnsName:
    """A fully-qualified domain name as a label tuple (root = empty tuple).

    Immutable by convention (attributes are set once in ``__init__``).
    The hash is computed at construction: names key every hot dict in the
    scan path (zone entries, answer-cache entries, delegation caches), so
    re-hashing the label tuple per probe would dominate those lookups.
    """

    __slots__ = ("labels", "_hash")

    def __init__(self, labels: tuple[str, ...]) -> None:
        self.labels = tuple(labels)
        self._hash = hash(self.labels)
        total = 1  # terminating root length byte
        for label in self.labels:
            if not label:
                raise DnsNameError("empty label inside name")
            raw = label.encode("ascii", errors="strict") if label.isascii() else None
            if raw is None:
                raise DnsNameError(f"non-ASCII label {label!r}")
            if len(raw) > MAX_LABEL_LENGTH:
                raise DnsNameError(f"label {label!r} exceeds {MAX_LABEL_LENGTH} bytes")
            if label != label.lower():
                raise DnsNameError(
                    f"labels must be stored lowercase, got {label!r} "
                    "(use DnsName.parse for case folding)"
                )
            total += 1 + len(raw)
        if total > MAX_NAME_LENGTH:
            raise DnsNameError(f"name exceeds {MAX_NAME_LENGTH} bytes")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DnsName):
            return self.labels == other.labels
        return NotImplemented

    def __repr__(self) -> str:
        return f"DnsName(labels={self.labels!r})"

    @classmethod
    def parse(cls, text: str) -> "DnsName":
        """Parse dotted text; a single trailing dot is accepted.

        Parses are interned: repeated parses of the same text return the
        same (immutable) instance without re-validating.
        """
        cached = _INTERN.get(text)
        if cached is not None:
            # repro: allow[CONC001,CONC101] process-local observability counter, never merged into results
            intern_stats.hits += 1
            return cached
        # repro: allow[CONC001,CONC101] process-local observability counter, never merged into results
        intern_stats.misses += 1
        raw = text
        text = text.strip()
        if text in ("", "."):
            name = cls(())
        else:
            if text.endswith("."):
                text = text[:-1]
            labels = tuple(label.lower() for label in text.split("."))
            if any(not label for label in labels):
                raise DnsNameError(f"empty label in {text!r}")
            name = cls(labels)
        # repro: allow[CONC001,CONC101] content-keyed intern table: the value is a pure function of the key, so parent/worker copies can only agree
        _INTERN[raw] = name
        return name

    @property
    def is_root(self) -> bool:
        """Whether this is the root name."""
        return not self.labels

    def __str__(self) -> str:
        if self.is_root:
            return "."
        return ".".join(self.labels) + "."

    def parent(self) -> "DnsName":
        """The name with its leftmost label removed."""
        if self.is_root:
            raise DnsNameError("root has no parent")
        return DnsName(self.labels[1:])

    def is_subdomain_of(self, other: "DnsName") -> bool:
        """Whether this name equals or is beneath ``other``."""
        if len(other.labels) > len(self.labels):
            return False
        return not other.labels or self.labels[-len(other.labels):] == other.labels

    def child(self, label: str) -> "DnsName":
        """Prepend a label (case-folded) to form a subdomain."""
        return DnsName((label.lower(),) + self.labels)
