"""The scope-block answer cache — the server half of the scan fast path.

The ECS scanner sends millions of queries whose answers the server
itself declares valid for whole scope blocks ("scope /16" means every
/24 inside the /16 gets this answer).  This cache exploits exactly that
declaration: the first query of a block runs the zone's *planner*, which
performs the expensive pure derivation once (assignment lookup, relay
filtering, record-object construction) and hands back an
:class:`~repro.dns.zone.AnswerPlan`; the plan is stored keyed by
``(qname, rtype, scope-block)`` and every query — first or repeat —
calls ``plan.produce()``, which replays the per-query tail (the relay
service's answer rotation) exactly as the uncached handler would.  The
fast path is therefore *bit-identical* with the cache on or off, by
construction rather than by luck.

Staleness is impossible by keying on the zone's epoch token
(:meth:`~repro.dns.zone.Zone.epoch_token`): zone content version plus
registered epoch sources such as relay-fleet deployment epochs, which in
turn advance with the shared :class:`~repro.simtime.SimClock`.  Any
token change — a relay activating or retiring mid-scan, a record added
between monthly scans — drops every cached plan.

Server query accounting is unaffected: the cache sits below the
:class:`~repro.dns.server.AuthoritativeServer` stats counters, which
increment once per query whether or not a plan was reused.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right

from repro.dns.name import DnsName
from repro.dns.rr import RRType
from repro.dns.zone import ANY_SUBNET, UNCACHED, LookupResult, Zone
from repro.netmodel.addr import Prefix
from repro.perfstats import CacheStats

class _NameEntry:
    """Cached plans for one (qname, rtype): per-block plus sentinels.

    Blocks are kept as disjoint integer intervals in start order per IP
    version, so the per-query probe is one bisect.  Should a planner ever
    store overlapping blocks (no current planner does — assignment units
    are disjoint and fallback blocks are checked against them), the entry
    migrates to a per-length dict layout that preserves most-specific-
    block-wins semantics.
    """

    __slots__ = ("any_plan", "no_subnet_plan", "starts", "ends", "plans", "by_length")

    def __init__(self) -> None:
        self.any_plan = None
        self.no_subnet_plan = None
        #: Per IP version: block starts / inclusive ends / plans, three
        #: parallel lists sorted by start.
        self.starts: dict[int, list[int]] = {4: [], 6: []}
        self.ends: dict[int, list[int]] = {4: [], 6: []}
        self.plans: dict[int, list[object]] = {4: [], 6: []}
        #: The overlap fallback: per IP version, [(block length, {masked
        #: value: plan})] most specific first.  None until first overlap.
        self.by_length: dict[int, list[tuple[int, dict[int, object]]]] | None = None


class ReplayProgram:
    """One compiled answer program for a (qname, rtype, range, epoch).

    Flat columns over the range ``[lo, hi]``, covered contiguously in
    ascending address order:

    * ``row_starts`` / ``row_ends`` — ``array('I')`` span bounds
      (inclusive) per row;
    * ``row_answer`` — ``array('I')`` index into :attr:`answers` per row;
    * ``row_scopes`` — ``array('B')`` declared scope per row (255 encodes
      "no override": the server's default scope applies);
    * ``answers`` — one ``replay_spec()`` tuple per *distinct* answer
      (see :meth:`repro.relay.service._BlockAnswer.replay_spec`); the
      enumerator deduplicates, so thousands of rows typically share a
      few hundred specs.

    The scan kernel links the answer specs against its settings once and
    then replays the program with a monotone row pointer.  Programs are
    epoch-scoped exactly like cached plans: any token change drops them.
    """

    __slots__ = ("lo", "hi", "row_starts", "row_ends", "row_answer", "row_scopes", "answers")

    def __init__(self, lo: int, hi: int, rows: list, specs: list) -> None:
        self.lo = lo
        self.hi = hi
        starts = [row[0] for row in rows]
        ends = [row[1] for row in rows]
        # Bulk validation: the per-row checks collapse to list-at-a-time
        # passes (packing ran at ~2 µs/row as a scalar loop, and a
        # program holds tens of thousands of rows).
        if (
            not rows
            or starts[0] != lo
            or ends[-1] != hi
            or any(e < s for s, e in zip(starts, ends))
            or any(s != e + 1 for s, e in zip(starts[1:], ends))
        ):
            raise ValueError(
                f"replay rows must cover [{lo}, {hi}] contiguously"
            )
        indexes = [row[2] for row in rows]
        scope_bytes = [255 if a[0] is None else a[0] for a in specs]
        self.row_starts = array("I", starts)
        self.row_ends = array("I", ends)
        self.row_answer = array("I", indexes)
        self.row_scopes = array("B", [scope_bytes[i] for i in indexes])
        self.answers = specs

    def __len__(self) -> int:
        return len(self.row_ends)


class ScopeAnswerCache:
    """Caches answer plans per (qname, rtype, scope-block, epoch)."""

    def __init__(self) -> None:
        self.enabled = True
        self.stats = CacheStats()
        # Hoisted counter objects: stats fields are properties now, and
        # this lookup runs per query.  reset() mutates these in place,
        # so the references stay live.
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")
        self._invalidations = self.stats.counter("invalidations")
        self._token: tuple | None = None
        self._entries: dict[tuple[DnsName, RRType], _NameEntry] = {}
        #: Compiled replay programs, keyed (qname, rtype, lo, hi); same
        #: epoch scoping as the plan entries (any token change clears).
        self._programs: dict[tuple[DnsName, RRType, int, int], ReplayProgram] = {}

    def _invalidate(self) -> None:
        """Drop plans and programs together (one invalidation count)."""
        if self._entries or self._programs:
            self._entries.clear()
            self._programs.clear()
            self._invalidations.value += 1

    def replay_program(
        self, zone: Zone, name: DnsName, rtype: RRType, lo: int, hi: int
    ) -> ReplayProgram | None:
        """The compiled program for a scan range, or None if unsupported.

        Compiled from the zone's registered replay enumerator
        (:meth:`~repro.dns.zone.Zone.replay_enumerator`) on first use per
        epoch and cached under the same token discipline as answer
        plans.  Compilation itself counts neither hits nor misses — per
        partition-invariance, program-served queries are accounted as
        cache hits by the kernel (:meth:`record_program_hits`), keeping
        ``hits + misses`` equal to the query count for any worker split.
        """
        if not self.enabled:
            return None
        token = zone.epoch_token()
        if token != self._token:
            self._invalidate()
            self._token = token
        key = (name, rtype, lo, hi)
        program = self._programs.get(key)
        if program is not None:
            return program
        enumerator = zone.replay_enumerator(name, rtype)
        if enumerator is None:
            return None
        enumerated = enumerator(lo, hi)
        if enumerated is None:
            return None
        rows, specs = enumerated
        program = ReplayProgram(lo, hi, rows, specs)
        self._programs[key] = program
        return program

    def record_program_hits(self, count: int) -> None:
        """Account ``count`` program-served queries as cache hits."""
        self._hits.value += count

    def lookup(
        self,
        zone: Zone,
        name: DnsName,
        rtype: RRType,
        subnet: Prefix | None,
    ) -> LookupResult:
        """Resolve via cached plan, planning on miss.

        Falls back to ``zone.lookup`` (uncached, exact) when the zone
        declines to plan the answer.
        """
        token = zone.epoch_token()
        if token != self._token:
            self._invalidate()
            self._token = token
        entry = self._entries.get((name, rtype))
        if entry is not None:
            plan = self._probe(entry, subnet)
            if plan is not None:
                self._hits.value += 1
                return plan.produce()
        self._misses.value += 1
        planned = zone.lookup_plan(name, rtype, subnet)
        if planned is None:
            return zone.lookup(name, rtype, subnet)
        block, plan = planned
        if block is not UNCACHED:
            self._store(name, rtype, block, plan)
        return plan.produce()

    def _probe(self, entry: _NameEntry, subnet: Prefix | None):
        if entry.any_plan is not None:
            return entry.any_plan
        if subnet is None:
            return entry.no_subnet_plan
        if entry.by_length is not None:
            return self._probe_mixed(entry, subnet)
        version = subnet.version
        starts = entry.starts[version]
        if not starts:
            return None
        value = subnet.value
        pos = bisect_right(starts, value) - 1
        if pos < 0:
            return None
        # The block must contain the whole subnet, not just its start
        # (a stored block more specific than the query does not apply).
        subnet_end = value + (1 << (subnet.bits - subnet.length)) - 1
        if entry.ends[version][pos] >= subnet_end:
            return entry.plans[version][pos]
        return None

    def _probe_mixed(self, entry: _NameEntry, subnet: Prefix):
        pairs = entry.by_length[subnet.version]
        value, bits, max_length = subnet.value, subnet.bits, subnet.length
        for length, blocks in pairs:
            if length > max_length:
                continue
            plan = blocks.get(value >> (bits - length) << (bits - length))
            if plan is not None:
                return plan
        return None

    def _store(self, name, rtype, block, plan) -> None:
        entry = self._entries.get((name, rtype))
        if entry is None:
            entry = self._entries[(name, rtype)] = _NameEntry()
        if block is ANY_SUBNET:
            entry.any_plan = plan
        elif block is None:
            entry.no_subnet_plan = plan
        else:
            assert isinstance(block, Prefix)
            if entry.by_length is not None:
                self._store_mixed(entry, block, plan)
                return
            version = block.version
            starts = entry.starts[version]
            start = block.value
            end = start + (1 << (block.bits - block.length)) - 1
            pos = bisect_right(starts, start)
            if (pos > 0 and entry.ends[version][pos - 1] >= start) or (
                pos < len(starts) and starts[pos] <= end
            ):
                self._migrate_to_mixed(entry)
                self._store_mixed(entry, block, plan)
                return
            starts.insert(pos, start)
            entry.ends[version].insert(pos, end)
            entry.plans[version].insert(pos, plan)

    def _migrate_to_mixed(self, entry: _NameEntry) -> None:
        entry.by_length = {4: [], 6: []}
        for version, bits in ((4, 32), (6, 128)):
            starts = entry.starts[version]
            ends = entry.ends[version]
            plans = entry.plans[version]
            for start, end, plan in zip(starts, ends, plans):
                length = bits - (end - start + 1).bit_length() + 1
                self._store_mixed_one(entry, version, length, start, plan)
            starts.clear()
            ends.clear()
            plans.clear()

    def _store_mixed(self, entry: _NameEntry, block: Prefix, plan) -> None:
        self._store_mixed_one(entry, block.version, block.length, block.value, plan)

    def _store_mixed_one(self, entry, version, length, value, plan) -> None:
        pairs = entry.by_length[version]
        for pair_length, blocks in pairs:
            if pair_length == length:
                blocks[value] = plan
                break
        else:
            pairs.append((length, {value: plan}))
            pairs.sort(key=lambda pair: pair[0], reverse=True)

    def clear(self) -> None:
        """Drop every cached plan and program (counts as an invalidation)."""
        self._invalidate()
        self._token = None
