"""EDNS0 options, in particular the RFC 7871 Client Subnet option.

The ECS option is the core mechanism of the paper's ingress enumeration:
the scanner attaches a /24 client subnet to each query; the authoritative
server answers with records appropriate for that subnet and echoes a
*scope prefix length* declaring how wide a block the answer is valid for.
The scanner's pruning logic (do not re-query inside a scope wider than
/24) hangs off that field.

This module models the option both as a dataclass and as wire bytes
(option code 8), including the address-truncation rule: the address field
carries only ``ceil(source_prefix_length / 8)`` bytes and trailing host
bits must be zero.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import DnsWireError
from repro.netmodel.addr import IPAddress, Prefix

OPTION_CODE_CLIENT_SUBNET = 8

#: ECS family codes per the IANA Address Family Numbers registry.
FAMILY_IPV4 = 1
FAMILY_IPV6 = 2


@dataclass(frozen=True, slots=True)
class ClientSubnetOption:
    """An RFC 7871 Client Subnet option.

    ``source`` is the client-announced subnet; ``scope_prefix_length`` is
    filled in by the responding server (0 in queries).
    """

    source: Prefix
    scope_prefix_length: int = 0

    def __post_init__(self) -> None:
        max_scope = 32 if self.source.version == 4 else 128
        if not 0 <= self.scope_prefix_length <= max_scope:
            raise DnsWireError(
                f"ECS scope {self.scope_prefix_length} out of range for "
                f"IPv{self.source.version}"
            )

    @property
    def family(self) -> int:
        """The IANA address-family code of the source subnet."""
        return FAMILY_IPV4 if self.source.version == 4 else FAMILY_IPV6

    def with_scope(self, scope_prefix_length: int) -> "ClientSubnetOption":
        """Copy of the option with the server-side scope filled in."""
        return ClientSubnetOption(self.source, scope_prefix_length)

    def scope_prefix(self) -> Prefix:
        """The subnet the answer is declared valid for.

        A scope shorter than the source widens validity (the scanner may
        skip the rest of that block); scope 0 means "valid everywhere" —
        the behaviour the paper observed for all IPv6 ECS queries.
        """
        if self.scope_prefix_length >= self.source.length:
            return self.source
        return self.source.truncate(self.scope_prefix_length)

    def to_wire(self) -> bytes:
        """Encode as EDNS option payload (without the code/length frame)."""
        source_bits = self.source.length
        address_bytes = (source_bits + 7) // 8
        packed_full = self.source.network_address.packed()
        address = packed_full[:address_bytes]
        return (
            struct.pack(
                "!HBB", self.family, source_bits, self.scope_prefix_length
            )
            + address
        )

    @classmethod
    def from_wire(cls, payload: bytes) -> "ClientSubnetOption":
        """Decode an EDNS option payload into a Client Subnet option."""
        if len(payload) < 4:
            raise DnsWireError(f"ECS option too short: {len(payload)} bytes")
        family, source_bits, scope_bits = struct.unpack("!HBB", payload[:4])
        if family == FAMILY_IPV4:
            version, full_bytes = 4, 4
        elif family == FAMILY_IPV6:
            version, full_bytes = 6, 16
        else:
            raise DnsWireError(f"unknown ECS address family {family}")
        address = payload[4:]
        expected = (source_bits + 7) // 8
        if len(address) != expected:
            raise DnsWireError(
                f"ECS address field is {len(address)} bytes, expected {expected}"
            )
        if source_bits > full_bytes * 8:
            raise DnsWireError(
                f"ECS source prefix length {source_bits} too long for family"
            )
        padded = address + b"\x00" * (full_bytes - len(address))
        value = int.from_bytes(padded, "big")
        prefix = Prefix.from_address(IPAddress(version, value), source_bits)
        if prefix.network_address.packed()[: len(address)] != address:
            raise DnsWireError("ECS address field has non-zero host bits")
        return cls(prefix, scope_bits)


@dataclass(frozen=True, slots=True)
class EdnsOptions:
    """The EDNS0 state carried in a message's OPT pseudo-record."""

    udp_payload_size: int = 1232
    extended_rcode: int = 0
    version: int = 0
    dnssec_ok: bool = False
    client_subnet: ClientSubnetOption | None = None
    raw_options: tuple[tuple[int, bytes], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 512 <= self.udp_payload_size <= 65535:
            raise DnsWireError(
                f"EDNS UDP payload size {self.udp_payload_size} out of range"
            )
        if self.version != 0:
            raise DnsWireError(f"unsupported EDNS version {self.version}")

    def options_wire(self) -> bytes:
        """Encode all options as the OPT record's rdata."""
        chunks = []
        if self.client_subnet is not None:
            payload = self.client_subnet.to_wire()
            chunks.append(
                struct.pack("!HH", OPTION_CODE_CLIENT_SUBNET, len(payload)) + payload
            )
        for code, payload in self.raw_options:
            chunks.append(struct.pack("!HH", code, len(payload)) + payload)
        return b"".join(chunks)

    @classmethod
    def from_options_wire(
        cls,
        rdata: bytes,
        udp_payload_size: int = 1232,
        extended_rcode: int = 0,
        dnssec_ok: bool = False,
    ) -> "EdnsOptions":
        """Decode OPT rdata into an :class:`EdnsOptions`."""
        client_subnet = None
        raw: list[tuple[int, bytes]] = []
        offset = 0
        while offset < len(rdata):
            if offset + 4 > len(rdata):
                raise DnsWireError("truncated EDNS option header")
            code, length = struct.unpack("!HH", rdata[offset : offset + 4])
            offset += 4
            payload = rdata[offset : offset + length]
            if len(payload) != length:
                raise DnsWireError("truncated EDNS option payload")
            offset += length
            if code == OPTION_CODE_CLIENT_SUBNET:
                client_subnet = ClientSubnetOption.from_wire(payload)
            else:
                raw.append((code, payload))
        return cls(
            udp_payload_size=udp_payload_size,
            extended_rcode=extended_rcode,
            dnssec_ok=dnssec_ok,
            client_subnet=client_subnet,
            raw_options=tuple(raw),
        )
