"""DNS messages.

A :class:`DnsMessage` carries the header flags, question, and the three
record sections.  Factory helpers build the exact query shapes the
scanners send (plain A/AAAA queries, ECS-bearing queries) and the
response shapes the resolver models return (NOERROR with data, NOERROR
without data, NXDOMAIN, REFUSED, SERVFAIL, FORMERR).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import DnsWireError
from repro.dns.edns import ClientSubnetOption, EdnsOptions
from repro.dns.name import DnsName
from repro.dns.rr import RRClass, RRType, ResourceRecord
from repro.netmodel.addr import Prefix


class Opcode(enum.IntEnum):
    """DNS opcodes (only QUERY is used by the pipeline)."""

    QUERY = 0
    NOTIFY = 4
    UPDATE = 5


class Rcode(enum.IntEnum):
    """DNS response codes, covering the blocking-study categories."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


@dataclass(frozen=True, slots=True)
class Question:
    """The question section entry: name, type, class."""

    name: DnsName
    rtype: RRType
    rclass: RRClass = RRClass.IN

    def __str__(self) -> str:
        return f"{self.name} {self.rclass.name} {self.rtype.name}"


@dataclass(frozen=True, slots=True)
class DnsMessage:
    """A DNS query or response."""

    message_id: int = 0
    is_response: bool = False
    opcode: Opcode = Opcode.QUERY
    authoritative: bool = False
    truncated: bool = False
    recursion_desired: bool = True
    recursion_available: bool = False
    rcode: Rcode = Rcode.NOERROR
    question: Question | None = None
    answers: tuple[ResourceRecord, ...] = field(default_factory=tuple)
    authorities: tuple[ResourceRecord, ...] = field(default_factory=tuple)
    additionals: tuple[ResourceRecord, ...] = field(default_factory=tuple)
    edns: EdnsOptions | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.message_id <= 0xFFFF:
            raise DnsWireError(f"message id {self.message_id} out of range")

    # ------------------------------------------------------------------
    # Query construction
    # ------------------------------------------------------------------

    @classmethod
    def query(
        cls,
        name: DnsName | str,
        rtype: RRType,
        message_id: int = 0,
        ecs: Prefix | None = None,
        recursion_desired: bool = True,
    ) -> "DnsMessage":
        """Build a QUERY, optionally carrying an ECS client subnet."""
        if isinstance(name, str):
            name = DnsName.parse(name)
        edns = None
        if ecs is not None:
            edns = EdnsOptions(client_subnet=ClientSubnetOption(ecs))
        return cls(
            message_id=message_id,
            question=Question(name, rtype),
            recursion_desired=recursion_desired,
            edns=edns,
        )

    # ------------------------------------------------------------------
    # Response construction
    # ------------------------------------------------------------------

    def reply(
        self,
        rcode: Rcode = Rcode.NOERROR,
        answers: tuple[ResourceRecord, ...] = (),
        authoritative: bool = False,
        recursion_available: bool = True,
        ecs_scope: int | None = None,
    ) -> "DnsMessage":
        """Build a response to this query.

        ``ecs_scope`` echoes the query's ECS option with the given scope
        prefix length, per RFC 7871 server behaviour; it is ignored when
        the query carried no ECS option.
        """
        edns = None
        if self.edns is not None:
            subnet = self.edns.client_subnet
            if subnet is not None and ecs_scope is not None:
                edns = EdnsOptions(client_subnet=subnet.with_scope(ecs_scope))
            elif subnet is not None:
                edns = EdnsOptions(client_subnet=subnet)
            else:
                edns = EdnsOptions()
        return DnsMessage(
            message_id=self.message_id,
            is_response=True,
            opcode=self.opcode,
            authoritative=authoritative,
            recursion_desired=self.recursion_desired,
            recursion_available=recursion_available,
            rcode=rcode,
            question=self.question,
            answers=tuple(answers),
            edns=edns,
        )

    # ------------------------------------------------------------------
    # Inspection helpers
    # ------------------------------------------------------------------

    @property
    def client_subnet(self) -> ClientSubnetOption | None:
        """The ECS option, if the message carries one."""
        return self.edns.client_subnet if self.edns is not None else None

    def answer_addresses(self):
        """Addresses from all A/AAAA answer records."""
        return [
            rr.address
            for rr in self.answers
            if rr.rtype in (RRType.A, RRType.AAAA)
        ]

    @property
    def is_nodata(self) -> bool:
        """NOERROR response without answer records ("NOERROR no data")."""
        return self.is_response and self.rcode == Rcode.NOERROR and not self.answers

    def with_id(self, message_id: int) -> "DnsMessage":
        """Copy of the message with a new transaction id."""
        return replace(self, message_id=message_id)
