"""Seeded, deterministic fault injection.

The fault plane sits between the measurement code and the simulated
infrastructure: a :class:`FaultPlan` (derived from a named
:class:`FaultProfile` plus a seed) decides per *event content* whether a
DNS query is dropped / SERVFAILs / is refused / truncated / delayed,
whether a relay connection attempt fails transiently, whether an Atlas
probe goes dark, which shard workers crash or hang, and whether a
persistence write fails (the storage plane in
:mod:`repro.faults.storage`).  Off by default — a ``None`` plan injects
nothing and costs nothing.

See DESIGN.md §7 for the determinism argument and the recovery layer
built on top (scanner retry/backoff, campaign checkpoint/resume, shard
crash recovery), and §12 for the host failure model the storage plane
drills.
"""

from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    WAIT_QUANTUM,
    fault_key,
    quantize_wait,
)
from repro.faults.profiles import PROFILES, FaultProfile, profile_named
from repro.faults.storage import (
    InjectedStorageFault,
    StorageFaultKind,
    StorageGate,
    atomic_write_json,
)

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultProfile",
    "InjectedStorageFault",
    "PROFILES",
    "StorageFaultKind",
    "StorageGate",
    "WAIT_QUANTUM",
    "atomic_write_json",
    "fault_key",
    "profile_named",
    "quantize_wait",
]
