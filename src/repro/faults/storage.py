"""The storage fault plane: content-keyed persistence failures.

PR 4's packet plane made the *network* boundary deterministically
unreliable; this module does the same for the *host* storage boundary
the always-on daemon leans on — the three persistence surfaces
(:mod:`repro.scan.checkpoint`, the SnapshotStore in
:mod:`repro.scan.incremental`, the EventLog in
:mod:`repro.monitor.events`) all write through one gate with the same
three properties the packet plane has:

* **Order independence.**  Whether one persistence attempt fails is a
  pure function of ``(surface, item, attempt)`` hashed against the
  seed — never of when it happens, which worker count the campaign runs
  at, or what was written before.
* **Process independence.**  Item keys go through ``zlib.crc32`` (via
  :func:`~repro.faults.plan.fault_key`), so a killed-and-resumed
  campaign replays the same storage weather.
* **Retryability.**  The attempt number is part of the key: a retried
  snapshot save gets a fresh draw, so degraded modes recover instead of
  looping on a deterministic brick wall.

Accounting contract: every injected failure increments
``faults.storage.injected`` exactly once (here, at the raise site), and
the caller that handles it increments exactly one of
``faults.storage.absorbed`` (a retry of the same item later succeeded)
or ``faults.storage.surfaced`` (the caller gave up and degraded) — so
``injected == absorbed + surfaced`` holds at the end of any campaign.

The module also owns :func:`atomic_write_json`, the one shared
durable-write helper (temp file → flush → ``os.fsync`` → ``os.replace``)
both checkpointers use; the fault kinds are expressed as exits from its
real write sequence, and the temp file is unlinked on *every* failure
path — injected or real — so no fault can leak a ``.tmp`` file.
"""

from __future__ import annotations

import errno
import json
import os
from pathlib import Path

from repro.faults.plan import fault_key
from repro.faults.profiles import FaultProfile

_M64 = (1 << 64) - 1
_SCALE = 1 << 64

#: The storage channel's salt (decorrelated from the packet channels).
_SALT_STORAGE = 0x6A09E667F3BCC909


class StorageFaultKind:
    """Integer codes for storage fault outcomes (0 = write succeeds).

    Mirrors :class:`~repro.faults.plan.FaultKind`'s plain-int style.
    The kinds map onto exits from the durable write sequence:
    ``WRITE_ERROR`` fails before any byte lands (ENOSPC);
    ``SHORT_WRITE`` lands a prefix then fails (ENOSPC mid-write);
    ``FSYNC_FAIL`` writes fully but the flush to stable storage is
    refused (EIO); ``TORN_RENAME`` syncs the temp file but the rename
    into place never happens — the crash window ``os.replace`` exists
    to make safe.
    """

    OK = 0
    WRITE_ERROR = 1
    SHORT_WRITE = 2
    FSYNC_FAIL = 3
    TORN_RENAME = 4

    NAMES = ("ok", "write_error", "short_write", "fsync_fail", "torn_rename")


#: errno per injected kind (index by StorageFaultKind).
_ERRNOS = (0, errno.ENOSPC, errno.ENOSPC, errno.EIO, errno.EIO)


class InjectedStorageFault(OSError):
    """An injected persistence failure.

    Subclasses :class:`OSError` — not the repro error hierarchy — so it
    flows through exactly the handling a real disk error would hit; the
    degraded-mode paths treat both identically and only the accounting
    distinguishes them.
    """

    def __init__(self, kind: int, surface: str, item: str) -> None:
        super().__init__(
            _ERRNOS[kind],
            f"injected storage fault {StorageFaultKind.NAMES[kind]} "
            f"({surface}:{item})",
        )
        self.kind = kind
        self.surface = surface
        self.item = item


def _mix(x: int) -> int:
    """splitmix64 finalizer (the packet plane's, kept in lockstep)."""
    x &= _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return (x ^ (x >> 31)) & _M64


class StorageGate:
    """Seeded, deterministic storage fault decisions for one campaign.

    Built by :class:`~repro.faults.plan.FaultPlan` from the profile's
    ``storage_*`` rates; immutable and safe to consult from any process.
    """

    __slots__ = ("_base", "_thresholds", "active")

    #: Key-component multipliers (the plan's, kept in lockstep).
    _MULT_A = 0xD1342543DE82EF95
    _MULT_C = 0x2545F4914F6CDD1D

    def __init__(self, profile: FaultProfile, seed: int = 0) -> None:
        cumulative = 0.0
        thresholds = []
        for rate in profile.storage_rates():
            cumulative += rate
            thresholds.append(min(_SCALE, int(cumulative * _SCALE)))
        #: Cumulative u64 thresholds in StorageFaultKind order.
        self._thresholds = tuple(thresholds)
        self._base = _mix(int(seed) ^ _SALT_STORAGE)
        #: Fast activity flag: inactive gates cost one attribute read.
        self.active = thresholds[-1] > 0

    def outcome(self, surface: str, item: str, attempt: int) -> int:
        """The :class:`StorageFaultKind` for one persistence attempt.

        ``surface`` names the persistence surface (``"checkpoint"``,
        ``"snapshot"``, ``"eventlog"``), ``item`` the logical thing
        being written (a month, a domain round, a canonical record) —
        together they key the draw, so the decision is identical at any
        worker count and across kill-and-resume.
        """
        h = _mix(
            self._base
            + fault_key(f"{surface}:{item}") * self._MULT_A
            + attempt * self._MULT_C
        )
        t = self._thresholds
        if h >= t[3]:
            return 0
        if h < t[0]:
            return 1
        if h < t[1]:
            return 2
        if h < t[2]:
            return 3
        return 4


def count_injected(registry, surface: str, kind: int) -> None:
    """Bump the injected-fault counter for one raise (no-op when off)."""
    if registry is not None and registry.enabled:
        registry.counter(
            "faults.storage.injected",
            surface=surface,
            kind=StorageFaultKind.NAMES[kind],
        ).inc()


def count_handled(registry, surface: str, absorbed: int, surfaced: int) -> None:
    """Settle a caller's handling of injected failures.

    ``absorbed`` failures were healed by a later retry of the same item;
    ``surfaced`` ones made the caller give up and degrade.  Every
    injected raise must land in exactly one of the two buckets.
    """
    if registry is None or not registry.enabled:
        return
    if absorbed:
        registry.counter("faults.storage.absorbed", surface=surface).inc(absorbed)
    if surfaced:
        registry.counter("faults.storage.surfaced", surface=surface).inc(surfaced)


def atomic_write_json(
    path: str | Path,
    document: dict,
    *,
    gate: StorageGate | None = None,
    surface: str = "",
    item: str = "",
    attempt: int = 0,
    registry=None,
) -> None:
    """Durably and atomically persist one JSON document.

    The full sequence — temp file in the same directory, flush,
    ``os.fsync`` (rename alone does not survive power loss), then
    ``os.replace`` over the destination — shared by the campaign
    checkpointer and the snapshot store.  With an active ``gate``, the
    write draws one storage fault outcome and raises the corresponding
    :class:`InjectedStorageFault` from the matching point in the
    sequence.  The temp file never outlives a failure, injected or
    real: every fault leaves either the previous file or nothing.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    kind = StorageFaultKind.OK
    if gate is not None and gate.active:
        kind = gate.outcome(surface, item, attempt)

    def injected() -> InjectedStorageFault:
        count_injected(registry, surface, kind)
        return InjectedStorageFault(kind, surface, item)

    if kind == StorageFaultKind.WRITE_ERROR:
        raise injected()
    tmp = path.with_suffix(path.suffix + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            text = json.dumps(document, separators=(",", ":"))
            if kind == StorageFaultKind.SHORT_WRITE:
                handle.write(text[: max(1, len(text) // 2)])
                handle.flush()
                raise injected()
            handle.write(text)
            handle.flush()
            if kind == StorageFaultKind.FSYNC_FAIL:
                raise injected()
            os.fsync(handle.fileno())
        if kind == StorageFaultKind.TORN_RENAME:
            raise injected()
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


__all__ = [
    "InjectedStorageFault",
    "StorageFaultKind",
    "StorageGate",
    "atomic_write_json",
    "count_handled",
    "count_injected",
]
