"""The deterministic fault plan: content-keyed failure decisions.

A :class:`FaultPlan` is a pure function family derived from
``(fault profile, seed)``.  Every decision — does this query get
dropped?  how long is this latency spike?  how much jitter on this
backoff? — is computed by mixing the *content* of the event (domain,
subnet value, attempt number, probe id...) with the seed through a
splitmix64-style integer hash.  Three properties fall out of that, and
the whole robustness layer leans on them:

* **Order independence.**  A decision never depends on when the query
  is sent, which worker sends it, or what was sent before it.  Shard
  workers and the sequential scanner therefore inject *exactly* the
  same faults for the same query set, which is what keeps the
  workers-1/2/4 merge bit-identical under any profile.
* **Process independence.**  The hash uses ``zlib.crc32`` for strings —
  never Python's randomized ``hash()`` — so a killed-and-resumed
  campaign (a fresh interpreter) replays the same faults.
* **Retryability.**  The attempt number is part of the key, so a
  retried query gets a fresh draw: transient faults are transient.

All injected waits (backoff delays, latency spikes) are quantized to
multiples of 2\\ :sup:`-10` seconds.  Dyadic rationals of that size sum
*exactly* in double precision, making the addition associative — shard
workers can each sum their own waits and the parent can sum the partial
sums, landing on the very float the sequential scan computes.
"""

from __future__ import annotations

import zlib

from repro.faults.profiles import FaultProfile, PROFILES, profile_named

_M64 = (1 << 64) - 1
_SCALE = 1 << 64

#: Channel salts: independent decision streams derived from one seed.
_SALT_QUERY = 0x51A7E6A1D5B6A4F1
_SALT_JITTER = 0x9B97A3D36E2F7C2B
_SALT_LATENCY = 0x3C6EF372FE94F82B
_SALT_CONNECT = 0xB7E151628AED2A6B
_SALT_PROBE = 0x607C8D61F2D1E3A9

#: Distinct odd multipliers decorrelate the key components.
_MULT_A = 0xD1342543DE82EF95
_MULT_B = 0xDB4F0B9175AE2165
_MULT_C = 0x2545F4914F6CDD1D

#: Injected waits are multiples of this (2**-10 s): dyadic, so sums are
#: exact and associative across shard partitions.
WAIT_QUANTUM = 0.0009765625

#: Public aliases for the batch-replay scan kernel, which inlines the
#: attempt-0 query draw (one splitmix64 finalize per probe) against the
#: channel base from :meth:`FaultPlan.query_channel`.  Any change to the
#: hash here must keep these — and the kernel's inline copy — in lockstep
#: with :func:`_mix` / :meth:`FaultPlan.query_outcome`.
MASK64 = _M64
QUERY_VALUE_MULT = _MULT_B
MIX_MULT_A = 0xBF58476D1CE4E5B9
MIX_MULT_B = 0x94D049BB133111EB


class FaultKind:
    """Integer codes for DNS-boundary fault outcomes (0 = no fault).

    Plain ints, not an enum: the scan kernel compares these per query.
    ``LATENCY`` is special — the response still arrives (after a spike),
    every other kind loses the attempt and triggers a retry.
    """

    OK = 0
    DROP = 1
    SERVFAIL = 2
    REFUSED = 3
    TRUNCATED = 4
    LATENCY = 5

    NAMES = ("ok", "drop", "servfail", "refused", "truncated", "latency")


def _mix(x: int) -> int:
    """splitmix64 finalizer: avalanche one 64-bit value."""
    x &= _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return (x ^ (x >> 31)) & _M64


def fault_key(text: str) -> int:
    """A process-stable integer key for a string (domain, client key).

    crc32, not ``hash()``: Python string hashing is randomized per
    process, and fault decisions must survive kill-and-resume.
    """
    return zlib.crc32(text.encode("utf-8"))


def quantize_wait(seconds: float) -> float:
    """Round a wait down to the nearest dyadic quantum (2**-10 s)."""
    if seconds <= 0.0:
        return 0.0
    return int(seconds * 1024.0) * WAIT_QUANTUM


class FaultPlan:
    """Seeded, deterministic fault decisions for one world.

    Construct one per campaign from ``(profile, seed)`` — typically the
    world seed, so re-running the same world replays the same faults —
    and share it between the scanner settings and the relay service.
    The plan is immutable and safe to consult from forked workers.
    """

    def __init__(self, profile: FaultProfile | str, seed: int = 0) -> None:
        if isinstance(profile, str):
            profile = profile_named(profile)
        self.profile = profile
        self.seed = int(seed)
        cumulative = 0.0
        thresholds = []
        for rate in profile.dns_rates():
            cumulative += rate
            thresholds.append(min(_SCALE, int(cumulative * _SCALE)))
        #: Cumulative u64 thresholds in FaultKind order (DROP..LATENCY).
        self._thresholds = tuple(thresholds)
        #: Channel bases: the seed folded with each channel's salt once.
        self._query_base = _mix(self.seed ^ _SALT_QUERY)
        self._jitter_base = _mix(self.seed ^ _SALT_JITTER)
        self._latency_base = _mix(self.seed ^ _SALT_LATENCY)
        self._connect_base = _mix(self.seed ^ _SALT_CONNECT)
        self._probe_base = _mix(self.seed ^ _SALT_PROBE)
        self._connect_threshold = int(profile.connect_failure * _SCALE)
        self._probe_threshold = int(profile.probe_loss * _SCALE)
        #: Fast activity gates: hot paths skip the fault machinery
        #: entirely (one attribute read) when a boundary injects nothing.
        self.dns_active = thresholds[-1] > 0
        self.connect_active = self._connect_threshold > 0
        self.probe_active = self._probe_threshold > 0
        #: The storage boundary's gate (persistence surfaces draw their
        #: failures here).  Imported lazily: storage.py imports this
        #: module for the shared hash primitives.
        from repro.faults.storage import StorageGate

        self.storage = StorageGate(profile, self.seed)

    def __repr__(self) -> str:
        return f"FaultPlan(profile={self.profile.name!r}, seed={self.seed})"

    # -- DNS boundary ---------------------------------------------------

    def query_outcome(self, domain_key: int, value: int, attempt: int) -> int:
        """The :class:`FaultKind` for one query attempt (0 = delivered).

        Keyed purely by content — (domain, subnet value, attempt) — so
        the decision is identical in the sequential scanner, any shard
        worker, and a resumed campaign.
        """
        h = _mix(
            self._query_base
            + domain_key * _MULT_A
            + value * _MULT_B
            + attempt * _MULT_C
        )
        t = self._thresholds
        if h >= t[4]:
            return 0
        if h < t[0]:
            return 1
        if h < t[1]:
            return 2
        if h < t[2]:
            return 3
        if h < t[3]:
            return 4
        return 5

    def query_channel(self, domain_key: int) -> tuple[int, tuple[int, ...]]:
        """The per-domain draw channel: ``(hash base, thresholds)``.

        The batch-replay kernel folds the domain key in once and then
        performs the attempt-0 draw per probe as
        ``_mix(base + value * QUERY_VALUE_MULT)`` inline; a hash at or
        above ``thresholds[-1]`` means delivered (the overwhelmingly
        common case), anything below re-enters :meth:`query_outcome` for
        the exact ladder decode.
        """
        return (self._query_base + domain_key * _MULT_A) & _M64, self._thresholds

    def latency_wait(self, domain_key: int, value: int, attempt: int) -> float:
        """The (quantized) size of an injected latency spike, seconds."""
        unit = self._unit(self._latency_base, domain_key, value, attempt)
        return quantize_wait(self.profile.latency_seconds * (0.5 + unit))

    def backoff_wait(
        self,
        base: float,
        factor: float,
        jitter: float,
        domain_key: int,
        value: int,
        attempt: int,
    ) -> float:
        """The (quantized) delay before retry number ``attempt``.

        Exponential in the attempt number, multiplied by a deterministic
        jitter factor in ``[1 - jitter, 1 + jitter)``.
        """
        delay = base * factor ** (attempt - 1)
        if jitter:
            unit = self._unit(self._jitter_base, domain_key, value, attempt)
            delay *= (1.0 - jitter) + 2.0 * jitter * unit
        return quantize_wait(delay)

    # -- relay / atlas boundaries --------------------------------------

    def connect_fails(self, client_key: int, sequence: int) -> bool:
        """Whether one relay connection attempt fails transiently.

        ``sequence`` is the client's per-key attempt ordinal, so retries
        re-draw and a persistent client eventually connects.
        """
        h = _mix(self._connect_base + client_key * _MULT_A + sequence * _MULT_C)
        return h < self._connect_threshold

    def probe_lost(self, measurement_key: int, probe_id: int, attempt: int) -> bool:
        """Whether one Atlas probe's attempt at a measurement is lost."""
        h = _mix(
            self._probe_base
            + measurement_key * _MULT_A
            + probe_id * _MULT_B
            + attempt * _MULT_C
        )
        return h < self._probe_threshold

    # -- shard crash drill ---------------------------------------------

    def crash_shard(self, shard_index: int, run_attempt: int) -> bool:
        """Whether the worker running this shard should die (drill).

        Only fires while ``run_attempt`` is below the profile's
        ``crash_attempts``, so pool recovery always terminates.
        """
        profile = self.profile
        return (
            run_attempt < profile.crash_attempts
            and shard_index in profile.crash_shards
        )

    def hang_shard(self, shard_index: int, run_attempt: int) -> bool:
        """Whether this shard's worker should stop making progress (drill).

        The hang drill models a wedged — not dead — worker: it keeps
        the process alive but silent, so only the parent's heartbeat
        watchdog can notice.  Like the crash drill it keys on the
        re-run attempt, so watchdog recovery always terminates.
        """
        profile = self.profile
        return (
            run_attempt < profile.hang_attempts
            and shard_index in profile.hang_shards
        )

    # -- helpers --------------------------------------------------------

    def _unit(self, base: int, a: int, b: int, c: int) -> float:
        """A deterministic uniform draw in [0, 1)."""
        return _mix(base + a * _MULT_A + b * _MULT_B + c * _MULT_C) / _SCALE


__all__ = [
    "FaultKind",
    "FaultPlan",
    "MASK64",
    "MIX_MULT_A",
    "MIX_MULT_B",
    "PROFILES",
    "QUERY_VALUE_MULT",
    "WAIT_QUANTUM",
    "fault_key",
    "quantize_wait",
]
