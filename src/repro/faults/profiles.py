"""Named fault profiles: how unreliable the simulated network is.

A :class:`FaultProfile` is pure configuration — per-event probabilities
plus a couple of shape parameters — with no randomness of its own.  All
draws happen in :class:`~repro.faults.plan.FaultPlan`, keyed by query
content, so the same (profile, seed) pair always injects exactly the
same faults no matter how the scan is executed.

Three profiles ship with the library:

* ``none`` — every probability zero.  Attaching it exercises the fault
  hooks (the bench harness gates their overhead) without injecting
  anything.
* ``lossy`` — mild packet loss and resolver flakiness: the weather on a
  normal measurement day.
* ``hostile`` — heavy loss, refusals and latency spikes, plus a shard
  worker that crashes on its first attempt, so every recovery path runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultConfigError

#: The per-query probability fields, in the order the cumulative
#: thresholds are laid out (must match the FaultKind numbering).
_DNS_FIELDS = ("drop", "servfail", "refused", "truncated", "latency")

#: The per-persistence-attempt probability fields, in the order the
#: storage gate's cumulative thresholds are laid out (must match the
#: StorageFaultKind numbering).
_STORAGE_FIELDS = (
    "storage_error",
    "storage_short_write",
    "storage_fsync",
    "storage_torn_rename",
)


@dataclass(frozen=True, slots=True)
class FaultProfile:
    """Per-boundary fault rates for one named reliability regime."""

    name: str
    #: DNS-boundary probabilities (independent per query attempt; at most
    #: one fault kind fires per attempt — they partition the unit range).
    drop: float = 0.0
    servfail: float = 0.0
    refused: float = 0.0
    truncated: float = 0.0
    latency: float = 0.0
    #: Mean-ish size of an injected latency spike (the plan draws a
    #: deterministic value in [0.5, 1.5) times this).
    latency_seconds: float = 2.0
    #: Probability that one relay connection attempt fails transiently.
    connect_failure: float = 0.0
    #: Probability that one Atlas probe's measurement attempt is lost.
    probe_loss: float = 0.0
    #: Shard indices whose worker process dies mid-task (crash-recovery
    #: drill).  Crashes stop once a shard has been re-run
    #: ``crash_attempts`` times, so recovery terminates by construction.
    crash_shards: tuple[int, ...] = ()
    crash_attempts: int = 1
    #: Storage-boundary probabilities (independent per persistence
    #: attempt; at most one kind fires — they partition the unit range).
    #: ``storage_error`` is a write rejected outright (ENOSPC);
    #: ``storage_short_write`` a write that lands only partially before
    #: failing; ``storage_fsync`` an fsync refused after a full write
    #: (EIO); ``storage_torn_rename`` a durable temp file whose rename
    #: into place never happens (the crash-window model).
    storage_error: float = 0.0
    storage_short_write: float = 0.0
    storage_fsync: float = 0.0
    storage_torn_rename: float = 0.0
    #: Shard indices whose worker stops making progress without dying
    #: (hung-shard drill).  Fires only when the executor runs with a
    #: heartbeat watchdog, and stops after ``hang_attempts`` re-runs, so
    #: recovery terminates by construction — like the crash drill.
    hang_shards: tuple[int, ...] = ()
    hang_attempts: int = 1

    def __post_init__(self) -> None:
        for name in (
            *_DNS_FIELDS,
            "connect_failure",
            "probe_loss",
            *_STORAGE_FIELDS,
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultConfigError(
                    f"{self.name}: {name} must be a probability, got {value}"
                )
        if sum(getattr(self, name) for name in _DNS_FIELDS) > 1.0:
            raise FaultConfigError(
                f"{self.name}: DNS fault probabilities must sum to <= 1"
            )
        if sum(getattr(self, name) for name in _STORAGE_FIELDS) > 1.0:
            raise FaultConfigError(
                f"{self.name}: storage fault probabilities must sum to <= 1"
            )
        if self.latency_seconds < 0:
            raise FaultConfigError(
                f"{self.name}: latency_seconds must be >= 0"
            )
        if self.crash_attempts < 0:
            raise FaultConfigError(
                f"{self.name}: crash_attempts must be >= 0"
            )
        if self.hang_attempts < 0:
            raise FaultConfigError(
                f"{self.name}: hang_attempts must be >= 0"
            )

    def dns_rates(self) -> tuple[float, ...]:
        """The DNS-boundary probabilities in FaultKind order."""
        return tuple(getattr(self, name) for name in _DNS_FIELDS)

    def storage_rates(self) -> tuple[float, ...]:
        """The storage-boundary probabilities in StorageFaultKind order."""
        return tuple(getattr(self, name) for name in _STORAGE_FIELDS)

    @property
    def injects_anything(self) -> bool:
        """Whether any probability (or crash/hang drill) is non-zero."""
        return bool(
            any(self.dns_rates())
            or any(self.storage_rates())
            or self.connect_failure
            or self.probe_loss
            or self.crash_shards
            or self.hang_shards
        )


#: The library's named reliability regimes.
PROFILES: dict[str, FaultProfile] = {
    profile.name: profile
    for profile in (
        FaultProfile(name="none"),
        FaultProfile(
            name="lossy",
            drop=0.05,
            servfail=0.02,
            latency=0.05,
            latency_seconds=2.0,
            connect_failure=0.05,
            probe_loss=0.05,
        ),
        FaultProfile(
            name="hostile",
            drop=0.15,
            servfail=0.06,
            refused=0.04,
            truncated=0.03,
            latency=0.08,
            latency_seconds=5.0,
            connect_failure=0.2,
            probe_loss=0.15,
            crash_shards=(1,),
            storage_error=0.08,
            storage_short_write=0.04,
            storage_fsync=0.04,
            storage_torn_rename=0.04,
            # Two hang attempts on purpose: shard 1's instant crash
            # usually breaks the pool before attempt 0's hang can age
            # past any watchdog deadline, so attempt 1 — a clean re-run
            # with no concurrent crash — is where the watchdog actually
            # catches the hang.  Attempt 2 completes, inside the
            # executor's MAX_POOL_RESPAWNS budget.
            hang_shards=(2,),
            hang_attempts=2,
        ),
    )
}


def profile_named(name: str) -> FaultProfile:
    """Look a profile up by name, with a typed error for unknown names."""
    try:
        return PROFILES[name]
    except KeyError:
        raise FaultConfigError(
            f"unknown fault profile {name!r} (known: {', '.join(sorted(PROFILES))})"
        ) from None
