"""Extended CONNECT requests for MASQUE proxying.

Models the `CONNECT` shapes the relay uses: classic `CONNECT host:port`
for TCP payloads over HTTP/3 (or the HTTP/2-over-TLS-over-TCP fallback).
UDP proxying (RFC 9298 connect-udp) is modelled as a distinct method
that the current relay rejects — matching the paper's note that MASQUE
did not yet proxy UDP at measurement time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import MasqueError


class HttpVersion(enum.Enum):
    """The HTTP version carrying the proxy connection."""

    H3 = "HTTP/3"  # QUIC transport (default path)
    H2 = "HTTP/2"  # TLS 1.3 over TCP (fallback path)


class ConnectMethod(enum.Enum):
    """Proxying method."""

    CONNECT = "CONNECT"
    CONNECT_UDP = "connect-udp"


@dataclass(frozen=True, slots=True)
class ConnectRequest:
    """A proxy CONNECT request for one end-to-end connection."""

    authority: str
    port: int
    method: ConnectMethod = ConnectMethod.CONNECT
    http_version: HttpVersion = HttpVersion.H3

    def __post_init__(self) -> None:
        if not self.authority:
            raise MasqueError("CONNECT authority must be non-empty")
        if not 0 < self.port <= 65535:
            raise MasqueError(f"port {self.port} out of range")
        if self.method == ConnectMethod.CONNECT_UDP and self.http_version == HttpVersion.H2:
            raise MasqueError("connect-udp requires HTTP/3")

    @property
    def target(self) -> str:
        """``host:port`` form of the destination."""
        return f"{self.authority}:{self.port}"


@dataclass(frozen=True, slots=True)
class ConnectResponse:
    """The proxy's answer to a CONNECT request."""

    status: int
    reason: str = ""

    @property
    def ok(self) -> bool:
        """Whether the tunnel was established (2xx)."""
        return 200 <= self.status < 300

    @classmethod
    def established(cls) -> "ConnectResponse":
        """A 200 tunnel-established response."""
        return cls(200, "Connection Established")

    @classmethod
    def rejected(cls, reason: str) -> "ConnectResponse":
        """A 403 rejection (policy, UDP unsupported, ...)."""
        return cls(403, reason)
