"""The two-hop MASQUE tunnel and its visibility split.

A :class:`MasqueTunnel` is assembled from two legs:

* the **ingress leg** (client → ingress relay) knows the client address
  and the egress relay it forwards to, but carries only an opaque,
  end-to-end encrypted stream — the destination is invisible;
* the **egress leg** (ingress → egress relay) knows the ingress address
  and, after the inner CONNECT is decrypted at the egress, the actual
  destination — but the client address is invisible.

The classes enforce this structurally: each leg object only *has* the
fields that layer can observe, so analysis code cannot accidentally leak
the wrong side's knowledge.  ``observable_by(asn)`` implements the
Section 6 adversary: an AS observing both legs can correlate them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MasqueError
from repro.masque.http import ConnectMethod, ConnectRequest, ConnectResponse
from repro.netmodel.addr import IPAddress


@dataclass(frozen=True, slots=True)
class TunnelLeg:
    """One hop of the tunnel: what a passive observer of that hop sees."""

    source: IPAddress
    destination: IPAddress
    source_asn: int
    destination_asn: int
    #: Bytes of (encrypted) payload carried; timing side channels operate
    #: on sizes and timestamps, never on content.
    bytes_carried: int = 0

    def endpoints(self) -> tuple[IPAddress, IPAddress]:
        """(source, destination) address pair."""
        return self.source, self.destination


@dataclass(frozen=True, slots=True)
class MasqueTunnel:
    """An established two-hop tunnel for one end-to-end connection."""

    ingress_leg: TunnelLeg
    egress_leg: TunnelLeg
    #: Destination as known to the egress only.
    destination_authority: str
    destination_port: int
    #: The egress's outbound address for this connection (rotates).
    egress_address: IPAddress
    egress_asn: int
    established_at: float = 0.0

    def __post_init__(self) -> None:
        if self.ingress_leg.destination != self.egress_leg.source:
            raise MasqueError(
                "tunnel legs do not join: ingress leg ends at "
                f"{self.ingress_leg.destination}, egress leg starts at "
                f"{self.egress_leg.source}"
            )

    @property
    def client_address(self) -> IPAddress:
        """The client address — visible on the ingress leg only."""
        return self.ingress_leg.source

    def asns_seeing_client(self) -> set[int]:
        """ASes that observe the client's address (ingress leg ASes)."""
        return {self.ingress_leg.source_asn, self.ingress_leg.destination_asn}

    def asns_seeing_destination(self) -> set[int]:
        """ASes that observe the destination side (egress operator's AS)."""
        return {self.egress_leg.destination_asn, self.egress_asn}

    def correlating_asns(self) -> set[int]:
        """ASes positioned to see both who the user is and what they access.

        Non-empty exactly in the situation the paper flags: the same AS
        (Akamai's AS36183) hosting both ingress and egress relays.
        """
        return self.asns_seeing_client() & self.asns_seeing_destination()


def establish_tunnel(
    client_address: IPAddress,
    client_asn: int,
    ingress_address: IPAddress,
    ingress_asn: int,
    egress_service_address: IPAddress,
    egress_service_asn: int,
    egress_address: IPAddress,
    egress_asn: int,
    request: ConnectRequest,
    established_at: float = 0.0,
) -> tuple[MasqueTunnel | None, ConnectResponse]:
    """Run the CONNECT exchange and assemble the tunnel.

    Returns (tunnel, response); the tunnel is None when the proxy
    rejects the request (currently: any UDP proxying attempt).
    """
    if request.method == ConnectMethod.CONNECT_UDP:
        return None, ConnectResponse.rejected("UDP proxying not supported")
    ingress_leg = TunnelLeg(
        source=client_address,
        destination=ingress_address,
        source_asn=client_asn,
        destination_asn=ingress_asn,
    )
    egress_leg = TunnelLeg(
        source=ingress_address,
        destination=egress_service_address,
        source_asn=ingress_asn,
        destination_asn=egress_service_asn,
    )
    tunnel = MasqueTunnel(
        ingress_leg=ingress_leg,
        egress_leg=egress_leg,
        destination_authority=request.authority,
        destination_port=request.port,
        egress_address=egress_address,
        egress_asn=egress_asn,
        established_at=established_at,
    )
    return tunnel, ConnectResponse.established()
