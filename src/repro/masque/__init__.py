"""MASQUE-style proxying over HTTP/3 (with HTTP/2 fallback).

iCloud Private Relay tunnels client traffic with the IETF MASQUE
approach: the client holds an end-to-end encrypted tunnel to the egress
relay, carried inside a proxy connection through the ingress relay.  The
ingress sees the client address but not the destination; the egress sees
the destination but not the client — the visibility split the paper's
correlation analysis (Section 6) interrogates.

:mod:`repro.masque.http` models the extended CONNECT request/response;
:mod:`repro.masque.proxy` models the two-hop tunnel and enforces the
visibility rules structurally (each relay leg only carries the fields
that layer can see).
"""

from repro.masque.http import ConnectRequest, ConnectResponse, HttpVersion
from repro.masque.proxy import MasqueTunnel, TunnelLeg
from repro.masque.streams import (
    Direction,
    PaddingPolicy,
    StreamState,
    TunnelDataPlane,
    TunnelStream,
)

__all__ = [
    "ConnectRequest",
    "ConnectResponse",
    "HttpVersion",
    "MasqueTunnel",
    "TunnelLeg",
    "Direction",
    "PaddingPolicy",
    "StreamState",
    "TunnelDataPlane",
    "TunnelStream",
]
