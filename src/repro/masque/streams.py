"""The tunnel data plane: streams, byte accounting, padding.

HTTP/3 "can combine multiple connections within a single proxy
connection" (paper §2) — each end-to-end connection rides a stream of
the MASQUE tunnel.  The MASQUE draft the paper cites explicitly lists
traffic analysis as an issue the protocol cannot overcome: observers
see packet *sizes and timing* even though content is encrypted.

:class:`TunnelDataPlane` models exactly that surface: per-stream byte
accounting, and a :class:`PaddingPolicy` that quantises observable
sizes — the standard (partial) mitigation whose effect on size-based
flow fingerprinting is directly testable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import MasqueError


class StreamState(enum.Enum):
    """Lifecycle of a tunnel stream."""

    OPEN = "open"
    CLOSED = "closed"


class Direction(enum.Enum):
    """Data direction relative to the client."""

    UP = "up"  # client -> destination
    DOWN = "down"  # destination -> client


@dataclass(frozen=True, slots=True)
class PaddingPolicy:
    """Quantises observable sizes to multiples of ``block_size``.

    ``block_size=0`` disables padding (sizes leak exactly).
    """

    block_size: int = 0

    def __post_init__(self) -> None:
        if self.block_size < 0:
            raise MasqueError(f"block size must be >= 0, got {self.block_size}")

    def padded(self, size: int) -> int:
        """The on-the-wire size of a ``size``-byte payload."""
        if size < 0:
            raise MasqueError(f"payload size must be >= 0, got {size}")
        if self.block_size == 0 or size == 0:
            return size
        blocks = -(-size // self.block_size)
        return blocks * self.block_size


@dataclass
class TunnelStream:
    """One end-to-end connection multiplexed into the tunnel."""

    stream_id: int
    opened_at: float
    state: StreamState = StreamState.OPEN
    bytes_up: int = 0
    bytes_down: int = 0
    wire_bytes_up: int = 0
    wire_bytes_down: int = 0

    @property
    def total_bytes(self) -> int:
        """Application bytes in both directions."""
        return self.bytes_up + self.bytes_down

    @property
    def total_wire_bytes(self) -> int:
        """Observable (padded) bytes in both directions."""
        return self.wire_bytes_up + self.wire_bytes_down


@dataclass
class TunnelDataPlane:
    """Stream multiplexing and observable-size accounting for a tunnel."""

    padding: PaddingPolicy = field(default_factory=PaddingPolicy)
    streams: dict[int, TunnelStream] = field(default_factory=dict)
    _next_stream_id: int = 0

    def open_stream(self, at_time: float = 0.0) -> TunnelStream:
        """Open a client-initiated bidirectional stream (ids 0,4,8,...)."""
        stream = TunnelStream(self._next_stream_id, at_time)
        self.streams[stream.stream_id] = stream
        self._next_stream_id += 4
        return stream

    def _stream(self, stream_id: int) -> TunnelStream:
        stream = self.streams.get(stream_id)
        if stream is None:
            raise MasqueError(f"unknown stream {stream_id}")
        if stream.state is StreamState.CLOSED:
            raise MasqueError(f"stream {stream_id} is closed")
        return stream

    def send(self, stream_id: int, size: int, direction: Direction) -> int:
        """Carry ``size`` application bytes; returns the observable size."""
        stream = self._stream(stream_id)
        wire = self.padding.padded(size)
        if direction is Direction.UP:
            stream.bytes_up += size
            stream.wire_bytes_up += wire
        else:
            stream.bytes_down += size
            stream.wire_bytes_down += wire
        return wire

    def close_stream(self, stream_id: int) -> TunnelStream:
        """Close a stream; further sends on it fail."""
        stream = self._stream(stream_id)
        stream.state = StreamState.CLOSED
        return stream

    def open_stream_count(self) -> int:
        """Streams currently open (the multiplexing degree)."""
        return sum(
            1 for s in self.streams.values() if s.state is StreamState.OPEN
        )

    def observable_bytes(self) -> int:
        """Total padded bytes an on-path observer counts for the tunnel."""
        return sum(s.total_wire_bytes for s in self.streams.values())

    def application_bytes(self) -> int:
        """Total true application bytes (known only to the endpoints)."""
        return sum(s.total_bytes for s in self.streams.values())

    def padding_overhead(self) -> float:
        """Fraction of observable bytes that are padding."""
        observable = self.observable_bytes()
        if not observable:
            return 0.0
        return (observable - self.application_bytes()) / observable

    def size_fingerprint(self) -> tuple[int, ...]:
        """The per-stream observable-size vector, sorted.

        This is what a size-correlation adversary matches on; padding
        collapses distinct true-size vectors onto the same fingerprint.
        """
        return tuple(
            sorted(s.total_wire_bytes for s in self.streams.values())
        )
