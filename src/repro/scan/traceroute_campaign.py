"""Traceroute campaign: systematic last-hop clustering.

The paper validated the ingress/egress co-location "through traceroute
measurements and found the same last hop address for ingress and egress
addresses".  This module runs traceroutes from the vantage to arbitrary
target sets, clusters targets by their last-hop router interface, and
reports which clusters mix ingress and egress addresses — the
correlation-enabling sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.netmodel.addr import IPAddress
from repro.netmodel.topology import Topology
from repro.netmodel.traceroute import TracerouteResult, traceroute


@dataclass(frozen=True, slots=True)
class LabelledTarget:
    """A traceroute target with its relay role."""

    address: IPAddress
    role: str  # "ingress" | "egress"
    asn: int | None = None


@dataclass
class LastHopCluster:
    """Targets sharing one last-hop interface."""

    last_hop: IPAddress
    asn: int
    targets: list[LabelledTarget] = field(default_factory=list)

    @property
    def roles(self) -> set[str]:
        return {t.role for t in self.targets}

    @property
    def mixes_roles(self) -> bool:
        """Whether this site hosts both ingress and egress addresses."""
        return {"ingress", "egress"} <= self.roles


@dataclass
class TracerouteCampaignResult:
    """All traceroutes of one campaign, clustered by last hop."""

    traces: dict[IPAddress, TracerouteResult] = field(default_factory=dict)
    clusters: list[LastHopCluster] = field(default_factory=list)
    unreachable: list[LabelledTarget] = field(default_factory=list)

    def mixed_clusters(self) -> list[LastHopCluster]:
        """Clusters hosting both relay roles (the Section 6 finding)."""
        return [c for c in self.clusters if c.mixes_roles]

    def shared_last_hop_found(self) -> bool:
        """Whether any site hosts ingress and egress together."""
        return bool(self.mixed_clusters())

    def asns_with_mixed_sites(self) -> set[int]:
        """ASes operating at least one dual-role site."""
        return {c.asn for c in self.mixed_clusters()}


def run_traceroute_campaign(
    topology: Topology,
    vantage_router_id: str,
    targets: list[LabelledTarget],
) -> TracerouteCampaignResult:
    """Trace every target and cluster by last-hop interface."""
    result = TracerouteCampaignResult()
    by_lasthop: dict[IPAddress, LastHopCluster] = {}
    for target in targets:
        try:
            trace = traceroute(topology, vantage_router_id, target.address)
        except TopologyError:
            result.unreachable.append(target)
            continue
        result.traces[target.address] = trace
        hop = trace.last_hop
        cluster = by_lasthop.get(hop.address)
        if cluster is None:
            cluster = LastHopCluster(hop.address, hop.asn)
            by_lasthop[hop.address] = cluster
            result.clusters.append(cluster)
        cluster.targets.append(target)
    return result
