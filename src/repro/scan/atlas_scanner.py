"""Atlas-based ingress measurements.

Covers the three uses the paper makes of RIPE Atlas:

* **validation** of the ECS scan (A queries from all probes, compared
  against the ECS address set — Section 4.1 "ECS Scan Validation");
* **IPv6 enumeration** (AAAA measurements towards the local resolver
  and the authoritative server, across the monthly rounds);
* the **resolver survey** via a whoami-style service, classifying the
  resolver population behind the probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atlas.measurement import DnsMeasurementSpec, MeasurementTarget
from repro.atlas.platform import AtlasPlatform
from repro.dns.rr import RRType
from repro.dns.whoami import WHOAMI_DOMAIN
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.bgp import RoutingTable


@dataclass
class AtlasValidation:
    """Comparison of one Atlas A measurement against an ECS scan."""

    atlas_addresses: set[IPAddress]
    ecs_addresses: set[IPAddress]

    @property
    def atlas_count(self) -> int:
        return len(self.atlas_addresses)

    @property
    def ecs_count(self) -> int:
        return len(self.ecs_addresses)

    @property
    def atlas_only(self) -> set[IPAddress]:
        """Addresses Atlas saw that the ECS scan did not."""
        return self.atlas_addresses - self.ecs_addresses

    @property
    def ecs_only(self) -> set[IPAddress]:
        """Addresses only the ECS scan uncovered."""
        return self.ecs_addresses - self.atlas_addresses

    @property
    def ecs_advantage(self) -> int:
        """How many more addresses the ECS scan found."""
        return self.ecs_count - self.atlas_count


@dataclass
class Ipv6IngressReport:
    """Accumulated AAAA discovery across measurement rounds."""

    addresses: set[IPAddress] = field(default_factory=set)
    rounds: int = 0

    def by_asn(self, routing: RoutingTable) -> dict[int, int]:
        """Distinct v6 ingress addresses per origin AS."""
        out: dict[int, int] = {}
        for address in self.addresses:
            asn = routing.origin_of(address)
            if asn is not None:
                out[asn] = out.get(asn, 0) + 1
        return out


class AtlasIngressScanner:
    """Runs the paper's Atlas measurement set."""

    def __init__(
        self,
        platform: AtlasPlatform,
        routing: RoutingTable,
        ingress_asns: set[int] | None = None,
    ) -> None:
        self.platform = platform
        self.routing = routing
        #: ASes accepted as ingress operators when filtering answers
        #: (learnt from the ECS scans); hijacked or forged answers fall
        #: outside and are dropped from address counts.
        self.ingress_asns = ingress_asns

    def _filter(self, addresses: set[IPAddress]) -> set[IPAddress]:
        if self.ingress_asns is None:
            return addresses
        return {
            a for a in addresses if self.routing.origin_of(a) in self.ingress_asns
        }

    def measure_ingress_v4(self, domain: str) -> set[IPAddress]:
        """One A measurement over all probes via their local resolvers."""
        result = self.platform.run_dns(
            DnsMeasurementSpec(domain, RRType.A, MeasurementTarget.LOCAL_RESOLVER)
        )
        return self._filter(result.distinct_addresses())

    def validate_against_ecs(
        self, domain: str, ecs_addresses: set[IPAddress]
    ) -> AtlasValidation:
        """Run the validation measurement and compare with ECS results."""
        return AtlasValidation(
            atlas_addresses=self.measure_ingress_v4(domain),
            ecs_addresses=set(ecs_addresses),
        )

    def measure_ingress_v6(
        self, domain: str, report: Ipv6IngressReport | None = None
    ) -> Ipv6IngressReport:
        """One AAAA round (local resolver + authoritative), accumulated."""
        report = report or Ipv6IngressReport()
        for target in (
            MeasurementTarget.LOCAL_RESOLVER,
            MeasurementTarget.AUTHORITATIVE,
        ):
            result = self.platform.run_dns(
                DnsMeasurementSpec(domain, RRType.AAAA, target)
            )
            addresses = {
                a for a in result.distinct_addresses() if a.version == 6
            }
            report.addresses.update(self._filter(addresses))
        report.rounds += 1
        return report

    def survey_resolvers(
        self, resolver_blocks: dict[str, Prefix]
    ) -> dict[str, float]:
        """Whoami measurement: share of probes per resolver provider.

        ``resolver_blocks`` maps provider names to their anycast blocks;
        resolver addresses outside every block count as "local".
        """
        result = self.platform.run_dns(
            DnsMeasurementSpec(
                WHOAMI_DOMAIN, RRType.A, MeasurementTarget.LOCAL_RESOLVER
            )
        )
        counts: dict[str, int] = {}
        answered = 0
        for probe_result in result.results:
            if not probe_result.addresses:
                continue
            answered += 1
            address = probe_result.addresses[0]
            provider = "local"
            for name, block in resolver_blocks.items():
                if block.contains_address(address):
                    provider = name
                    break
            counts[provider] = counts.get(provider, 0) + 1
        if not answered:
            return {}
        return {name: count / answered for name, count in counts.items()}

    def public_resolver_share(self, shares: dict[str, float]) -> float:
        """Combined share of probes behind known public resolvers."""
        return sum(v for k, v in shares.items() if k != "local")
