"""Atlas-based ingress measurements.

Covers the three uses the paper makes of RIPE Atlas:

* **validation** of the ECS scan (A queries from all probes, compared
  against the ECS address set — Section 4.1 "ECS Scan Validation");
* **IPv6 enumeration** (AAAA measurements towards the local resolver
  and the authoritative server, across the monthly rounds);
* the **resolver survey** via a whoami-style service, classifying the
  resolver population behind the probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atlas.measurement import (
    DnsMeasurementResult,
    DnsMeasurementSpec,
    MeasurementTarget,
    ProbeDnsResult,
)
from repro.atlas.platform import AtlasPlatform
from repro.dns.rr import RRType
from repro.dns.whoami import WHOAMI_DOMAIN
from repro.faults.plan import FaultPlan, fault_key
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.bgp import RoutingTable
from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass
class AtlasValidation:
    """Comparison of one Atlas A measurement against an ECS scan."""

    atlas_addresses: set[IPAddress]
    ecs_addresses: set[IPAddress]

    @property
    def atlas_count(self) -> int:
        return len(self.atlas_addresses)

    @property
    def ecs_count(self) -> int:
        return len(self.ecs_addresses)

    @property
    def atlas_only(self) -> set[IPAddress]:
        """Addresses Atlas saw that the ECS scan did not."""
        return self.atlas_addresses - self.ecs_addresses

    @property
    def ecs_only(self) -> set[IPAddress]:
        """Addresses only the ECS scan uncovered."""
        return self.ecs_addresses - self.atlas_addresses

    @property
    def ecs_advantage(self) -> int:
        """How many more addresses the ECS scan found."""
        return self.ecs_count - self.atlas_count


@dataclass
class Ipv6IngressReport:
    """Accumulated AAAA discovery across measurement rounds."""

    addresses: set[IPAddress] = field(default_factory=set)
    rounds: int = 0

    def by_asn(self, routing: RoutingTable) -> dict[int, int]:
        """Distinct v6 ingress addresses per origin AS."""
        out: dict[int, int] = {}
        for address in self.addresses:
            asn = routing.origin_of(address)
            if asn is not None:
                out[asn] = out.get(asn, 0) + 1
        return out


class AtlasIngressScanner:
    """Runs the paper's Atlas measurement set."""

    def __init__(
        self,
        platform: AtlasPlatform,
        routing: RoutingTable,
        ingress_asns: set[int] | None = None,
        fault_plan: FaultPlan | None = None,
        max_attempts: int = 3,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.platform = platform
        self.routing = routing
        #: ASes accepted as ingress operators when filtering answers
        #: (learnt from the ECS scans); hijacked or forged answers fall
        #: outside and are dropped from address counts.
        self.ingress_asns = ingress_asns
        #: Deterministic fault plan: individual probes can go dark for a
        #: measurement attempt.  Lost probes are re-measured (a follow-up
        #: measurement pinned to just those probe ids) up to
        #: ``max_attempts`` times; probes dark on every attempt surface
        #: as explicit timeouts — never silently missing from results.
        self.fault_plan = fault_plan
        self.max_attempts = max(1, max_attempts)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    def _run_dns(self, spec: DnsMeasurementSpec) -> DnsMeasurementResult:
        """Run one measurement through the probe-loss fault boundary.

        Without an active plan this is ``platform.run_dns`` verbatim.
        With one, each probe's result is kept or lost by a content-keyed
        draw over (measurement, probe id, attempt); lost probes are
        retried as a pinned follow-up measurement, and still-dark probes
        after the attempt budget are reported as timed out.  The final
        result preserves the original probe order, so downstream
        consumers see the same shape as a clean measurement.
        """
        result = self.platform.run_dns(spec)
        plan = self.fault_plan
        if plan is None or not plan.probe_active:
            return result
        mkey = fault_key(f"{spec.domain}|{spec.target.name}|{spec.rtype.name}")
        lost_fn = plan.probe_lost
        order = [r.probe_id for r in result.results]
        kept: dict[int, ProbeDnsResult] = {}
        lost: list[ProbeDnsResult] = []
        for probe_result in result.results:
            if lost_fn(mkey, probe_result.probe_id, 0):
                lost.append(probe_result)
            else:
                kept[probe_result.probe_id] = probe_result
        registry = self.telemetry.registry
        losses = len(lost)
        retried = 0
        attempt = 1
        while lost and attempt < self.max_attempts:
            retry_spec = DnsMeasurementSpec(
                spec.domain,
                spec.rtype,
                spec.target,
                probe_ids=tuple(r.probe_id for r in lost),
                description=spec.description,
            )
            retried += len(lost)
            retry = self.platform.run_dns(retry_spec)
            lost = []
            for probe_result in retry.results:
                if lost_fn(mkey, probe_result.probe_id, attempt):
                    lost.append(probe_result)
                else:
                    kept[probe_result.probe_id] = probe_result
            losses += len(lost)
            attempt += 1
        # Give-up accounting: probes dark on every attempt are explicit
        # timeouts, so result consumers can see exactly what is missing.
        for probe_result in lost:
            kept[probe_result.probe_id] = ProbeDnsResult(
                probe_id=probe_result.probe_id,
                asn=probe_result.asn,
                country=probe_result.country,
                rcode=None,
                timed_out=True,
            )
        if registry.enabled:
            registry.counter("faults.injected", surface="atlas",
                             kind="probe_loss").inc(losses)
            registry.counter("scan.retries", surface="atlas").inc(retried)
            registry.counter("scan.gaveup", surface="atlas").inc(len(lost))
        return DnsMeasurementResult(
            spec=spec,
            started_at=result.started_at,
            results=[kept[probe_id] for probe_id in order],
        )

    def _filter(self, addresses: set[IPAddress]) -> set[IPAddress]:
        if self.ingress_asns is None:
            return addresses
        return {
            a for a in addresses if self.routing.origin_of(a) in self.ingress_asns
        }

    def measure_ingress_v4(self, domain: str) -> set[IPAddress]:
        """One A measurement over all probes via their local resolvers."""
        result = self._run_dns(
            DnsMeasurementSpec(domain, RRType.A, MeasurementTarget.LOCAL_RESOLVER)
        )
        return self._filter(result.distinct_addresses())

    def validate_against_ecs(
        self, domain: str, ecs_addresses: set[IPAddress]
    ) -> AtlasValidation:
        """Run the validation measurement and compare with ECS results."""
        return AtlasValidation(
            atlas_addresses=self.measure_ingress_v4(domain),
            ecs_addresses=set(ecs_addresses),
        )

    def measure_ingress_v6(
        self, domain: str, report: Ipv6IngressReport | None = None
    ) -> Ipv6IngressReport:
        """One AAAA round (local resolver + authoritative), accumulated."""
        report = report or Ipv6IngressReport()
        for target in (
            MeasurementTarget.LOCAL_RESOLVER,
            MeasurementTarget.AUTHORITATIVE,
        ):
            result = self._run_dns(
                DnsMeasurementSpec(domain, RRType.AAAA, target)
            )
            addresses = {
                a for a in result.distinct_addresses() if a.version == 6
            }
            report.addresses.update(self._filter(addresses))
        report.rounds += 1
        return report

    def survey_resolvers(
        self, resolver_blocks: dict[str, Prefix]
    ) -> dict[str, float]:
        """Whoami measurement: share of probes per resolver provider.

        ``resolver_blocks`` maps provider names to their anycast blocks;
        resolver addresses outside every block count as "local".
        """
        result = self._run_dns(
            DnsMeasurementSpec(
                WHOAMI_DOMAIN, RRType.A, MeasurementTarget.LOCAL_RESOLVER
            )
        )
        counts: dict[str, int] = {}
        answered = 0
        for probe_result in result.results:
            if not probe_result.addresses:
                continue
            answered += 1
            address = probe_result.addresses[0]
            provider = "local"
            for name, block in resolver_blocks.items():
                if block.contains_address(address):
                    provider = name
                    break
            counts[provider] = counts.get(provider, 0) + 1
        if not answered:
            return {}
        return {name: count / answered for name, count in counts.items()}

    def public_resolver_share(self, shares: dict[str, float]) -> float:
        """Combined share of probes behind known public resolvers."""
        return sum(v for k, v in shares.items() if k != "local")
