"""QUIC probing of ingress relays (Section 3).

Two probe styles, mirroring the tools the paper used:

* a **QScanner-style handshake**: a well-formed QUICv1 Initial without
  relay credentials.  Ingress nodes drop it silently — the probe times
  out with neither an Initial nor an error in response;
* a **ZMap-style version probe**: an Initial with a reserved greasing
  version, which elicits a version negotiation listing the supported
  versions (QUICv1 and drafts 29–27).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.quic.packet import InitialPacket, VersionNegotiationPacket, decode_packet
from repro.quic.versions import QUIC_V1, version_name
from repro.netmodel.addr import IPAddress
from repro.relay.service import PrivateRelayService

#: The reserved version ZMap uses to force negotiation.
GREASE_VERSION = 0x1A2A3A4A


@dataclass
class QuicProbeReport:
    """Aggregated results of probing a set of addresses."""

    probed: int = 0
    handshake_timeouts: int = 0
    handshake_responses: int = 0
    version_negotiations: int = 0
    unreachable: int = 0
    #: Distinct version lists observed (as tuples of names).
    version_sets: dict[tuple[str, ...], int] = field(default_factory=dict)

    @property
    def all_handshakes_timed_out(self) -> bool:
        """The paper's finding: no ingress answers a foreign handshake."""
        return self.handshake_responses == 0 and self.probed > 0

    def dominant_versions(self) -> tuple[str, ...]:
        """The most common advertised version list."""
        if not self.version_sets:
            return ()
        return max(self.version_sets.items(), key=lambda kv: kv[1])[0]


class QuicScanner:
    """Probes relay ingress addresses at the QUIC layer."""

    def __init__(self, service: PrivateRelayService) -> None:
        self.service = service

    def _send(self, address: IPAddress, packet: InitialPacket) -> bytes | None:
        endpoint = self.service.quic_endpoint_for(address)
        if endpoint is None:
            return None
        return endpoint.handle_datagram(packet.to_wire())

    def probe_handshake(self, address: IPAddress) -> bool:
        """QScanner-style handshake; returns whether anything came back."""
        packet = InitialPacket(
            version=QUIC_V1,
            destination_cid=b"\x01" * 8,
            source_cid=b"\x02" * 8,
            payload=b"client-hello",
        )
        return self._send(address, packet) is not None

    def probe_versions(self, address: IPAddress) -> tuple[str, ...] | None:
        """ZMap-style version probe; returns advertised version names."""
        packet = InitialPacket(
            version=GREASE_VERSION,
            destination_cid=b"\x03" * 8,
            source_cid=b"\x04" * 8,
        )
        wire = self._send(address, packet)
        if wire is None:
            return None
        response = decode_packet(wire)
        if not isinstance(response, VersionNegotiationPacket):
            return None
        return tuple(version_name(v) for v in response.supported_versions)

    def scan(self, addresses: list[IPAddress]) -> QuicProbeReport:
        """Run both probes against every address."""
        report = QuicProbeReport()
        for address in addresses:
            report.probed += 1
            if self.service.quic_endpoint_for(address) is None:
                report.unreachable += 1
                continue
            if self.probe_handshake(address):
                report.handshake_responses += 1
            else:
                report.handshake_timeouts += 1
            versions = self.probe_versions(address)
            if versions is not None:
                report.version_negotiations += 1
                report.version_sets[versions] = (
                    report.version_sets.get(versions, 0) + 1
                )
        return report
