"""Campaign checkpoint/resume: atomic per-month result persistence.

After each completed month, :class:`~repro.scan.campaign.ScanCampaign`
can write one JSON checkpoint file capturing everything a fresh process
needs to continue the campaign as if it had never died:

* both scan results of the month (responses in the same columnar spirit
  as the shard IPC encoding: rows of integers plus a distinct-answer
  table, so checkpoints stay proportional to distinct answers);
* the simulated clock position after the month;
* the authoritative server's cumulative query statistics;
* the zone's rotation-counter state — the one scan-visible piece of
  world state that is not derivable from the results.

Writes are atomic (temp file + ``os.replace``), so a kill mid-write
leaves either the previous checkpoint or none — never a torn file.  A
checkpoint embeds a **settings fingerprint**; resuming against different
scan settings raises :class:`~repro.errors.CheckpointError` instead of
silently splicing incompatible months together.  Settings that cannot
change results (worker count, fast path) are deliberately excluded from
the fingerprint: a campaign killed under ``--workers 4`` may be resumed
under ``--workers 1`` and still produce bit-identical output.
"""

from __future__ import annotations

import json
import sys
import zlib
from pathlib import Path

from repro.errors import CheckpointError
from repro.faults.storage import atomic_write_json
from repro.netmodel.addr import IPAddress, Prefix
from repro.scan.ecs_scanner import EcsResponse, EcsScanResult

#: Bump when the checkpoint layout changes; mismatched files are treated
#: as absent (the month is simply re-scanned), not as errors.
CHECKPOINT_VERSION = 1


def payload_crc(document: dict) -> int:
    """The integrity checksum of one persisted document.

    crc32 over the canonical JSON of everything but the ``crc`` field
    itself — canonicalised independently of the on-disk byte layout, so
    the checksum survives any future formatting change.
    """
    body = {key: value for key, value in document.items() if key != "crc"}
    return zlib.crc32(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


def quarantine_warning(path: Path, reason: str) -> None:
    """One stderr line for a corrupt persisted file being set aside.

    Deliberately a warning, never a traceback: a torn or bit-flipped
    file on disk is an expected host failure, and the recovery path
    (re-scan / re-seed) is already running by the time this prints.
    """
    print(f"warning: quarantined corrupt state file {path}: {reason}",
          file=sys.stderr)


def _encode_responses(responses: list[EcsResponse]) -> dict:
    """Rows of integers plus a distinct-answer table (identity-deduped).

    The scan kernels hand recurring answers the same tuple object, so
    deduplicating by ``id`` keeps the table proportional to distinct
    answers (unshared tuples still encode correctly, once each).
    """
    table_index: dict[int, int] = {}
    table: list = []
    rows: list = []
    for response in responses:
        addresses = response.addresses
        key = id(addresses)
        ref = table_index.get(key)
        if ref is None:
            ref = len(table)
            table_index[key] = ref
            table.append(
                [
                    [[a.version, a.value] for a in addresses],
                    response.answer_asn,
                ]
            )
        rows.append([response.subnet.value, response.subnet.length, response.scope, ref])
    return {"rows": rows, "table": table}


def _encode_columnar(view) -> dict:
    """Encode a columnar result view without materialising responses.

    Walks the packed chunks directly (the batch-replay kernel's output,
    or the sharded merge's adopted shard columns) and produces output
    byte-identical to :func:`_encode_responses` on the materialised
    list: table refs are assigned in first-use row order, deduplicated
    across chunks by address-tuple identity — the same identity the
    interned chunk tables share.
    """
    length = view.subnet_len
    table_index: dict[int, int] = {}
    table: list = []
    rows: list = []
    append = rows.append
    for values, scopes, refs, chunk_table in view.chunks:
        remap = [-1] * len(chunk_table)
        for value, scope, ref in zip(values, scopes, refs):
            out_ref = remap[ref]
            if out_ref < 0:
                addresses, asn = chunk_table[ref]
                key = id(addresses)
                out_ref = table_index.get(key, -1)
                if out_ref < 0:
                    out_ref = len(table)
                    table_index[key] = out_ref
                    table.append(
                        [[[a.version, a.value] for a in addresses], asn]
                    )
                remap[ref] = out_ref
            append([value, length, scope, out_ref])
    return {"rows": rows, "table": table}


def _decode_responses(data: dict) -> list[EcsResponse]:
    """Re-materialise responses, sharing tuples per table entry so the
    identity-based deduplication in ``EcsScanResult.addresses()`` keeps
    working on restored results."""
    answers = [
        (
            tuple(IPAddress(version, value) for version, value in pairs),
            asn,
        )
        for pairs, asn in data["table"]
    ]
    prefixes: dict[tuple[int, int], Prefix] = {}
    out: list[EcsResponse] = []
    append = out.append
    for value, length, scope, ref in data["rows"]:
        key = (value, length)
        subnet = prefixes.get(key)
        if subnet is None:
            subnet = prefixes[key] = Prefix(4, value, length)
        append(EcsResponse(subnet, scope, *answers[ref]))
    return out


def encode_result(result: EcsScanResult) -> dict:
    """One scan result as a JSON-safe dict.

    Columnar results are encoded straight off their chunks; the classic
    response list never needs to be materialised just to checkpoint.
    """
    view = result.columnar_view()
    responses = (
        _encode_columnar(view)
        if view is not None
        else _encode_responses(result.responses)
    )
    return {
        "domain": result.domain,
        "started_at": result.started_at,
        "finished_at": result.finished_at,
        "queries_sent": result.queries_sent,
        "sparse_queries": result.sparse_queries,
        "sparse_answered": result.sparse_answered,
        "retries": result.retries,
        "fault_wait_seconds": result.fault_wait_seconds,
        "fault_injected": dict(result.fault_injected),
        "gave_up": [[p.value, p.length] for p in result.gave_up],
        "responses": responses,
        "sparse_responses": _encode_responses(result.sparse_responses),
    }


def decode_result(data: dict) -> EcsScanResult:
    """Rebuild a scan result from :func:`encode_result` output."""
    result = EcsScanResult(
        domain=data["domain"],
        started_at=data["started_at"],
        finished_at=data["finished_at"],
        queries_sent=data["queries_sent"],
        sparse_queries=data["sparse_queries"],
        sparse_answered=data["sparse_answered"],
        retries=data["retries"],
        fault_wait_seconds=data["fault_wait_seconds"],
        fault_injected=dict(data["fault_injected"]),
    )
    result.gave_up = [Prefix(4, value, length) for value, length in data["gave_up"]]
    result.responses = _decode_responses(data["responses"])
    result.sparse_responses = _decode_responses(data["sparse_responses"])
    return result


class CampaignCheckpointer:
    """Reads and writes one campaign's per-month checkpoint files.

    ``gate``/``registry`` attach the storage fault plane: with an
    active gate every save draws one deterministic failure decision
    keyed by the month (see :mod:`repro.faults.storage`), surfacing as
    an :class:`OSError` the campaign's degraded mode handles.
    """

    def __init__(
        self,
        directory: str | Path,
        fingerprint: dict,
        *,
        gate=None,
        registry=None,
    ) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.gate = gate
        self.registry = registry

    def path_for(self, year: int, month: int) -> Path:
        """Where one month's checkpoint lives."""
        return self.directory / f"month-{year:04d}-{month:02d}.json"

    def save(self, year: int, month: int, payload: dict, attempt: int = 0) -> Path:
        """Durably and atomically persist one month's checkpoint."""
        path = self.path_for(year, month)
        document = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "year": year,
            "month": month,
            **payload,
        }
        document["crc"] = payload_crc(document)
        atomic_write_json(
            path,
            document,
            gate=self.gate,
            surface="checkpoint",
            item=f"{year:04d}-{month:02d}",
            attempt=attempt,
            registry=self.registry,
        )
        return path

    def load(self, year: int, month: int) -> dict | None:
        """One month's checkpoint, or None when it must be re-scanned.

        Missing, torn, or layout-versioned-away files all read as None
        — the campaign just runs the month.  A *fingerprint* mismatch is
        different: the checkpoint is intact but belongs to a campaign
        with different result-affecting settings, and splicing it in
        would corrupt the output — :class:`CheckpointError`.
        """
        path = self.path_for(year, month)
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            quarantine_warning(path, f"unparseable JSON ({exc})")
            return None
        except OSError:
            return None
        if not isinstance(document, dict):
            quarantine_warning(path, "not a JSON object")
            return None
        if document.get("version") != CHECKPOINT_VERSION:
            return None
        crc = document.get("crc")
        if crc is not None and crc != payload_crc(document):
            quarantine_warning(path, "checksum mismatch (bit flip?)")
            return None
        if document.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {path} was written by a campaign with different "
                "result-affecting settings; refusing to resume from it"
            )
        return document
