"""The monthly scan campaign orchestrator.

Encapsulates the paper's measurement calendar: for each month of the
observation window, run the default-domain (QUIC) ECS scan and — from
February on — the fallback-domain scan; keep the longitudinal archives
up to date; and expose the results in the shape the Table 1/2 analyses
expect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.dns.name import DnsName
from repro.dns.server import AuthoritativeServer, ServerStats
from repro.errors import WorkerCrashed
from repro.faults.storage import InjectedStorageFault, count_handled
from repro.netmodel.bgp import RoutingTable
from repro.relay.service import RELAY_DOMAIN_FALLBACK, RELAY_DOMAIN_QUIC
from repro.scan.checkpoint import CampaignCheckpointer, decode_result, encode_result
from repro.scan.ecs_scanner import EcsScanResult, EcsScanner, EcsScanSettings
from repro.scan.incremental import DeltaRound, DeltaScanEngine, SnapshotStore
from repro.scan.longitudinal import IngressArchive
from repro.simtime import SimClock
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.worldgen.deployment import scan_time


@dataclass(frozen=True, slots=True)
class MonthlyScan:
    """One month's scans."""

    year: int
    month: int
    default: EcsScanResult
    fallback: EcsScanResult | None

    def as_tuple(self) -> tuple[int, int, EcsScanResult, EcsScanResult | None]:
        """The tuple shape ``build_table1`` consumes."""
        return (self.year, self.month, self.default, self.fallback)


@dataclass
class ScanCampaign:
    """Runs the Jan–Apr 2022 campaign against an authoritative server."""

    server: AuthoritativeServer
    routing: RoutingTable
    clock: SimClock
    settings: EcsScanSettings = field(default_factory=EcsScanSettings)
    #: Observability sink, threaded into the scanner (and through it the
    #: sharded executor).  Null by default: recording costs nothing.
    telemetry: Telemetry = field(default=NULL_TELEMETRY, repr=False)
    #: Months without a fallback-domain scan (the paper's January gap).
    skip_fallback_months: frozenset[tuple[int, int]] = frozenset({(2022, 1)})
    months: list[MonthlyScan] = field(default_factory=list)
    default_archive: IngressArchive = field(
        default_factory=lambda: IngressArchive(RELAY_DOMAIN_QUIC)
    )
    fallback_archive: IngressArchive = field(
        default_factory=lambda: IngressArchive(RELAY_DOMAIN_FALLBACK)
    )
    #: Where to write per-month checkpoints (None disables them).
    checkpoint_dir: str | Path | None = None
    #: Restore already-checkpointed months instead of re-scanning them.
    resume: bool = False
    #: Extra fingerprint material from the caller (e.g. the CLI folds in
    #: the world scale and seed), so checkpoints refuse to splice across
    #: different worlds even though the campaign itself never sees them.
    checkpoint_meta: dict | None = None
    #: ``"full"`` — the paper's monthly full-rescan calendar;
    #: ``"delta"`` — continuous monitoring via :meth:`run_continuous`.
    #: The mode is part of the persistence fingerprint: full-campaign
    #: checkpoints and delta snapshots can never splice into each other.
    mode: str = "full"
    #: Where delta snapshots persist (None keeps them in memory only).
    snapshot_dir: str | Path | None = None
    #: Per-round delta query budget (None = unbounded).
    budget: int | None = None
    #: Full re-coverage horizon of the delta refresh wheel, in rounds.
    refresh_rounds: int = 3
    #: Live monitoring plane (``repro.monitor``), both optional and
    #: fanned out to the scanner / sharded executor / delta engine:
    #: a ``StatusBoard`` updated with coarse progress, and an
    #: ``EventLog`` receiving the schema-versioned milestone stream.
    status: object | None = field(default=None, repr=False)
    events: object | None = field(default=None, repr=False)
    #: Graceful-drain hook (``repro.scan.drain.DrainController`` or any
    #: object with a ``requested`` flag): when set, the campaign checks
    #: it at month/round boundaries and stops cleanly — in-flight work
    #: drained, state persisted, ``campaign_interrupted`` emitted.
    drain: object | None = field(default=None, repr=False)
    #: Hung-shard watchdog deadline in wall seconds, threaded into the
    #: sharded executor (None disables the watchdog).
    shard_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("full", "delta"):
            raise ValueError(
                f"unknown campaign mode {self.mode!r}; expected 'full' or 'delta'"
            )

    def _scanner(self) -> EcsScanner:
        """The campaign's scanner, built once and reused across months.

        Reuse keeps the scanner's subnet-intern and routed-span caches
        warm from month to month (the BGP feed is static between scans).
        """
        scanner = self.__dict__.get("_scanner_instance")
        if scanner is None:
            scanner = EcsScanner(
                self.server,
                self.routing,
                self.clock,
                self.settings,
                telemetry=self.telemetry,
            )
            scanner.status = self.status
            self.__dict__["_scanner_instance"] = scanner
        return scanner

    def _emit(self, event: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(event, **fields)

    def _publish(self, **fields) -> None:
        if self.status is not None:
            self.status.publish(**fields)

    def _executor(self):
        """The campaign's scan front-end: the scanner itself with
        ``workers=1``, a (lazily built, month-to-month reused) sharded
        executor wrapping it otherwise.  Both expose the same ``scan()``.
        """
        from repro.scan.sharding import ShardedCampaignExecutor

        if self.settings.workers <= 1 or not ShardedCampaignExecutor.supported():
            return self._scanner()
        executor = self.__dict__.get("_executor_instance")
        if executor is None:
            executor = ShardedCampaignExecutor(
                self._scanner(),
                self.settings.workers,
                heartbeat_deadline=self.shard_deadline,
            )
            executor.status = self.status
            executor.events = self.events
            self.__dict__["_executor_instance"] = executor
        return executor

    def close(self) -> None:
        """Release campaign resources (the shard worker pool, if any)."""
        executor = self.__dict__.pop("_executor_instance", None)
        if executor is not None:
            executor.close()

    def __enter__(self) -> "ScanCampaign":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- checkpoint/resume ----------------------------------------------

    def _storage_gate(self):
        """The fault plan's storage gate (None without an active plan)."""
        plan = self.settings.fault_plan
        return plan.storage if plan is not None else None

    def _checkpointer(self) -> CampaignCheckpointer | None:
        if self.checkpoint_dir is None:
            return None
        checkpointer = self.__dict__.get("_checkpointer_instance")
        if checkpointer is None:
            checkpointer = CampaignCheckpointer(
                self.checkpoint_dir,
                self._fingerprint(),
                gate=self._storage_gate(),
                registry=self.telemetry.registry,
            )
            self.__dict__["_checkpointer_instance"] = checkpointer
        return checkpointer

    def _fingerprint(self) -> dict:
        """Every setting that can change results, and nothing else.

        Worker count and the fast-path switch are excluded on purpose —
        both are verified result-invariant by the equivalence suites, so
        a campaign may be killed under one and resumed under the other.
        """
        settings = self.settings
        plan = settings.fault_plan
        fingerprint = {
            "rate": settings.rate,
            "burst": settings.burst,
            "source_prefix_len": settings.source_prefix_len,
            "respect_scope": settings.respect_scope,
            "prune_unrouted": settings.prune_unrouted,
            "sparse_stride": settings.sparse_stride,
            "campaign_seed": settings.campaign_seed,
            "max_attempts": settings.max_attempts,
            "backoff": [
                settings.backoff_base,
                settings.backoff_factor,
                settings.backoff_jitter,
            ],
            "fault_plan": (
                None if plan is None else [plan.profile.name, plan.seed]
            ),
            "skip_fallback": sorted(map(list, self.skip_fallback_months)),
            "mode": self.mode,
        }
        if self.checkpoint_meta:
            fingerprint.update(self.checkpoint_meta)
        return fingerprint

    def _rotation_hooks(self) -> list:
        """The scanned zones' rotation hooks, deduplicated by identity
        (both relay domains live in one zone sharing one counter set)."""
        hooks: list = []
        seen: set[int] = set()
        for domain in (RELAY_DOMAIN_QUIC, RELAY_DOMAIN_FALLBACK):
            zone = self.server.zone_for(DnsName.parse(domain))
            if zone is None:
                continue
            for hook in zone.shard_hooks():
                if id(hook) not in seen:
                    seen.add(id(hook))
                    hooks.append(hook)
        return hooks

    def _month_payload(self, result: MonthlyScan) -> dict:
        return {
            "clock_now": self.clock.now,
            "default": encode_result(result.default),
            "fallback": (
                None if result.fallback is None else encode_result(result.fallback)
            ),
            "server_stats": {
                name: getattr(self.server.stats, name)
                for name in ServerStats._FIELDS
            },
            "rotation": [hook.state_snapshot() for hook in self._rotation_hooks()],
        }

    def _restore_month(self, year: int, month: int, data: dict) -> MonthlyScan:
        """Splice one checkpointed month in as if it had just been scanned."""
        default = decode_result(data["default"])
        self.default_archive.record(default)
        fallback = None
        if data["fallback"] is not None:
            fallback = decode_result(data["fallback"])
            self.fallback_archive.record(fallback)
        stats = self.server.stats
        for name, value in data["server_stats"].items():
            setattr(stats, name, value)
        for hook, state in zip(self._rotation_hooks(), data["rotation"]):
            hook.restore_state(state)
        if self.clock.now < data["clock_now"]:
            self.clock.advance_to(data["clock_now"])
        registry = self.telemetry.registry
        if registry.enabled:
            registry.counter("campaign.months_restored").inc()
        result = MonthlyScan(year, month, default, fallback)
        self.months.append(result)
        self._publish(phase="restore", year=year, month=month)
        self._emit("month_restored", year=year, month=month)
        return result

    def run_month(self, year: int, month: int) -> MonthlyScan:
        """Run one month's scans (advancing the clock to the scan slot).

        With a checkpoint directory configured, a completed month is
        persisted atomically afterwards; with ``resume`` set, a month
        whose checkpoint already exists is restored instead of scanned.
        """
        checkpointer = self._checkpointer()
        if checkpointer is not None and self.resume:
            data = checkpointer.load(year, month)
            if data is not None:
                return self._restore_month(year, month, data)
        target = scan_time(year, month)
        if self.clock.now < target:
            self.clock.advance_to(target)
        scanner = self._executor()
        self._publish(phase="scan", year=year, month=month)
        self._emit("month_started", year=year, month=month)
        with self.telemetry.tracer.span("campaign.month", year=year, month=month):
            default = scanner.scan(RELAY_DOMAIN_QUIC)
            self.default_archive.record(default)
            fallback = None
            if (year, month) not in self.skip_fallback_months:
                fallback = scanner.scan(RELAY_DOMAIN_FALLBACK)
                self.fallback_archive.record(fallback)
        result = MonthlyScan(year, month, default, fallback)
        self.months.append(result)
        self._emit(
            "month_completed",
            year=year,
            month=month,
            queries=default.queries_sent
            + (0 if fallback is None else fallback.queries_sent),
            fallback=fallback is not None,
        )
        if self.status is not None:
            self.status.add("months_completed")
        if checkpointer is not None:
            try:
                checkpointer.save(year, month, self._month_payload(result))
            except OSError as exc:
                # Degraded mode: the month's results are kept in memory
                # and the campaign continues — a resume after this run
                # re-scans the unpersisted month, bit-identically.
                self._checkpoint_degraded(year, month, exc)
            else:
                self._emit("checkpoint_written", year=year, month=month)
                if self.status is not None:
                    self.status.record_checkpoint(self.clock.now)
        return result

    def _checkpoint_degraded(self, year: int, month: int, exc: OSError) -> None:
        """Account one failed checkpoint write and flag degraded mode."""
        registry = self.telemetry.registry
        if isinstance(exc, InjectedStorageFault):
            # The injected raise was counted at the fault site; a
            # checkpoint gets one attempt, so it surfaces immediately.
            count_handled(registry, "checkpoint", 0, 1)
        if registry.enabled:
            registry.counter(
                "persistence.save_failures", surface="checkpoint"
            ).inc()
        if self.status is not None:
            self.status.publish(checkpoint_degraded=True)
            self.status.add("months_unpersisted")
        self._emit("persistence_degraded", surface="checkpoint", year=year, month=month)

    def _drain_requested(self) -> bool:
        return self.drain is not None and self.drain.requested

    def _interrupt(self, **fields) -> None:
        """Record a graceful drain: persisted state is already on disk."""
        self._publish(phase="interrupted")
        self._emit("campaign_interrupted", mode=self.mode, **fields)

    def run(self, calendar: list[tuple[int, int]]) -> list[MonthlyScan]:
        """Run the whole calendar in order.

        With a :attr:`drain` controller attached, a stop request is
        honoured at month boundaries: the in-flight month completes (and
        checkpoints) as usual, then the campaign returns the months it
        finished instead of starting the next one.
        """
        self._publish(phase="campaign", mode=self.mode)
        self._emit("campaign_started", mode=self.mode, months=len(calendar))
        out: list[MonthlyScan] = []
        for year, month in calendar:
            if self._drain_requested():
                self._interrupt(months=len(out), planned=len(calendar))
                return out
            out.append(self.run_month(year, month))
        self._publish(phase="finished")
        self._emit("campaign_finished", months=len(out))
        return out

    # -- continuous monitoring (mode="delta") ---------------------------

    def _snapshot_store(self) -> SnapshotStore | None:
        if self.snapshot_dir is None:
            return None
        store = self.__dict__.get("_snapshot_store_instance")
        if store is None:
            store = SnapshotStore(
                self.snapshot_dir,
                self._fingerprint(),
                gate=self._storage_gate(),
                registry=self.telemetry.registry,
            )
            self.__dict__["_snapshot_store_instance"] = store
        return store

    def delta_engine(self) -> DeltaScanEngine:
        """The campaign's delta-scan engine (mode ``"delta"`` only)."""
        if self.mode != "delta":
            raise ValueError(
                f"delta engine requires mode='delta' (campaign mode is {self.mode!r})"
            )
        engine = self.__dict__.get("_delta_engine_instance")
        if engine is None:
            engine = DeltaScanEngine(
                self._executor(),
                self._snapshot_store(),
                budget=self.budget,
                refresh_rounds=self.refresh_rounds,
                telemetry=self.telemetry,
            )
            engine.status = self.status
            engine.events = self.events
            self.__dict__["_delta_engine_instance"] = engine
        return engine

    def _archive_for(self, domain: str) -> IngressArchive | None:
        if domain == RELAY_DOMAIN_QUIC:
            return self.default_archive
        if domain == RELAY_DOMAIN_FALLBACK:
            return self.fallback_archive
        return None

    def run_continuous(self, year: int, month: int, rounds: int) -> list[DeltaRound]:
        """Continuous monitoring: seed (or restore) snapshots, then run
        ``rounds`` delta rounds from the given month's scan slot.

        Fresh seed scans and each round's accumulated state are recorded
        into the longitudinal archives, so the continuous mode feeds the
        same growth/churn analyses as the monthly calendar.
        """
        if self.mode != "delta":
            raise ValueError(
                f"run_continuous requires mode='delta' (campaign mode is {self.mode!r})"
            )
        target = scan_time(year, month)
        if self.clock.now < target:
            self.clock.advance_to(target)
        engine = self.delta_engine()
        self._publish(phase="delta_seed", year=year, month=month, mode=self.mode)
        self._emit(
            "campaign_started", mode=self.mode, year=year, month=month, rounds=rounds
        )
        with self.telemetry.tracer.span("campaign.delta_seed", year=year, month=month):
            seeds = engine.ensure_seeded()
        for domain, result in seeds.items():
            archive = self._archive_for(domain)
            if archive is not None and result is not None:
                archive.record(result)
        out: list[DeltaRound] = []
        for _ in range(rounds):
            if self._drain_requested():
                self._interrupt(rounds=len(out), planned=rounds)
                return out
            try:
                with self.telemetry.tracer.span("campaign.delta_round"):
                    delta = engine.run_round()
            except WorkerCrashed:
                # Respawn exhaustion mid-round: the continuous campaign
                # outlives it.  Skip the round, discard whatever partial
                # in-memory state it left, and re-seed from the last
                # persisted snapshots (a fresh seed scan without a
                # store) before the next round.
                self._round_skipped(engine)
                continue
            for domain in engine.domains:
                archive = self._archive_for(domain)
                if archive is not None:
                    archive.record(engine.accumulated(domain))
            out.append(delta)
        self._publish(phase="finished")
        self._emit("campaign_finished", rounds=len(out))
        return out

    def _round_skipped(self, engine: DeltaScanEngine) -> None:
        """Account one abandoned round and restore a consistent engine."""
        registry = self.telemetry.registry
        if registry.enabled:
            registry.counter("campaign.rounds_skipped").inc()
        if self.status is not None:
            self.status.add("rounds_skipped")
            self.status.publish(phase="round_skipped")
        self._emit("round_skipped", reason="worker_crashed")
        # The executor already tore its broken pool down before raising;
        # the next scan submission forks a fresh one.
        engine.reseed_from_store()

    def table1_input(self) -> list[tuple[int, int, EcsScanResult, EcsScanResult | None]]:
        """All months in the shape ``build_table1`` expects."""
        return [m.as_tuple() for m in self.months]

    def latest_default(self) -> EcsScanResult:
        """The most recent default-domain scan."""
        if not self.months:
            raise ValueError("campaign has not run yet")
        return self.months[-1].default

    def ingress_asns(self) -> set[int]:
        """All ASes observed hosting ingress relays across the campaign."""
        asns: set[int] = set()
        for month in self.months:
            asns.update(month.default.addresses_by_asn())
            if month.fallback is not None:
                asns.update(month.fallback.addresses_by_asn())
        return asns
