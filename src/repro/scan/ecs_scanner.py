"""ECS-based ingress enumeration.

Implements the paper's core scan: iterate client subnets over the IPv4
space, attach each as an EDNS Client Subnet option to an A query for a
relay domain, and collect the returned ingress addresses.

The ethics measures from Section 7 are first-class here:

* a strict token-bucket **rate limit** (a full scan takes tens of hours
  of simulated time);
* **routed-space pruning** — address space not visible in the local BGP
  feed is only sparsely sampled;
* **scope pruning** — when the server declares an ECS scope wider than
  /24, no further query is sent inside that scope block.

Both prunings can be disabled for the ablation benchmarks.
"""

from __future__ import annotations

import gc
import time
from array import array
from collections import Counter
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.dns.edns import ClientSubnetOption, EdnsOptions
from repro.dns.message import DnsMessage, Question, Rcode
from repro.dns.name import DnsName
from repro.dns.ratelimit import TokenBucket
from repro.faults.plan import (
    MASK64,
    MIX_MULT_A,
    MIX_MULT_B,
    QUERY_VALUE_MULT,
    FaultKind,
    FaultPlan,
    fault_key,
)
from repro.dns.rr import RRType
from repro.scan.columnar import ColumnarResponses
from repro.dns.server import AuthoritativeServer
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.bgp import RoutingTable
from repro.simtime import SimClock
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.registry import DURATION_BUCKETS, SCOPE_BUCKETS

#: Record types whose rdata is an address (hot-loop constant).
_ADDRESS_RTYPES = (RRType.A, RRType.AAAA)


class EcsResponse(NamedTuple):
    """One answered ECS query.

    A NamedTuple rather than a dataclass: scans append hundreds of
    thousands of these and shard workers ship them across process
    boundaries, and tuple construction/pickling is several times cheaper
    than frozen-dataclass ``__init__``.  Field semantics are unchanged.
    """

    subnet: Prefix
    scope: int
    addresses: tuple[IPAddress, ...]
    answer_asn: int | None

    def covered_slash24s(self) -> int:
        """How many /24 client subnets this answer is valid for."""
        if self.scope >= 24:
            return 1
        return 1 << (24 - self.scope)


@dataclass
class EcsScanSettings:
    """Scanner behaviour knobs."""

    #: Queries per second (the strict rate limit).
    rate: float = 2.2
    burst: float = 10.0
    #: ECS source prefix length sent with every query.
    source_prefix_len: int = 24
    #: Honour server scopes wider than /24 (skip the rest of the block).
    respect_scope: bool = True
    #: Only scan space covered by BGP routes; unrouted space is sampled
    #: once every ``sparse_stride`` /24 blocks.
    prune_unrouted: bool = True
    sparse_stride: int = 4096
    #: Use the server's scope-block answer cache (results are identical
    #: either way; off exercises the reference path).
    fast_path: bool = True
    #: Shard worker processes for campaign scans.  ``1`` runs the
    #: in-process fast path; ``>1`` partitions the routed space into
    #: contiguous shards executed by :mod:`repro.scan.sharding` workers.
    workers: int = 1
    #: Campaign seed: each shard's rotation streams are reseeded from
    #: (campaign seed, shard index), making shard results deterministic.
    campaign_seed: int = 0
    #: Deterministic fault plan (None = a perfectly reliable network).
    #: Decisions are keyed by query content, so any worker count and any
    #: kill-and-resume split replays exactly the same faults.
    fault_plan: FaultPlan | None = None
    #: Query attempts before the scanner gives the block up (the block
    #: is then recorded in ``EcsScanResult.gave_up``, never silently
    #: missing).
    max_attempts: int = 3
    #: Exponential backoff between retries: ``backoff_base *
    #: backoff_factor**(retry-1)`` seconds, jittered by a deterministic
    #: factor in ``[1 - backoff_jitter, 1 + backoff_jitter)``.  The
    #: waits accumulate into ``fault_wait_seconds`` and advance the sim
    #: clock once at scan end (mid-scan advancement would change the
    #: token-bucket refill timeline and break the sharded replay).
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5


@dataclass
class EcsScanResult:
    """The outcome of one full ECS scan of one domain.

    The batch-replay kernel and the sharded merge deliver routed
    answers in columnar form (:class:`~repro.scan.columnar.ColumnarResponses`)
    instead of building the ``responses`` list eagerly.  ``responses``
    stays the public interface: reading it materialises the classic
    ``list[EcsResponse]`` once (the property installed below the class),
    while the aggregate accessors and the telemetry recorder serve
    themselves from the columns without ever materialising.
    """

    domain: str
    started_at: float
    finished_at: float = 0.0
    queries_sent: int = 0
    responses: list[EcsResponse] = field(default_factory=list)
    sparse_queries: int = 0
    #: Sparse probes of unrouted space that came back answered.  Kept
    #: separate from ``responses`` (the routed-scan answer list feeding
    #: the tables) so unrouted hits are visible instead of discarded.
    sparse_answered: int = 0
    sparse_responses: list[EcsResponse] = field(default_factory=list)
    #: Retried query attempts (faulted attempts that were re-sent).
    retries: int = 0
    #: Query subnets abandoned after ``max_attempts`` faulted attempts,
    #: in scan (address) order — the per-scope give-up accounting.
    gave_up: list[Prefix] = field(default_factory=list)
    #: Injected fault counts by kind name (``drop``, ``servfail``, ...).
    fault_injected: dict[str, int] = field(default_factory=dict)
    #: Simulated seconds spent in injected latency spikes and retry
    #: backoff.  Quantized to dyadic values, so shard partial sums are
    #: exact and the merged total is bit-identical to the sequential one.
    fault_wait_seconds: float = 0.0

    def attach_columnar(self, columnar: ColumnarResponses) -> None:
        """Adopt columnar routed answers (replaces any ``responses`` list)."""
        self._responses = []
        self._columnar = columnar

    def columnar_view(self) -> ColumnarResponses | None:
        """The columnar answers, or None once/if materialised."""
        return self._columnar

    def response_count(self) -> int:
        """``len(responses)`` without forcing materialisation."""
        columnar = self._columnar
        if columnar is not None:
            return len(columnar)
        return len(self._responses)

    def scope_tally(self) -> Counter:
        """Responses per declared scope, straight off the columns."""
        columnar = self._columnar
        if columnar is not None:
            return columnar.scope_tally()
        return Counter(response.scope for response in self._responses)

    def addresses(self) -> set[IPAddress]:
        """All distinct ingress addresses uncovered.

        The relay service memoises rotation windows, so answered queries
        share a small population of address tuples; deduplicating tuples
        by identity first skips most of the per-address set hashing.
        (Unshared tuples still produce the same set, just slower.)
        """
        columnar = self._columnar
        if columnar is not None:
            return columnar.addresses()
        out: set[IPAddress] = set()
        seen: set[int] = set()
        seen_add = seen.add
        update = out.update
        for response in self.responses:
            addresses = response.addresses
            key = id(addresses)
            if key not in seen:
                seen_add(key)
                update(addresses)
        return out

    def addresses_by_asn(self) -> dict[int, set[IPAddress]]:
        """Distinct addresses per answer AS (Table 1 cells)."""
        columnar = self._columnar
        if columnar is not None:
            return columnar.addresses_by_asn()
        out: dict[int, set[IPAddress]] = {}
        seen: set[tuple[int, int]] = set()
        seen_add = seen.add
        for response in self.responses:
            asn = response.answer_asn
            if asn is None:
                continue
            addresses = response.addresses
            key = (asn, id(addresses))
            if key in seen:
                continue
            seen_add(key)
            bucket = out.get(asn)
            if bucket is None:
                bucket = out[asn] = set()
            bucket.update(addresses)
        return out

    def slash24s_by_asn(self) -> dict[int, int]:
        """Served /24 client subnets per answer AS (Table 2 'Subnets')."""
        columnar = self._columnar
        if columnar is not None:
            return columnar.slash24s_by_asn()
        out: dict[int, int] = {}
        for response in self.responses:
            if response.answer_asn is None:
                continue
            out[response.answer_asn] = (
                out.get(response.answer_asn, 0) + response.covered_slash24s()
            )
        return out

    def duration_hours(self) -> float:
        """Simulated scan duration."""
        return (self.finished_at - self.started_at) / 3600.0


def _responses_get(self: EcsScanResult) -> list[EcsResponse]:
    columnar = self._columnar
    if columnar is not None:
        # Materialise once; from here on the list is the live view and
        # callers may mutate it (the checkpoint decoder does).
        self._columnar = None
        self._responses = columnar.materialize()
    return self._responses


def _responses_set(self: EcsScanResult, value: list[EcsResponse]) -> None:
    self._responses = value
    self._columnar = None


# Installed after the @dataclass pass so `responses` keeps its place in
# dataclasses.fields() (the fault-equivalence suite iterates the fields)
# while reads lazily materialise any attached columnar answers.  The
# generated __init__ assigns through the setter, which is what creates
# the backing _responses/_columnar attributes on every instance.
EcsScanResult.responses = property(_responses_get, _responses_set)  # type: ignore[assignment]


class _FaultGate:
    """Per-scan fault/retry state machine, shared by both kernels.

    One :meth:`send` call models one logical query — the first attempt
    plus any retries — performing every token take itself and accounting
    faults, backoff waits, and give-ups.  Both the fast kernel and the
    slow reference path route queries through the *same* gate methods,
    so fault semantics cannot diverge between them.

    Injected waits are accumulated here and applied to the clock once at
    scan end: advancing mid-scan would change the token bucket's refill
    interleaving and break the sharded campaign's bit-identical
    ``take_many`` replay.
    """

    __slots__ = (
        "_inject",
        "_dkey",
        "_max_attempts",
        "_base",
        "_factor",
        "_jitter",
        "_backoff",
        "_latency",
        "_take",
        "retries",
        "wait_seconds",
        "counts",
        "gave_up",
    )

    def __init__(
        self,
        plan: FaultPlan,
        domain: str,
        settings: EcsScanSettings,
        bucket: TokenBucket,
        gave_up: list[Prefix],
    ) -> None:
        self._inject = plan.query_outcome
        self._dkey = fault_key(domain)
        self._max_attempts = max(1, settings.max_attempts)
        self._base = settings.backoff_base
        self._factor = settings.backoff_factor
        self._jitter = settings.backoff_jitter
        self._backoff = plan.backoff_wait
        self._latency = plan.latency_wait
        self._take = bucket.take
        self.retries = 0
        self.wait_seconds = 0.0
        self.counts: dict[int, int] = {}
        self.gave_up = gave_up

    def send(self, value: int, subnet: Prefix) -> tuple[bool, int]:
        """Send one query with retries: ``(delivered, attempts taken)``.

        ``delivered`` False means every attempt faulted and ``subnet``
        was appended to the give-up list; the caller skips the query's
        server-side processing and advances its cursor by one step.
        """
        self._take()
        outcome = self._inject(self._dkey, value, 0)
        if not outcome:
            return True, 1
        return self.resolve(value, subnet, outcome)

    def resolve(self, value: int, subnet: Prefix, outcome: int) -> tuple[bool, int]:
        """Run the retry ladder for a faulted first attempt.

        The caller has already taken the first token and drawn the
        attempt-0 ``outcome`` (the batch kernel inlines that draw and
        only calls in here for the rare faulted query); the returned
        take count includes that first take, exactly like :meth:`send`.
        """
        take = self._take
        inject = self._inject
        dkey = self._dkey
        counts = self.counts
        takes = 1
        attempt = 0
        while True:
            if outcome == FaultKind.LATENCY:
                counts[outcome] = counts.get(outcome, 0) + 1
                self.wait_seconds += self._latency(dkey, value, attempt)
                return True, takes
            counts[outcome] = counts.get(outcome, 0) + 1
            attempt += 1
            if attempt >= self._max_attempts:
                self.gave_up.append(subnet)
                return False, takes
            self.retries += 1
            self.wait_seconds += self._backoff(
                self._base, self._factor, self._jitter, dkey, value, attempt
            )
            take()
            takes += 1
            outcome = inject(dkey, value, attempt)
            if not outcome:
                return True, takes

    def finish(self, result: EcsScanResult) -> None:
        """Fold the gate's accounting into the scan result."""
        result.retries += self.retries
        result.fault_wait_seconds += self.wait_seconds
        injected = result.fault_injected
        names = FaultKind.NAMES
        for kind, count in sorted(self.counts.items()):
            name = names[kind]
            injected[name] = injected.get(name, 0) + count


class EcsScanner:
    """Scans one authoritative server with ECS queries."""

    def __init__(
        self,
        server: AuthoritativeServer,
        routing: RoutingTable,
        clock: SimClock,
        settings: EcsScanSettings | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.server = server
        self.routing = routing
        self.clock = clock
        self.settings = settings or EcsScanSettings()
        #: Observability sink: scan-accounting counters, the scope
        #: histogram, and per-scan spans.  The default null telemetry
        #: records nothing — the hot loop is never touched either way
        #: (metrics are computed once at scan end).
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Optional live StatusBoard (repro.monitor): batch-updated once
        #: per scan at scan end, so the hot loop never sees it.
        self.status = None
        #: Optional liveness callable for the parent-side hung-shard
        #: watchdog (repro.scan.sharding): bumped at scan start and at
        #: region/chunk boundaries — never per query, so a disabled
        #: watchdog costs one attribute load per region.
        self.heartbeat = None
        # Query-subnet intern table: a campaign walks the same routed /24
        # blocks once per scan, so later scans reuse the (immutable)
        # Prefix objects of the first instead of re-validating millions.
        # Keyed by network value; dropped if the source length changes.
        self._subnet_cache: dict[int, Prefix] = {}
        self._subnet_cache_len = self.settings.source_prefix_len
        # Routed span/gap cache: a campaign reuses one scanner across
        # monthly scans and the BGP feed is static between them, so the
        # prefix sort + span merge runs once.  Only engaged when the
        # routing table exposes a mutation ``version`` (test doubles
        # without one rebuild every scan, as before).
        self._span_cache: tuple[object, list, list] | None = None

    def scan(self, domain: str, rtype: RRType = RRType.A) -> EcsScanResult:
        """Run a full scan for one relay domain.

        Derives the routed spans and the unrouted gaps between them from
        the BGP feed and delegates to :meth:`scan_ranges` — the range-based
        core that shard workers invoke directly with clipped pieces.
        """
        settings = self.settings
        if not settings.prune_unrouted:
            return self.scan_ranges(domain, [(0, (1 << 32) - 1)], [], rtype)
        spans, gaps = self.routed_ranges()
        return self.scan_ranges(domain, spans, gaps, rtype)

    def scan_regions(
        self,
        domain: str,
        spans: list[tuple[int, int]],
        gaps: list[tuple[int, int]] | tuple = (),
        rtype: RRType = RRType.A,
    ) -> EcsScanResult:
        """Scan an explicit set of address regions (the delta-scan entry).

        ``spans`` are inclusive routed ranges to walk and ``gaps``
        inclusive unrouted ranges to sparse-probe, in any order and
        possibly overlapping; they are sorted and contiguous pieces
        merged before delegating to :meth:`scan_ranges`, so the walk
        inside each region issues exactly the queries a full scan would
        issue there — including the replay-program fast path.
        """
        return self.scan_ranges(
            domain, merge_ranges(spans), merge_ranges(gaps), rtype
        )

    def routed_ranges(self) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """The routed spans and the unrouted gaps between them (cached)."""
        version = getattr(self.routing, "version", None)
        cached = self._span_cache
        if cached is not None and version is not None and cached[0] == version:
            return cached[1], cached[2]
        prefixes = sorted(
            self.routing.routed_v4_prefixes(), key=lambda p: p.value
        )
        spans = _merge_spans(prefixes)
        gaps = _span_gaps(spans)
        if version is not None:
            self._span_cache = (version, spans, gaps)
        return spans, gaps

    def scan_ranges(
        self,
        domain: str,
        spans: list[tuple[int, int]],
        gaps: list[tuple[int, int]],
        rtype: RRType = RRType.A,
    ) -> EcsScanResult:
        """Scan explicit routed ``spans`` and sparse-probe ``gaps``.

        Both lists hold inclusive ``(start, end)`` integer ranges; they
        are walked interleaved in address order (each gap precedes the
        span that follows it), which for the full-space lists built by
        :meth:`scan` reproduces the sequential scan order exactly.  Shard
        workers call this with the ranges clipped to their shard.

        The server's answer cache is switched to ``settings.fast_path``
        for the scan's duration (and restored afterwards).
        """
        settings = self.settings
        bucket = TokenBucket(settings.rate, settings.burst, self.clock)
        result = EcsScanResult(domain=domain, started_at=self.clock.now)
        server = self.server
        cache = server.answer_cache
        was_enabled = cache.enabled
        cache.enabled = settings.fast_path
        # The kernel replays AuthoritativeServer.handle()'s logic inline,
        # so it is only valid when the server actually runs that logic —
        # a subclass or instance overriding handle() (the tests' failure
        # injection point) must be driven through real messages.
        stock_handle = (
            getattr(server.handle, "__func__", None) is AuthoritativeServer.handle
        )
        # Suspend cyclic GC for the scan: the hot loop allocates millions
        # of acyclic objects (responses, lookup results, record tuples)
        # that refcounting reclaims on its own, while every generational
        # collection re-traverses the large world graph.  Restored (and
        # any cycles collected then) in the finally.
        was_gc = gc.isenabled()
        if was_gc:
            gc.disable()
        plan = settings.fault_plan
        gate = None
        if plan is not None and plan.dns_active:
            gate = _FaultGate(plan, domain, settings, bucket, result.gave_up)
        if self.heartbeat is not None:
            self.heartbeat()
        # repro: allow[DET001] wall-time feeds the telemetry histogram only
        wall_start = time.perf_counter()
        with self.telemetry.tracer.span("ecs.scan", domain=domain):
            try:
                if settings.fast_path and stock_handle:
                    self._run_fast(result, domain, rtype, spans, gaps, bucket, gate)
                else:
                    self._run_slow(result, domain, rtype, spans, gaps, bucket, gate)
            finally:
                cache.enabled = was_enabled
                if was_gc:
                    gc.enable()
        if gate is not None:
            gate.finish(result)
        # Injected waits advance the clock once, here: a shard worker's
        # scan therefore leaves the token bucket exactly where the
        # parent's take_many() replay expects it.
        if result.fault_wait_seconds:
            self.clock.advance(result.fault_wait_seconds)
        result.finished_at = self.clock.now
        # repro: allow[DET001] wall-time feeds the telemetry histogram only
        self._record_scan(result, bucket, time.perf_counter() - wall_start)
        if self.status is not None:
            # Once per scan (batch, like _record_scan) — never per query.
            self.status.add("queries_sent", result.queries_sent)
            self.status.add("scans_completed")
            self.status.publish(last_domain=domain, sim_time=self.clock.now)
        return result

    def _record_scan(
        self, result: EcsScanResult, bucket: TokenBucket, wall_seconds: float
    ) -> None:
        """Record one scan's accounting metrics (end-of-scan batch).

        Runs once per :meth:`scan_ranges` call — never per query — and
        only when telemetry is enabled.  Per-response work is one
        C-speed ``Counter`` tally over the scope values (a scan holds
        hundreds of thousands of responses but only ~30 distinct
        scopes), so recording stays well inside the overhead budget the
        perf harness enforces.  Every counter recorded here is
        *deterministic across worker counts*: shard workers each record
        their piece and the parent sums the pieces (``ratelimit.*``
        excepted — each shard's bucket starts with a full burst, see
        ``deterministic_totals``).
        """
        registry = self.telemetry.registry
        if not registry.enabled:
            return
        domain = result.domain
        registry.counter("ecs.probes_sent", domain=domain).inc(result.queries_sent)
        registry.counter("ecs.answers", domain=domain).inc(result.response_count())
        registry.counter("ecs.sparse_probes", domain=domain).inc(
            result.sparse_queries
        )
        registry.counter("ecs.sparse_answered", domain=domain).inc(
            result.sparse_answered
        )
        scope_hist = registry.histogram("ecs.scope", SCOPE_BUCKETS, domain=domain)
        tally = result.scope_tally()
        skipped = 0
        if self.settings.respect_scope:
            # covered_slash24s() is a pure function of the scope, so the
            # tally stands in for the per-response sum.
            skipped = sum(
                n * ((1 << (24 - scope)) - 1)
                for scope, n in tally.items()
                if scope < 24
            )
        for scope, n in sorted(tally.items()):
            scope_hist.observe_many(scope, n)
        sparse_tally = Counter(
            response.scope for response in result.sparse_responses
        )
        for scope, n in sorted(sparse_tally.items()):
            scope_hist.observe_many(scope, n)
        registry.counter("ecs.scope_skipped_slash24s", domain=domain).inc(skipped)
        registry.counter("ratelimit.waited_seconds").inc(bucket.total_waited)
        registry.counter("ratelimit.denied").inc(bucket.denied)
        registry.histogram(
            "ecs.scan_wall_seconds", DURATION_BUCKETS, domain=domain
        ).observe(wall_seconds)
        if self.settings.fault_plan is not None:
            registry.counter("scan.retries", surface=domain).inc(result.retries)
            registry.counter("scan.gaveup", surface=domain).inc(len(result.gave_up))
            registry.counter("faults.wait_seconds", domain=domain).inc(
                result.fault_wait_seconds
            )
            for kind, count in sorted(result.fault_injected.items()):
                registry.counter("faults.injected", surface=domain, kind=kind).inc(
                    count
                )

    def _run_fast(
        self,
        result: EcsScanResult,
        domain: str,
        rtype: RRType,
        spans: list[tuple[int, int]],
        gaps: list[tuple[int, int]],
        bucket: TokenBucket,
        gate: _FaultGate | None = None,
    ) -> None:
        """The scan kernel: drive the server's internals per query.

        Resolves the zone once, then per query replays exactly what
        :meth:`AuthoritativeServer.handle` would do for a v4 ECS query —
        rate-limit take, stats accounting, effective-subnet policy,
        ``answer_cache.lookup``, scope computation — without building a
        ``DnsMessage`` in either direction.  Transaction ids are not
        modelled here: they are unobservable in :class:`EcsScanResult`
        (the slow reference path still assigns them).

        Per-query side effects (rotation bookkeeping, cache stores and
        epoch invalidations) run through the very same code as the
        message path, so the fast/slow equivalence suite keeps holding
        bit-for-bit.

        When the zone can compile a replay program for the scanned range
        the batch-replay kernel (:meth:`_run_program`) takes over; this
        per-query loop remains the fallback for zones and settings the
        compiler does not cover.
        """
        if self._run_program(result, domain, rtype, spans, gaps, bucket, gate):
            return
        settings = self.settings
        server = self.server
        qname = DnsName.parse(domain)
        zone = server.zone_for(qname)
        zone_missing = zone is None
        stats = server.stats
        policy = server.ecs_policy
        lookup = server.answer_cache.lookup
        origin_of = self.routing.origin_of
        take = bucket.take
        append_response = result.responses.append
        append_sparse = result.sparse_responses.append
        respect_scope = settings.respect_scope
        source_len = settings.source_prefix_len
        step = 1 << (32 - source_len)
        source_mask = ((1 << source_len) - 1) << (32 - source_len)
        sparse_stride = settings.sparse_stride << 8
        policy_enabled = policy.enabled
        max_source = policy.max_source_v4
        truncate_routed = policy_enabled and source_len > max_source
        # handle()'s response scope for answers without an override:
        # min(source length, policy cap).  Sources here are always v4
        # (/source_len routed, /24 sparse), so the v6 branches are moot.
        routed_scope = source_len if source_len < max_source else max_source
        sparse_scope = 24 if 24 < max_source else max_source
        if self._subnet_cache_len != source_len:
            self._subnet_cache = {}
            self._subnet_cache_len = source_len
        subnet_cache = self._subnet_cache
        # Answer memo: answered queries receive the relay service's
        # memoised rotation-window tuples, so the same records *object*
        # recurs throughout a scan.  Keyed by that identity, the memo
        # skips re-extracting addresses and re-deriving the answer AS —
        # and hands every recurrence the *same* address tuple, which is
        # what makes the identity-based deduplication in
        # EcsScanResult.addresses() effective.  Each value retains its
        # records object, so every id used as a live key refers to a
        # still-alive object and can never be reissued to a fresh one
        # (zones that build a new record list per query just miss — and
        # insert — once per answer, same as before the memo).
        answer_memo: dict[int, tuple] = {}
        # Server counters, hoisted to locals for the loop and written
        # back once at the end (nothing else touches them mid-scan).
        n_queries = 0
        n_ecs = 0
        n_answered = 0
        n_nodata = 0
        n_nxdomain = 0
        n_refused = 0
        sent = 0
        sparse_sent = 0
        sparse_answered = 0
        hb = self.heartbeat
        for start, end, is_gap in _interleave(spans, gaps):
            if hb is not None:
                hb()
            if is_gap:
                cursor = (start + sparse_stride - 1) // sparse_stride * sparse_stride
                while cursor + 255 <= end:
                    subnet = Prefix(4, cursor, 24)
                    if gate is None:
                        take()
                        sent += 1
                        sparse_sent += 1
                    else:
                        delivered, takes = gate.send(cursor, subnet)
                        sent += takes
                        sparse_sent += takes
                        if not delivered:
                            cursor += sparse_stride
                            continue
                    n_queries += 1
                    if zone_missing:
                        n_refused += 1
                        cursor += sparse_stride
                        continue
                    n_ecs += 1
                    res = lookup(zone, qname, rtype, subnet if policy_enabled else None)
                    if res.exists:
                        records = res.records
                        if records:
                            n_answered += 1
                            scope = res.scope_override
                            if scope is None:
                                scope = sparse_scope
                            key = id(records)
                            memo = answer_memo.get(key)
                            if memo is None:
                                addresses = tuple(
                                    rr.rdata
                                    for rr in records
                                    if rr.rtype in _ADDRESS_RTYPES
                                )
                                memo = (
                                    addresses,
                                    origin_of(addresses[0]) if addresses else None,
                                    records,
                                )
                                answer_memo[key] = memo
                            sparse_answered += 1
                            append_sparse(
                                EcsResponse(subnet, scope, memo[0], memo[1])
                            )
                        else:
                            n_nodata += 1
                    else:
                        n_nxdomain += 1
                    cursor += sparse_stride
                continue
            cursor = start
            while cursor <= end:
                value = cursor & source_mask
                subnet = subnet_cache.get(value)
                if subnet is None:
                    subnet = Prefix(4, value, source_len)
                    subnet_cache[value] = subnet
                if gate is None:
                    take()
                    sent += 1
                else:
                    # Fault check precedes the server: a dropped query
                    # never reaches the zone, so no refused/nx counting.
                    delivered, takes = gate.send(value, subnet)
                    sent += takes
                    if not delivered:
                        cursor = value + step
                        continue
                n_queries += 1
                if zone_missing:
                    n_refused += 1
                    cursor = value + step
                    continue
                n_ecs += 1
                if truncate_routed:
                    eff = subnet.truncate(max_source)
                elif policy_enabled:
                    eff = subnet
                else:
                    eff = None
                res = lookup(zone, qname, rtype, eff)
                if res.exists:
                    records = res.records
                    if records:
                        n_answered += 1
                        scope = res.scope_override
                        if scope is None:
                            scope = routed_scope
                        key = id(records)
                        memo = answer_memo.get(key)
                        if memo is None:
                            addresses = tuple(
                                rr.rdata
                                for rr in records
                                if rr.rtype in _ADDRESS_RTYPES
                            )
                            memo = (
                                addresses,
                                origin_of(addresses[0]) if addresses else None,
                                records,
                            )
                            answer_memo[key] = memo
                        append_response(
                            EcsResponse(subnet, scope, memo[0], memo[1])
                        )
                        if respect_scope and scope < source_len:
                            # Skip to the end of the declared scope block
                            # (subnet.truncate(scope).broadcast_value + 1).
                            cursor = (
                                subnet.value | ((1 << (32 - scope)) - 1)
                            ) + 1
                            continue
                    else:
                        n_nodata += 1
                else:
                    n_nxdomain += 1
                cursor = value + step
        stats.queries += n_queries
        stats.ecs_queries += n_ecs
        stats.answered += n_answered
        stats.nodata += n_nodata
        stats.nxdomain += n_nxdomain
        stats.refused += n_refused
        result.queries_sent += sent
        result.sparse_queries += sparse_sent
        result.sparse_answered += sparse_answered

    def _run_program(
        self,
        result: EcsScanResult,
        domain: str,
        rtype: RRType,
        spans: list[tuple[int, int]],
        gaps: list[tuple[int, int]],
        bucket: TokenBucket,
        gate: _FaultGate | None = None,
    ) -> bool:
        """The batch-replay kernel: execute a compiled answer program.

        Instead of calling ``answer_cache.lookup`` per probe, the scanned
        range is compiled once into a :class:`~repro.dns.answer_cache.ReplayProgram`
        — flat arrays of (span start, span end, answer index) covering
        the range contiguously — and the probe loop *replays* it: one
        row-pointer advance, one rotation-counter bump, and three column
        appends per answered query, with no ``LookupResult``, no record
        tuples, and no ``EcsResponse`` objects.  Emits columnar results
        (:class:`~repro.scan.columnar.ColumnarResponses`) directly.

        Exactness is preserved batch-wise rather than query-wise:

        * **Rotation state** advances through per-answer *local* counts
          against a snapshot of the shared rotation counters, flushed
          back (one store per counter) at batch boundaries — on epoch
          recompiles and at scan end.  Sparse gap probes are served from
          the very same program rows (the program covers gaps with
          fallback rows), so their rotation bumps flow through the same
          local counts in exact query order.
        * **Token takes** are batched: while the sim clock is provably
          below the epoch horizon (each take advances it at most
          ``1/rate`` seconds), a whole run of queries is served against
          the linked program and the bucket replays them in one
          :meth:`~repro.dns.ratelimit.TokenBucket.take_many` — the same
          float sequence as per-query takes, bit-identical wait totals.
        * **Epoch boundaries**: the zone declares how long its current
          answers stay valid (:meth:`~repro.dns.zone.Zone.epoch_horizon`);
          when the sim clock crosses that horizon the program is flushed,
          recompiled against the new epoch, and relinked — the same
          invalidate-and-rebuild the per-query cache performs.  Near the
          horizon the kernel degrades to careful single-query takes with
          the exact post-take clock check the per-query kernel performs.
        * **Faults**: the attempt-0 draw is inlined (one splitmix64 hash
          against the plan's precomputed channel base); only faulted
          queries — identified by the exact same draw — fall back to the
          gate's retry ladder, so injected/retry/give-up identities hold
          bit-for-bit.  With a fault gate attached every query stays on
          the careful single-take path (retry takes interleave with
          query takes, so batching them would reorder the bucket replay).

        Returns False (without consuming anything) when the range cannot
        be compiled — missing zone, ECS policy off or truncating, no
        registered enumerator, nested assignment units, unbounded epoch —
        and the per-query kernel takes over.
        """
        if not spans:
            return False
        settings = self.settings
        server = self.server
        qname = DnsName.parse(domain)
        zone = server.zone_for(qname)
        if zone is None:
            return False
        policy = server.ecs_policy
        source_len = settings.source_prefix_len
        max_source = policy.max_source_v4
        if not policy.enabled or source_len > max_source:
            return False
        horizon_of = zone.epoch_horizon
        horizon = horizon_of()
        if horizon is None:
            return False
        cache = server.answer_cache
        source_mask = ((1 << source_len) - 1) << (32 - source_len)
        # The program must cover every probed address, sparse included:
        # the gap before the first routed span is sparse-scanned too, so
        # the compile range starts at the leading gap when there is one.
        lo = spans[0][0]
        if gaps and gaps[0][0] < lo:
            lo = gaps[0][0]
        lo &= source_mask
        hi = spans[-1][1]
        program = cache.replay_program(zone, qname, rtype, lo, hi)
        if program is None:
            return False

        step = 1 << (32 - source_len)
        respect_scope = settings.respect_scope
        # source_len <= max_source here, so handle()'s default scope
        # min(source_len, max_source) is just the source length.
        routed_scope = source_len
        sparse_scope = 24 if 24 < max_source else max_source
        origin_of = self.routing.origin_of
        take = bucket.take
        clock = self.clock
        if self._subnet_cache_len != source_len:
            self._subnet_cache = {}
            self._subnet_cache_len = source_len
        subnet_cache = self._subnet_cache

        def link(program):
            """Bind the program's answer specs to this scan's settings.

            Columns indexed by answer: relay count, cursor-jump mask,
            routed response scope, sparse response scope, rotation slot
            (shared by answers driving the same rotation counter), the
            supplier, and a per-supplier rotation-window ref cache.  Per
            slot: the counter to write back, the counter value at link
            time, and a local bump count.  The scope/mask columns are
            pure per-answer maps, so they build as list comprehensions;
            only slot assignment needs a scalar pass.
            """
            answers = program.answers
            a_n = [spec[3] for spec in answers]
            a_scope = [
                routed_scope if spec[0] is None else spec[0] for spec in answers
            ]
            a_scope_sp = [
                sparse_scope if spec[0] is None else spec[0] for spec in answers
            ]
            step_mask = step - 1
            if respect_scope:
                a_mask = [
                    (1 << (32 - scope)) - 1 if scope < source_len else step_mask
                    for scope in a_scope
                ]
            else:
                a_mask = [step_mask] * len(answers)
            a_sup = [spec[4] for spec in answers]
            a_slot = [-1] * len(answers)
            a_refs: list = [None] * len(answers)
            slot_map: dict = {}
            writers: list = []
            bases: list[int] = []
            counts: list[int] = []
            refs_by_sup: dict[int, list] = {}
            for i, spec in enumerate(answers):
                n_relays = spec[3]
                if not n_relays:
                    continue
                counters = spec[1]
                counter_key = spec[2]
                slot_key = (id(counters), counter_key)
                slot = slot_map.get(slot_key)
                if slot is None:
                    slot = slot_map[slot_key] = len(writers)
                    writers.append((counters, counter_key))
                    bases.append(counters[counter_key])
                    counts.append(0)
                supplier_key = id(spec[4])
                refs = refs_by_sup.get(supplier_key)
                if refs is None:
                    refs = refs_by_sup[supplier_key] = [None] * n_relays
                a_slot[i] = slot
                a_refs[i] = refs
            return (
                a_n,
                a_mask,
                a_scope,
                a_scope_sp,
                a_slot,
                a_sup,
                a_refs,
                writers,
                bases,
                counts,
            )

        (
            a_n,
            a_mask,
            a_scope,
            a_scope_sp,
            a_slot,
            a_sup,
            a_refs,
            writers,
            bases,
            counts,
        ) = link(program)
        row_ends = program.row_ends
        row_answer = program.row_answer
        r = 0

        def flush() -> None:
            """Write pending rotation advances back to the shared counters."""
            for i in range(len(writers)):
                pending = counts[i]
                if pending:
                    counters, counter_key = writers[i]
                    counters[counter_key] = bases[i] + pending
                    bases[i] += pending
                    counts[i] = 0

        def refresh() -> None:
            """Cross an epoch horizon: flush, recompile, relink.

            Mirrors the per-query cache's epoch invalidation: pending
            rotation state is written back first, then the program is
            recompiled against the new epoch and relinked, and the row
            pointer restarts (the new partition may differ).
            """
            nonlocal program, a_n, a_mask, a_scope, a_scope_sp, a_slot
            nonlocal a_sup, a_refs, writers, bases, counts
            nonlocal row_ends, row_answer, r, horizon
            flush()
            program = cache.replay_program(zone, qname, rtype, lo, hi)
            if program is None:
                raise RuntimeError("replay program became uncompilable mid-scan")
            (
                a_n,
                a_mask,
                a_scope,
                a_scope_sp,
                a_slot,
                a_sup,
                a_refs,
                writers,
                bases,
                counts,
            ) = link(program)
            row_ends = program.row_ends
            row_answer = program.row_answer
            r = 0
            horizon = horizon_of()

        columnar = ColumnarResponses(source_len, prefixes=subnet_cache)
        values_col, scopes_col, refs_col, table = columnar.new_chunk()
        vapp = values_col.append
        sapp = scopes_col.append
        rapp = refs_col.append
        tapp = table.append

        if gate is not None:
            plan = settings.fault_plan
            qbase, thresholds = plan.query_channel(fault_key(domain))
            t_all = thresholds[-1]
            inject = gate._inject
            resolve = gate.resolve
            dkey = gate._dkey
            qmult = QUERY_VALUE_MULT
            m64 = MASK64
            mix_a = MIX_MULT_A
            mix_b = MIX_MULT_B

        append_sparse = result.sparse_responses.append
        sparse_stride = settings.sparse_stride << 8
        stats = server.stats
        rate = bucket.rate
        take_many = bucket.take_many
        inf = float("inf")
        sent = 0
        sparse_sent = 0
        sparse_served = 0
        sparse_answered = 0
        n_nodata_prog = 0

        def serve_routed(value: int) -> int:
            """Serve one routed query at ``value``; returns the next cursor.

            Same body as the inlined chunk loop — used only on the rare
            careful paths (near an epoch horizon, and after a delivered
            faulted query), where a closure call costs nothing.
            """
            nonlocal r, n_nodata_prog
            while value > row_ends[r]:
                r += 1
            ai = row_answer[r]
            n = a_n[ai]
            if not n:
                n_nodata_prog += 1
                return value + step
            slot = a_slot[ai]
            j = counts[slot]
            counts[slot] = j + 1
            rot = (bases[slot] + j) % n
            refs = a_refs[ai]
            ref = refs[rot]
            if ref is None:
                addresses = a_sup[ai].rotation_addresses(rot)
                ref = refs[rot] = len(table)
                tapp((addresses, origin_of(addresses[0])))
            vapp(value)
            sapp(a_scope[ai])
            rapp(ref)
            return (value | a_mask[ai]) + 1

        def serve_sparse(cursor: int) -> None:
            """Serve one delivered sparse /24 probe from the program.

            The program's rows cover gaps too (fallback rows fill
            unassigned space), so the probe's answer — and its rotation
            bump, in exact query order — comes from the same columns as
            routed queries; only the response scope resolves against the
            sparse default instead of the routed one.
            """
            nonlocal r, sparse_served, sparse_answered
            while cursor > row_ends[r]:
                r += 1
            ai = row_answer[r]
            sparse_served += 1
            n = a_n[ai]
            if not n:
                return
            slot = a_slot[ai]
            j = counts[slot]
            counts[slot] = j + 1
            rot = (bases[slot] + j) % n
            refs = a_refs[ai]
            ref = refs[rot]
            if ref is None:
                addresses = a_sup[ai].rotation_addresses(rot)
                ref = refs[rot] = len(table)
                tapp((addresses, origin_of(addresses[0])))
            entry = table[ref]
            sparse_answered += 1
            append_sparse(
                EcsResponse(Prefix(4, cursor, 24), a_scope_sp[ai], entry[0], entry[1])
            )

        hb = self.heartbeat
        for start, end, is_gap in _interleave(spans, gaps):
            if hb is not None:
                hb()
            if is_gap:
                cursor = (start + sparse_stride - 1) // sparse_stride * sparse_stride
                if gate is not None:
                    while cursor + 255 <= end:
                        delivered, takes = gate.send(cursor, Prefix(4, cursor, 24))
                        sent += takes
                        sparse_sent += takes
                        if delivered:
                            if clock.now >= horizon:
                                refresh()
                            serve_sparse(cursor)
                        cursor += sparse_stride
                    continue
                while cursor + 255 <= end:
                    # Probe count to the gap's end is known up front, so
                    # the horizon budget caps one take_many per chunk.
                    if horizon == inf:
                        allowed = 1 << 30
                    else:
                        allowed = int((horizon - clock.now) * rate) - 2
                    if allowed < 1:
                        take()
                        sent += 1
                        sparse_sent += 1
                        if clock.now >= horizon:
                            refresh()
                        serve_sparse(cursor)
                        cursor += sparse_stride
                        continue
                    k = (end - 255 - cursor) // sparse_stride + 1
                    if k > allowed:
                        k = allowed
                    take_many(k)
                    sent += k
                    sparse_sent += k
                    for _ in range(k):
                        serve_sparse(cursor)
                        cursor += sparse_stride
                continue
            cursor = start
            if gate is not None:
                while cursor <= end:
                    take()
                    sent += 1
                    if clock.now >= horizon:
                        refresh()
                    value = cursor & source_mask
                    # Inlined attempt-0 fault draw (plan.query_outcome's
                    # splitmix64, against the precomputed channel base);
                    # only actual faults re-enter the gate machinery.
                    h = (qbase + value * qmult) & m64
                    h = ((h ^ (h >> 30)) * mix_a) & m64
                    h = ((h ^ (h >> 27)) * mix_b) & m64
                    h ^= h >> 31
                    if h < t_all:
                        subnet = subnet_cache.get(value)
                        if subnet is None:
                            subnet = Prefix(4, value, source_len)
                            subnet_cache[value] = subnet
                        delivered, takes = resolve(
                            value, subnet, inject(dkey, value, 0)
                        )
                        sent += takes - 1
                        if not delivered:
                            cursor = value + step
                            continue
                    cursor = serve_routed(value)
                continue
            while cursor <= end:
                # Horizon budget: one take advances the clock at most
                # 1/rate seconds, so this many takes provably stay below
                # the horizon (the -2 margin swallows float rounding);
                # the whole run is served against the linked program and
                # the bucket replays the takes in one take_many — the
                # same float sequence, bit-identical wait totals.
                if horizon == inf:
                    allowed = 1 << 30
                else:
                    allowed = int((horizon - clock.now) * rate) - 2
                if allowed < 1:
                    # Within a take or two of the horizon: single-query
                    # takes with the per-query kernel's exact post-take
                    # clock check, crossing the epoch where it would.
                    take()
                    sent += 1
                    if clock.now >= horizon:
                        refresh()
                    cursor = serve_routed(cursor & source_mask)
                    continue
                count = 0
                while cursor <= end and count < allowed:
                    value = cursor & source_mask
                    while value > row_ends[r]:
                        r += 1
                    ai = row_answer[r]
                    n = a_n[ai]
                    if n:
                        slot = a_slot[ai]
                        j = counts[slot]
                        counts[slot] = j + 1
                        rot = (bases[slot] + j) % n
                        refs = a_refs[ai]
                        ref = refs[rot]
                        if ref is None:
                            addresses = a_sup[ai].rotation_addresses(rot)
                            ref = refs[rot] = len(table)
                            tapp((addresses, origin_of(addresses[0])))
                        vapp(value)
                        sapp(a_scope[ai])
                        rapp(ref)
                        cursor = (value | a_mask[ai]) + 1
                    else:
                        n_nodata_prog += 1
                        cursor = value + step
                    count += 1
                take_many(count)
                sent += count
                if hb is not None:
                    hb()
        flush()
        served = len(values_col) + n_nodata_prog + sparse_served
        cache.record_program_hits(served)
        stats.queries += served
        stats.ecs_queries += served
        stats.answered += len(values_col) + sparse_answered
        stats.nodata += n_nodata_prog + (sparse_served - sparse_answered)
        result.queries_sent += sent
        result.sparse_queries += sparse_sent
        result.sparse_answered += sparse_answered
        result.attach_columnar(columnar)
        return True

    def _run_slow(
        self,
        result: EcsScanResult,
        domain: str,
        rtype: RRType,
        spans: list[tuple[int, int]],
        gaps: list[tuple[int, int]],
        bucket: TokenBucket,
        gate: _FaultGate | None = None,
    ) -> None:
        """The reference path: one fresh ``DnsMessage`` through
        :meth:`AuthoritativeServer.handle` per query.

        Kept message-based on purpose — the fast/slow equivalence suite
        diffs the kernel against this end-to-end path.
        """
        settings = self.settings
        question = Question(DnsName.parse(domain), rtype)

        def make_query(subnet: Prefix, message_id: int) -> DnsMessage:
            return DnsMessage(
                message_id=message_id,
                question=question,
                edns=EdnsOptions(client_subnet=ClientSubnetOption(subnet)),
            )

        message_id = 0
        source_len = settings.source_prefix_len
        step = 1 << (32 - source_len)
        source_mask = ((1 << source_len) - 1) << (32 - source_len)
        # The routed-space loop below is _query() inlined (identical
        # logic; the sparse path still calls the method), with the
        # per-query attribute lookups hoisted out.
        append_response = result.responses.append
        take = bucket.take
        handle = self.server.handle
        origin_of = self.routing.origin_of
        respect_scope = settings.respect_scope
        noerror = Rcode.NOERROR
        sent = 0
        if self._subnet_cache_len != source_len:
            self._subnet_cache = {}
            self._subnet_cache_len = source_len
        subnet_cache = self._subnet_cache
        append_sparse = result.sparse_responses.append
        stride = settings.sparse_stride << 8
        sparse_sent = 0
        sparse_answered = 0
        hb = self.heartbeat
        for start, end, is_gap in _interleave(spans, gaps):
            if hb is not None:
                hb()
            if is_gap:
                if gate is None:
                    message_id = self._sparse_scan(
                        start, end, make_query, bucket, result, message_id
                    )
                    continue
                # Fault-aware sparse probing: the same gate calls (and
                # hence the same fault draws) as the fast kernel's gap
                # loop, driven through real messages.
                cursor = (start + stride - 1) // stride * stride
                while cursor + 255 <= end:
                    subnet = Prefix(4, cursor, 24)
                    message_id = (message_id + 1) & 0xFFFF
                    delivered, takes = gate.send(cursor, subnet)
                    sparse_sent += takes
                    if delivered:
                        response = handle(make_query(subnet, message_id))
                        answers = response.answers
                        if response.rcode == noerror and answers:
                            ecs = response.client_subnet
                            scope = (
                                ecs.scope_prefix_length if ecs is not None else 24
                            )
                            addresses = tuple(
                                rr.rdata
                                for rr in answers
                                if rr.rtype in _ADDRESS_RTYPES
                            )
                            answer_asn = (
                                origin_of(addresses[0]) if addresses else None
                            )
                            sparse_answered += 1
                            append_sparse(
                                EcsResponse(subnet, scope, addresses, answer_asn)
                            )
                    cursor += stride
                continue
            cursor = start
            while cursor <= end:
                value = cursor & source_mask
                subnet = subnet_cache.get(value)
                if subnet is None:
                    subnet = Prefix(4, value, source_len)
                    subnet_cache[value] = subnet
                message_id = (message_id + 1) & 0xFFFF
                if gate is None:
                    take()
                    sent += 1
                else:
                    delivered, takes = gate.send(value, subnet)
                    sent += takes
                    if not delivered:
                        cursor = value + step
                        continue
                response = handle(make_query(subnet, message_id))
                answers = response.answers
                if response.rcode == noerror and answers:
                    edns = response.edns
                    ecs = edns.client_subnet if edns is not None else None
                    scope = (
                        ecs.scope_prefix_length if ecs is not None else source_len
                    )
                    addresses = tuple(
                        rr.rdata for rr in answers if rr.rtype in _ADDRESS_RTYPES
                    )
                    answer_asn = origin_of(addresses[0]) if addresses else None
                    append_response(
                        EcsResponse(subnet, scope, addresses, answer_asn)
                    )
                    if respect_scope and scope < source_len:
                        # Skip to the end of the declared scope block
                        # (subnet.truncate(scope).broadcast_value + 1).
                        cursor = (
                            subnet.value | ((1 << (32 - scope)) - 1)
                        ) + 1
                        continue
                cursor = value + step
        result.queries_sent += sent + sparse_sent
        result.sparse_queries += sparse_sent
        result.sparse_answered += sparse_answered

    def _query(
        self,
        subnet: Prefix,
        message_id: int,
        make_query,
        bucket: TokenBucket,
        result: EcsScanResult,
    ) -> EcsResponse | None:
        bucket.take()
        result.queries_sent += 1
        response = self.server.handle(make_query(subnet, message_id))
        answers = response.answers
        if response.rcode != Rcode.NOERROR or not answers:
            return None
        ecs = response.client_subnet
        scope = ecs.scope_prefix_length if ecs is not None else subnet.length
        # Inlined response.answer_addresses(): rdata of an A/AAAA record
        # is its address, and this runs once per answered query.
        addresses = tuple(
            rr.rdata for rr in answers if rr.rtype in _ADDRESS_RTYPES
        )
        answer_asn = self.routing.origin_of(addresses[0]) if addresses else None
        return EcsResponse(subnet, scope, addresses, answer_asn)

    def _sparse_scan(
        self,
        start: int,
        end: int,
        make_query,
        bucket: TokenBucket,
        result: EcsScanResult,
        message_id: int,
    ) -> int:
        """Sample unrouted space once per ``sparse_stride`` /24 blocks.

        Shares the scan's transaction-id counter (ids stay unique across
        routed and sparse probes) and records any answered probe in
        ``result.sparse_responses`` instead of discarding it.  Returns
        the advanced message id.
        """
        stride = self.settings.sparse_stride << 8
        cursor = (start + stride - 1) // stride * stride
        while cursor + 255 <= end:
            subnet = Prefix(4, cursor, 24)
            message_id = (message_id + 1) & 0xFFFF
            result.sparse_queries += 1
            response = self._query(subnet, message_id, make_query, bucket, result)
            if response is not None:
                result.sparse_answered += 1
                result.sparse_responses.append(response)
            cursor += stride
        return message_id


def merge_ranges(
    ranges: list[tuple[int, int]] | tuple,
) -> list[tuple[int, int]]:
    """Sort inclusive ``(start, end)`` ranges and merge touching pieces.

    The normalisation :meth:`EcsScanner.scan_regions` applies to caller
    worklists: out-of-order, duplicate, or back-to-back block ranges
    collapse into the disjoint ascending shape ``scan_ranges`` walks.
    Merging adjacent ranges never changes the issued queries — a scope
    skip lands on the next block's start either way — it only shortens
    the span list the kernels and the shard planner iterate.
    """
    merged: list[tuple[int, int]] = []
    for start, end in sorted(ranges):
        if merged and start <= merged[-1][1] + 1:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def _merge_spans(prefixes: list[Prefix]) -> list[tuple[int, int]]:
    """Merge sorted prefixes into disjoint (start, end) integer spans."""
    spans: list[tuple[int, int]] = []
    for prefix in prefixes:
        start, end = prefix.value, prefix.broadcast_value
        if spans and start <= spans[-1][1] + 1:
            spans[-1] = (spans[-1][0], max(spans[-1][1], end))
        else:
            spans.append((start, end))
    return spans


def _span_gaps(spans: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """The unrouted gaps *between* merged spans (sparse-probe targets).

    Mirrors the sequential scan semantics: space before the first span
    counts as a gap, the trailing space after the last span does not (it
    was never sparse-scanned, and stays that way).
    """
    gaps: list[tuple[int, int]] = []
    previous_end = 0
    for start, end in spans:
        if start > previous_end:
            gaps.append((previous_end, start - 1))
        previous_end = end + 1
    return gaps


def _interleave(
    spans: list[tuple[int, int]], gaps: list[tuple[int, int]]
) -> list[tuple[int, int, bool]]:
    """Merge spans and gaps into one address-ordered work list.

    Spans and gaps are each sorted and mutually disjoint, so sorting the
    union by start address puts every gap right before the span that
    follows it — the sequential scan order.
    """
    pieces = [(start, end, False) for start, end in spans]
    pieces += [(start, end, True) for start, end in gaps]
    pieces.sort()
    return pieces
