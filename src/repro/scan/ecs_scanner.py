"""ECS-based ingress enumeration.

Implements the paper's core scan: iterate client subnets over the IPv4
space, attach each as an EDNS Client Subnet option to an A query for a
relay domain, and collect the returned ingress addresses.

The ethics measures from Section 7 are first-class here:

* a strict token-bucket **rate limit** (a full scan takes tens of hours
  of simulated time);
* **routed-space pruning** — address space not visible in the local BGP
  feed is only sparsely sampled;
* **scope pruning** — when the server declares an ECS scope wider than
  /24, no further query is sent inside that scope block.

Both prunings can be disabled for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.message import DnsMessage, Rcode
from repro.dns.ratelimit import TokenBucket
from repro.dns.rr import RRType
from repro.dns.server import AuthoritativeServer
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.bgp import RoutingTable
from repro.simtime import SimClock


@dataclass(frozen=True, slots=True)
class EcsResponse:
    """One answered ECS query."""

    subnet: Prefix
    scope: int
    addresses: tuple[IPAddress, ...]
    answer_asn: int | None

    def covered_slash24s(self) -> int:
        """How many /24 client subnets this answer is valid for."""
        if self.scope >= 24:
            return 1
        return 1 << (24 - self.scope)


@dataclass
class EcsScanSettings:
    """Scanner behaviour knobs."""

    #: Queries per second (the strict rate limit).
    rate: float = 2.2
    burst: float = 10.0
    #: ECS source prefix length sent with every query.
    source_prefix_len: int = 24
    #: Honour server scopes wider than /24 (skip the rest of the block).
    respect_scope: bool = True
    #: Only scan space covered by BGP routes; unrouted space is sampled
    #: once every ``sparse_stride`` /24 blocks.
    prune_unrouted: bool = True
    sparse_stride: int = 4096


@dataclass
class EcsScanResult:
    """The outcome of one full ECS scan of one domain."""

    domain: str
    started_at: float
    finished_at: float = 0.0
    queries_sent: int = 0
    responses: list[EcsResponse] = field(default_factory=list)
    sparse_queries: int = 0

    def addresses(self) -> set[IPAddress]:
        """All distinct ingress addresses uncovered."""
        return {a for r in self.responses for a in r.addresses}

    def addresses_by_asn(self) -> dict[int, set[IPAddress]]:
        """Distinct addresses per answer AS (Table 1 cells)."""
        out: dict[int, set[IPAddress]] = {}
        for response in self.responses:
            if response.answer_asn is None:
                continue
            out.setdefault(response.answer_asn, set()).update(response.addresses)
        return out

    def slash24s_by_asn(self) -> dict[int, int]:
        """Served /24 client subnets per answer AS (Table 2 'Subnets')."""
        out: dict[int, int] = {}
        for response in self.responses:
            if response.answer_asn is None:
                continue
            out[response.answer_asn] = (
                out.get(response.answer_asn, 0) + response.covered_slash24s()
            )
        return out

    def duration_hours(self) -> float:
        """Simulated scan duration."""
        return (self.finished_at - self.started_at) / 3600.0


class EcsScanner:
    """Scans one authoritative server with ECS queries."""

    def __init__(
        self,
        server: AuthoritativeServer,
        routing: RoutingTable,
        clock: SimClock,
        settings: EcsScanSettings | None = None,
    ) -> None:
        self.server = server
        self.routing = routing
        self.clock = clock
        self.settings = settings or EcsScanSettings()

    def scan(self, domain: str, rtype: RRType = RRType.A) -> EcsScanResult:
        """Run a full scan for one relay domain."""
        settings = self.settings
        bucket = TokenBucket(settings.rate, settings.burst, self.clock)
        result = EcsScanResult(domain=domain, started_at=self.clock.now)
        message_id = 0
        prefixes = sorted(
            self.routing.routed_v4_prefixes(), key=lambda p: p.value
        )
        if settings.prune_unrouted:
            spans = _merge_spans(prefixes)
        else:
            spans = [(0, (1 << 32) - 1)]
        previous_end = 0
        for span_start, span_end in spans:
            if settings.prune_unrouted and span_start > previous_end:
                self._sparse_scan(
                    previous_end, span_start - 1, domain, rtype, bucket, result
                )
            previous_end = span_end + 1
            cursor = span_start
            while cursor <= span_end:
                subnet = Prefix.from_address(
                    IPAddress(4, cursor), settings.source_prefix_len
                )
                message_id = (message_id + 1) & 0xFFFF
                response = self._query(domain, rtype, subnet, message_id, bucket, result)
                step = 1 << (32 - settings.source_prefix_len)
                if response is not None:
                    result.responses.append(response)
                    if settings.respect_scope and response.scope < settings.source_prefix_len:
                        block = subnet.truncate(response.scope)
                        cursor = block.broadcast_value + 1
                        continue
                cursor = subnet.value + step
        result.finished_at = self.clock.now
        return result

    def _query(
        self,
        domain: str,
        rtype: RRType,
        subnet: Prefix,
        message_id: int,
        bucket: TokenBucket,
        result: EcsScanResult,
    ) -> EcsResponse | None:
        bucket.take()
        result.queries_sent += 1
        query = DnsMessage.query(domain, rtype, message_id=message_id, ecs=subnet)
        response = self.server.handle(query)
        if response.rcode != Rcode.NOERROR or not response.answers:
            return None
        ecs = response.client_subnet
        scope = ecs.scope_prefix_length if ecs is not None else subnet.length
        addresses = tuple(response.answer_addresses())
        answer_asn = self.routing.origin_of(addresses[0]) if addresses else None
        return EcsResponse(subnet, scope, addresses, answer_asn)

    def _sparse_scan(
        self,
        start: int,
        end: int,
        domain: str,
        rtype: RRType,
        bucket: TokenBucket,
        result: EcsScanResult,
    ) -> None:
        """Sample unrouted space once per ``sparse_stride`` /24 blocks."""
        stride = self.settings.sparse_stride << 8
        message_id = 0
        cursor = (start + stride - 1) // stride * stride
        while cursor + 255 <= end:
            subnet = Prefix.from_address(IPAddress(4, cursor), 24)
            message_id = (message_id + 1) & 0xFFFF
            bucket.take()
            result.queries_sent += 1
            result.sparse_queries += 1
            query = DnsMessage.query(domain, rtype, message_id=message_id, ecs=subnet)
            self.server.handle(query)
            cursor += stride


def _merge_spans(prefixes: list[Prefix]) -> list[tuple[int, int]]:
    """Merge sorted prefixes into disjoint (start, end) integer spans."""
    spans: list[tuple[int, int]] = []
    for prefix in prefixes:
        start, end = prefix.value, prefix.broadcast_value
        if spans and start <= spans[-1][1] + 1:
            spans[-1] = (spans[-1][0], max(spans[-1][1], end))
        else:
            spans.append((start, end))
    return spans
