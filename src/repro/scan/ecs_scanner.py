"""ECS-based ingress enumeration.

Implements the paper's core scan: iterate client subnets over the IPv4
space, attach each as an EDNS Client Subnet option to an A query for a
relay domain, and collect the returned ingress addresses.

The ethics measures from Section 7 are first-class here:

* a strict token-bucket **rate limit** (a full scan takes tens of hours
  of simulated time);
* **routed-space pruning** — address space not visible in the local BGP
  feed is only sparsely sampled;
* **scope pruning** — when the server declares an ECS scope wider than
  /24, no further query is sent inside that scope block.

Both prunings can be disabled for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.edns import ClientSubnetOption, EdnsOptions
from repro.dns.message import DnsMessage, Question, Rcode
from repro.dns.name import DnsName
from repro.dns.ratelimit import TokenBucket
from repro.dns.rr import RRType
from repro.dns.server import AuthoritativeServer
from repro.netmodel.addr import IPAddress, Prefix
from repro.netmodel.bgp import RoutingTable
from repro.simtime import SimClock

#: Record types whose rdata is an address (hot-loop constant).
_ADDRESS_RTYPES = (RRType.A, RRType.AAAA)


@dataclass(frozen=True, slots=True)
class EcsResponse:
    """One answered ECS query."""

    subnet: Prefix
    scope: int
    addresses: tuple[IPAddress, ...]
    answer_asn: int | None

    def covered_slash24s(self) -> int:
        """How many /24 client subnets this answer is valid for."""
        if self.scope >= 24:
            return 1
        return 1 << (24 - self.scope)


@dataclass
class EcsScanSettings:
    """Scanner behaviour knobs."""

    #: Queries per second (the strict rate limit).
    rate: float = 2.2
    burst: float = 10.0
    #: ECS source prefix length sent with every query.
    source_prefix_len: int = 24
    #: Honour server scopes wider than /24 (skip the rest of the block).
    respect_scope: bool = True
    #: Only scan space covered by BGP routes; unrouted space is sampled
    #: once every ``sparse_stride`` /24 blocks.
    prune_unrouted: bool = True
    sparse_stride: int = 4096
    #: Use the server's scope-block answer cache (results are identical
    #: either way; off exercises the reference path).
    fast_path: bool = True


@dataclass
class EcsScanResult:
    """The outcome of one full ECS scan of one domain."""

    domain: str
    started_at: float
    finished_at: float = 0.0
    queries_sent: int = 0
    responses: list[EcsResponse] = field(default_factory=list)
    sparse_queries: int = 0
    #: Sparse probes of unrouted space that came back answered.  Kept
    #: separate from ``responses`` (the routed-scan answer list feeding
    #: the tables) so unrouted hits are visible instead of discarded.
    sparse_answered: int = 0
    sparse_responses: list[EcsResponse] = field(default_factory=list)

    def addresses(self) -> set[IPAddress]:
        """All distinct ingress addresses uncovered."""
        return {a for r in self.responses for a in r.addresses}

    def addresses_by_asn(self) -> dict[int, set[IPAddress]]:
        """Distinct addresses per answer AS (Table 1 cells)."""
        out: dict[int, set[IPAddress]] = {}
        for response in self.responses:
            if response.answer_asn is None:
                continue
            out.setdefault(response.answer_asn, set()).update(response.addresses)
        return out

    def slash24s_by_asn(self) -> dict[int, int]:
        """Served /24 client subnets per answer AS (Table 2 'Subnets')."""
        out: dict[int, int] = {}
        for response in self.responses:
            if response.answer_asn is None:
                continue
            out[response.answer_asn] = (
                out.get(response.answer_asn, 0) + response.covered_slash24s()
            )
        return out

    def duration_hours(self) -> float:
        """Simulated scan duration."""
        return (self.finished_at - self.started_at) / 3600.0


class EcsScanner:
    """Scans one authoritative server with ECS queries."""

    def __init__(
        self,
        server: AuthoritativeServer,
        routing: RoutingTable,
        clock: SimClock,
        settings: EcsScanSettings | None = None,
    ) -> None:
        self.server = server
        self.routing = routing
        self.clock = clock
        self.settings = settings or EcsScanSettings()
        # Query-subnet intern table: a campaign walks the same routed /24
        # blocks once per scan, so later scans reuse the (immutable)
        # Prefix objects of the first instead of re-validating millions.
        # Keyed by network value; dropped if the source length changes.
        self._subnet_cache: dict[int, Prefix] = {}
        self._subnet_cache_len = self.settings.source_prefix_len

    def scan(self, domain: str, rtype: RRType = RRType.A) -> EcsScanResult:
        """Run a full scan for one relay domain.

        The question and query template are built once; each iteration
        only constructs the subnet prefix and the message around it.  The
        server's answer cache is switched to ``settings.fast_path`` for
        the scan's duration (and restored afterwards).
        """
        settings = self.settings
        bucket = TokenBucket(settings.rate, settings.burst, self.clock)
        result = EcsScanResult(domain=domain, started_at=self.clock.now)
        question = Question(DnsName.parse(domain), rtype)
        message_id = 0
        source_len = settings.source_prefix_len
        step = 1 << (32 - source_len)
        source_mask = ((1 << source_len) - 1) << (32 - source_len)
        if settings.fast_path:
            # Reusable query-message template: one validated message whose
            # subnet and transaction id are swapped in place per query.
            # The server never retains the query, and the response embeds
            # a fresh ECS option, so nothing aliases the mutated fields.
            template_cso = ClientSubnetOption(Prefix(4, 0, source_len))
            template = DnsMessage(
                question=question,
                edns=EdnsOptions(client_subnet=template_cso),
            )
            mutate = object.__setattr__

            def make_query(subnet: Prefix, message_id: int) -> DnsMessage:
                mutate(template_cso, "source", subnet)
                mutate(template, "message_id", message_id)
                return template

        else:

            def make_query(subnet: Prefix, message_id: int) -> DnsMessage:
                return DnsMessage(
                    message_id=message_id,
                    question=question,
                    edns=EdnsOptions(client_subnet=ClientSubnetOption(subnet)),
                )

        prefixes = sorted(
            self.routing.routed_v4_prefixes(), key=lambda p: p.value
        )
        if settings.prune_unrouted:
            spans = _merge_spans(prefixes)
        else:
            spans = [(0, (1 << 32) - 1)]
        cache = self.server.answer_cache
        was_enabled = cache.enabled
        cache.enabled = settings.fast_path
        try:
            previous_end = 0
            # The routed-space loop below is _query() inlined (identical
            # logic; the sparse path still calls the method), with the
            # per-query attribute lookups hoisted out.
            append_response = result.responses.append
            take = bucket.take
            handle = self.server.handle
            origin_of = self.routing.origin_of
            respect_scope = settings.respect_scope
            noerror = Rcode.NOERROR
            sent = 0
            if self._subnet_cache_len != source_len:
                self._subnet_cache = {}
                self._subnet_cache_len = source_len
            subnet_cache = self._subnet_cache
            for span_start, span_end in spans:
                if settings.prune_unrouted and span_start > previous_end:
                    message_id = self._sparse_scan(
                        previous_end, span_start - 1, make_query, bucket, result, message_id
                    )
                previous_end = span_end + 1
                cursor = span_start
                while cursor <= span_end:
                    value = cursor & source_mask
                    subnet = subnet_cache.get(value)
                    if subnet is None:
                        subnet = Prefix(4, value, source_len)
                        subnet_cache[value] = subnet
                    message_id = (message_id + 1) & 0xFFFF
                    take()
                    sent += 1
                    response = handle(make_query(subnet, message_id))
                    answers = response.answers
                    if response.rcode == noerror and answers:
                        edns = response.edns
                        ecs = edns.client_subnet if edns is not None else None
                        scope = (
                            ecs.scope_prefix_length if ecs is not None else source_len
                        )
                        addresses = tuple(
                            rr.rdata for rr in answers if rr.rtype in _ADDRESS_RTYPES
                        )
                        answer_asn = origin_of(addresses[0]) if addresses else None
                        append_response(
                            EcsResponse(subnet, scope, addresses, answer_asn)
                        )
                        if respect_scope and scope < source_len:
                            # Skip to the end of the declared scope block
                            # (subnet.truncate(scope).broadcast_value + 1).
                            cursor = (
                                subnet.value | ((1 << (32 - scope)) - 1)
                            ) + 1
                            continue
                    cursor = subnet.value + step
            result.queries_sent += sent
        finally:
            cache.enabled = was_enabled
        result.finished_at = self.clock.now
        return result

    def _query(
        self,
        subnet: Prefix,
        message_id: int,
        make_query,
        bucket: TokenBucket,
        result: EcsScanResult,
    ) -> EcsResponse | None:
        bucket.take()
        result.queries_sent += 1
        response = self.server.handle(make_query(subnet, message_id))
        answers = response.answers
        if response.rcode != Rcode.NOERROR or not answers:
            return None
        ecs = response.client_subnet
        scope = ecs.scope_prefix_length if ecs is not None else subnet.length
        # Inlined response.answer_addresses(): rdata of an A/AAAA record
        # is its address, and this runs once per answered query.
        addresses = tuple(
            rr.rdata for rr in answers if rr.rtype in _ADDRESS_RTYPES
        )
        answer_asn = self.routing.origin_of(addresses[0]) if addresses else None
        return EcsResponse(subnet, scope, addresses, answer_asn)

    def _sparse_scan(
        self,
        start: int,
        end: int,
        make_query,
        bucket: TokenBucket,
        result: EcsScanResult,
        message_id: int,
    ) -> int:
        """Sample unrouted space once per ``sparse_stride`` /24 blocks.

        Shares the scan's transaction-id counter (ids stay unique across
        routed and sparse probes) and records any answered probe in
        ``result.sparse_responses`` instead of discarding it.  Returns
        the advanced message id.
        """
        stride = self.settings.sparse_stride << 8
        cursor = (start + stride - 1) // stride * stride
        while cursor + 255 <= end:
            subnet = Prefix(4, cursor, 24)
            message_id = (message_id + 1) & 0xFFFF
            result.sparse_queries += 1
            response = self._query(subnet, message_id, make_query, bucket, result)
            if response is not None:
                result.sparse_answered += 1
                result.sparse_responses.append(response)
            cursor += stride
        return message_id


def _merge_spans(prefixes: list[Prefix]) -> list[tuple[int, int]]:
    """Merge sorted prefixes into disjoint (start, end) integer spans."""
    spans: list[tuple[int, int]] = []
    for prefix in prefixes:
        start, end = prefix.value, prefix.broadcast_value
        if spans and start <= spans[-1][1] + 1:
            spans[-1] = (spans[-1][0], max(spans[-1][1], end))
        else:
            spans.append((start, end))
    return spans
