"""Graceful drain for long-running campaigns (DESIGN.md §12).

An always-on monitoring campaign must be stoppable without corrupting
its persisted state or losing the round it is in the middle of.  The
:class:`DrainController` implements the standard two-signal contract:

* the **first** ``SIGTERM``/``SIGINT`` only sets a flag — the campaign
  finishes the in-flight month/round, persists its checkpoint and
  snapshots as usual, emits a ``campaign_interrupted`` event and returns
  normally (the CLI then exits 0);
* a **second** signal means the operator is done waiting: the previous
  handlers are restored and the signal re-raised, so the process dies
  with the default disposition (``KeyboardInterrupt`` for ``SIGINT``,
  immediate termination for ``SIGTERM``).

The controller touches nothing but its own flag from the handler, so it
is async-signal-safe in the Python sense; the campaign polls
:attr:`requested` at round boundaries.  Handlers can only be installed
from the main thread (a ``signal`` module restriction) — install from
worker threads raises ``ValueError``, which callers should treat as
"drain unavailable, run without it".
"""

from __future__ import annotations

import signal

#: The signals that request a drain.
DRAIN_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class DrainController:
    """First signal drains, second signal kills — see the module doc."""

    def __init__(self) -> None:
        self.requested = False
        self._previous: dict[int, object] = {}

    def install(self) -> "DrainController":
        """Take over the drain signals (idempotent); returns self."""
        if not self._previous:
            for signum in DRAIN_SIGNALS:
                # repro: allow[CONC002] drain controller: the one sanctioned signal-handling site
                self._previous[signum] = signal.signal(signum, self._handle)
        return self

    def uninstall(self) -> None:
        """Restore whatever handlers were installed before us."""
        for signum, previous in self._previous.items():
            # repro: allow[CONC002] drain controller: restoring the pre-install handlers
            signal.signal(signum, previous)
        self._previous = {}

    def _handle(self, signum, frame) -> None:
        if self.requested:
            # Second signal: hand the process back to the default
            # disposition and deliver the signal for real.
            self.uninstall()
            # repro: allow[CONC002] drain controller: second signal escalates to immediate exit
            signal.raise_signal(signum)
            return
        self.requested = True

    def __enter__(self) -> "DrainController":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()
