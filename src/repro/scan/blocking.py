"""DNS-level service-blocking classification.

Implements the Section 4.1 analysis: probes whose queries time out are
checked against a control domain (similar timeout shares mean network
issues, not blocking); probes whose resolvers answer but fail are
classified by response code; NXDOMAIN and NOERROR-without-data
responses are attributed to intentional blocking (the authoritative
server never returns either for the relay domains); REFUSED counts as
blocking once the resolver demonstrably works for the control domain;
answers pointing outside the ingress ASes are DNS hijacks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atlas.measurement import (
    DnsMeasurementResult,
    DnsMeasurementSpec,
    MeasurementTarget,
)
from repro.atlas.platform import AtlasPlatform
from repro.dns.message import Rcode
from repro.dns.rr import RRType
from repro.netmodel.bgp import RoutingTable


@dataclass
class BlockingReport:
    """Aggregated blocking statistics across probes."""

    total_probes: int
    timeouts: int
    failures_with_response: int
    rcode_counts: dict[str, int]
    hijacked_probes: int
    refused_verified: int
    blocked_probes: int
    timeouts_control: int = 0

    @property
    def timeout_share(self) -> float:
        """Fraction of probes with no DNS response at all."""
        return self.timeouts / self.total_probes if self.total_probes else 0.0

    @property
    def failure_share(self) -> float:
        """Fraction of probes that got a response but failed to resolve."""
        return (
            self.failures_with_response / self.total_probes
            if self.total_probes
            else 0.0
        )

    @property
    def blocked_share(self) -> float:
        """Fraction of probes classified as intentionally blocked."""
        return self.blocked_probes / self.total_probes if self.total_probes else 0.0

    @property
    def timeouts_attributed_to_blocking(self) -> bool:
        """Whether relay-domain timeouts exceed control-domain timeouts
        enough to look like blocking (the paper found they do not)."""
        if not self.total_probes:
            return False
        control_share = self.timeouts_control / self.total_probes
        return self.timeout_share > 1.5 * control_share + 0.01

    def rcode_share_of_failures(self, rcode_name: str) -> float:
        """Share of one rcode among failures-with-response."""
        if not self.failures_with_response:
            return 0.0
        return self.rcode_counts.get(rcode_name, 0) / self.failures_with_response

    def rcode_breakdown_shares(self) -> dict[str, float]:
        """All rcode shares among failures-with-response."""
        return {
            name: self.rcode_share_of_failures(name) for name in self.rcode_counts
        }


@dataclass
class _ProbeOutcome:
    timed_out: bool = False
    rcode: Rcode | None = None
    nodata: bool = False
    hijacked: bool = False
    succeeded: bool = False


def classify_blocking(
    platform: AtlasPlatform,
    routing: RoutingTable,
    relay_domain: str,
    control_domain: str,
    ingress_asns: set[int],
) -> BlockingReport:
    """Run the blocking study: relay + control measurements, classified."""
    relay_result = platform.run_dns(
        DnsMeasurementSpec(relay_domain, RRType.A, MeasurementTarget.LOCAL_RESOLVER)
    )
    control_result = platform.run_dns(
        DnsMeasurementSpec(control_domain, RRType.A, MeasurementTarget.LOCAL_RESOLVER)
    )
    return classify_from_results(relay_result, control_result, routing, ingress_asns)


def classify_from_results(
    relay_result: DnsMeasurementResult,
    control_result: DnsMeasurementResult,
    routing: RoutingTable,
    ingress_asns: set[int],
) -> BlockingReport:
    """Classify already-collected measurement results."""
    control_ok = {
        r.probe_id for r in control_result.results if r.succeeded
    }
    outcomes: dict[int, _ProbeOutcome] = {}
    for result in relay_result.results:
        outcome = _ProbeOutcome()
        if result.timed_out:
            outcome.timed_out = True
        elif result.succeeded:
            first = result.addresses[0]
            if routing.origin_of(first) in ingress_asns:
                outcome.succeeded = True
            else:
                outcome.hijacked = True
        else:
            outcome.rcode = result.rcode
            outcome.nodata = result.rcode == Rcode.NOERROR
        outcomes[result.probe_id] = outcome

    timeouts = sum(1 for o in outcomes.values() if o.timed_out)
    rcode_counts: dict[str, int] = {}
    refused_verified = 0
    blocked = 0
    failures = 0
    hijacked = sum(1 for o in outcomes.values() if o.hijacked)
    for probe_id, outcome in outcomes.items():
        if outcome.hijacked:
            blocked += 1
            continue
        if outcome.rcode is None:
            continue
        failures += 1
        name = outcome.rcode.name
        rcode_counts[name] = rcode_counts.get(name, 0) + 1
        if outcome.rcode in (Rcode.NXDOMAIN,) or outcome.nodata:
            # The authoritative server never returns these for the relay
            # domains: the resolver is forging them.
            blocked += 1
        elif outcome.rcode == Rcode.REFUSED and probe_id in control_ok:
            # Verified-functional resolver refusing only the relay domain.
            refused_verified += 1
            blocked += 1
    return BlockingReport(
        total_probes=len(outcomes),
        timeouts=timeouts,
        failures_with_response=failures,
        rcode_counts=rcode_counts,
        hijacked_probes=hijacked,
        refused_verified=refused_verified,
        blocked_probes=blocked,
        timeouts_control=sum(1 for r in control_result.results if r.timed_out),
    )
