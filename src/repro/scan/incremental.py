"""Incremental delta-scan engine: continuous monitoring under a budget.

A full ECS scan re-enumerates every routed scope block every month, yet
month over month the overwhelming majority of blocks answer identically
— deployment churn is bursty and localized.  This module turns the scan
layer into a monitoring loop that exploits that:

* a durable :class:`SnapshotStore` (the ``checkpoint.py`` atomic-write
  machinery, extended) persists the remembered scope blocks and answer
  fingerprints of each domain between rounds and between processes;

* each round, the :class:`DeltaScanEngine` probes **one canonical
  subnet per remembered scope block** — the block's start, which is a
  walk landing position in every full scan.  An unchanged block answers
  with its remembered scope, the scope skip covers the whole block, and
  one query has re-verified (and fully re-enumerated) it.  A changed
  block answers differently, and because the probe *is* a scan of the
  block's coverage range, the walk descends into the refined structure
  automatically — re-enumeration and classification are the same
  queries;

* a deterministic round-robin **refresh wheel** guarantees every block
  is re-probed within ``refresh_rounds`` rounds (content-keyed like
  ``faults/plan.py``, so the schedule is process- and worker-
  independent), while blocks whose answers changed recently carry a
  churn weight that keeps them probed every round until they go quiet;

* an explicit per-round **query budget** caps the probe volume; blocks
  due but beyond the budget are deferred (and counted), and the wheel's
  age rule pulls them back as overdue next round, preserving the
  coverage bound.

Change classification is rotation-robust: answers rotate through a
pod's relay roster, so two probes of an unchanged block rarely return
the same window.  The engine learns supplier rosters with a union-find
over answer windows (consecutive windows of one pod overlap, chaining
into one roster), and classifies a probed window against the block's
remembered roster: a window drawn from the same roster is rotation, a
disjoint window is a pod move.

Budget arithmetic.  Both relay domains share one assignment partition,
so their remembered block sets are identical.  The primary (QUIC)
domain runs its wheel at ``refresh_rounds``; the fallback domain
stretches its wheel by ``secondary_stretch`` and instead receives the
primary's changed ranges *in the same round* (cross-domain hot
propagation), keeping steady-state rounds well under the budget gate
while still detecting assignment-level churn within ``refresh_rounds``
on both domains.  (A change visible *only* on the secondary domain is
detected within ``refresh_rounds * secondary_stretch``.)
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CheckpointError
from repro.faults.plan import MASK64, MIX_MULT_A, MIX_MULT_B, fault_key
from repro.faults.storage import (
    InjectedStorageFault,
    atomic_write_json,
    count_handled,
)
from repro.scan.checkpoint import payload_crc, quarantine_warning
from repro.netmodel.addr import IPAddress, Prefix
from repro.relay.service import RELAY_DOMAIN_FALLBACK, RELAY_DOMAIN_QUIC
from repro.scan.ecs_scanner import EcsResponse, EcsScanResult, merge_ranges
from repro.telemetry import NULL_TELEMETRY, Telemetry

#: Bump when the snapshot layout changes; mismatched files are treated
#: as absent (the domain is simply re-seeded), not as errors.
SNAPSHOT_VERSION = 1

#: Detection-latency histogram bounds, in rounds.
DETECTION_BOUNDS = (0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0)


def _mix64(x: int) -> int:
    """The fault plane's splitmix64 finalizer (same published constants).

    Spreads the crc32 content key over 64 bits so the wheel residue
    ``key % period`` is uniform — rows sharing a residue class would
    otherwise cluster by address locality.
    """
    x &= MASK64
    x = ((x ^ (x >> 30)) * MIX_MULT_A) & MASK64
    x = ((x ^ (x >> 27)) * MIX_MULT_B) & MASK64
    return (x ^ (x >> 31)) & MASK64


def _row_key(domain: str, value: int) -> int:
    """Content-keyed wheel position of one remembered block.

    Depends only on the domain and the block's address — never on
    discovery order or worker count — so every process computes the
    same refresh schedule.
    """
    return _mix64(fault_key(f"{domain}:{value}"))


@dataclass(slots=True)
class BlockRow:
    """One remembered scope block: a walk landing and its last answer."""

    value: int
    scope: int
    addresses: tuple[IPAddress, ...]
    asn: int | None
    #: Roster id (union-find leaf; resolve through ``DomainSnapshot.find``).
    rid: int
    #: Round the block was last probed (-1 = only the seeding full scan).
    refreshed: int
    #: Round the block's answer last changed (-1 = never since seed).
    changed: int
    #: Churn weight: probed every round while positive, decremented on
    #: each quiet probe.
    weight: int
    #: Wheel position (content-keyed, recomputed on load, not persisted).
    key: int


@dataclass(slots=True)
class SparseRow:
    """One answered sparse probe of unrouted space."""

    value: int
    scope: int
    addresses: tuple[IPAddress, ...]
    asn: int | None


@dataclass(frozen=True, slots=True)
class ChangeEvent:
    """One detected answer change at a remembered block."""

    domain: str
    value: int
    scope: int
    #: ``structure`` (scope/AS/partition changed), ``answers`` (same
    #: structure, answers from a different roster — a pod move), or
    #: ``removed`` (the block boundary vanished).
    kind: str
    round: int
    #: Rounds since the block was last verified — the detection latency.
    latency: int


@dataclass
class DomainSnapshot:
    """Everything the delta engine remembers about one domain.

    ``rows`` tile the routed spans (every walk landing of the last full
    enumeration), ``sparse_rows`` are the answered unrouted probes, and
    ``rosters`` is the learned supplier-roster partition of all answer
    addresses (union-find: ``parent`` over roster ids, ``addr_rid``
    from address to leaf id).
    """

    domain: str
    source_len: int
    round: int
    seeded_at: float
    spans: list[tuple[int, int]]
    gaps: list[tuple[int, int]]
    rows: list[BlockRow] = field(default_factory=list)
    sparse_rows: list[SparseRow] = field(default_factory=list)
    rosters: list[set[IPAddress]] = field(default_factory=list)
    parent: list[int] = field(default_factory=list)
    addr_rid: dict[IPAddress, int] = field(default_factory=dict)
    #: Sparse probe positions a full scan of the current gaps issues
    #: (exact while every sparse probe answers, as in this world).
    sparse_positions: int = 0
    #: Largest answer window ever observed for this domain.  A row whose
    #: window is *smaller* is served by a supplier whose whole roster
    #: fits one window — its window set is rotation-invariant, giving an
    #: exact per-row change fingerprint (see :meth:`classify`).
    window_max: int = 0

    # -- union-find over answer rosters ---------------------------------

    def find(self, rid: int) -> int:
        """Root roster id, with path compression."""
        parent = self.parent
        root = rid
        while parent[root] != root:
            root = parent[root]
        while parent[rid] != root:
            parent[rid], rid = root, parent[rid]
        return root

    def _union(self, a: int, b: int) -> int:
        """Merge roster ``b`` into ``a`` (both roots); returns ``a``."""
        self.parent[b] = a
        self.rosters[a] |= self.rosters[b]
        self.rosters[b] = set()
        return a

    def absorb(self, addresses: tuple[IPAddress, ...]) -> int:
        """Fold one answer window into the rosters; returns its roster.

        Windows of one supplier chain together: consecutive rotation
        windows share all but one address, so any overlap unions their
        rosters.  A window with no known address starts a new roster.
        """
        rid = -1
        for address in addresses:
            known = self.addr_rid.get(address)
            if known is None:
                continue
            known = self.find(known)
            if rid < 0:
                rid = known
            elif known != rid:
                rid = self._union(rid, known)
        if rid < 0:
            rid = len(self.rosters)
            self.rosters.append(set())
            self.parent.append(rid)
        roster = self.rosters[rid]
        for address in addresses:
            roster.add(address)
            self.addr_rid[address] = rid
        return rid

    def classify(
        self, row: BlockRow, addresses: tuple[IPAddress, ...]
    ) -> str:
        """A probed window against the block's remembered answers.

        Saturated rings first: a window shorter than the domain's
        maximum is its supplier's *entire* roster, so rotation can never
        change it as a set — any set change is a supplier change
        (``moved``).  This stays exact even where the roster partition
        below has been chained together by spilled suppliers.

        Otherwise, the learned roster partition: ``same`` — every
        address known (pure rotation); ``grow`` — some known (rotation
        exposing new roster members); ``moved`` — none known (answers
        from a disjoint supplier: a pod move).
        """
        old = row.addresses
        if len(old) < self.window_max or len(addresses) < self.window_max:
            return "same" if set(addresses) == set(old) else "moved"
        roster = self.rosters[self.find(row.rid)]
        hits = sum(1 for address in addresses if address in roster)
        if hits == len(addresses):
            return "same"
        if hits:
            return "grow"
        return "moved"


# ----------------------------------------------------------------------
# Snapshot persistence (the checkpoint codec, extended)
# ----------------------------------------------------------------------


def encode_snapshot(snapshot: DomainSnapshot) -> dict:
    """One domain snapshot as a JSON-safe dict.

    Answer windows are deduplicated into a table (rows of one supplier
    share windows heavily); rosters are compacted to their union-find
    roots in first-use order, so the encoding is independent of merge
    history.
    """
    table_index: dict[tuple, int] = {}
    table: list = []
    roster_index: dict[int, int] = {}
    rosters: list = []

    def window_ref(addresses: tuple[IPAddress, ...]) -> int:
        key = tuple((a.version, a.value) for a in addresses)
        ref = table_index.get(key)
        if ref is None:
            ref = len(table)
            table_index[key] = ref
            table.append([list(pair) for pair in key])
        return ref

    rows: list = []
    for row in snapshot.rows:
        root = snapshot.find(row.rid)
        rid = roster_index.get(root)
        if rid is None:
            rid = len(rosters)
            roster_index[root] = rid
            rosters.append(
                sorted(
                    [a.version, a.value] for a in snapshot.rosters[root]
                )
            )
        rows.append(
            [
                row.value,
                row.scope,
                window_ref(row.addresses),
                row.asn,
                rid,
                row.refreshed,
                row.changed,
                row.weight,
            ]
        )
    sparse = [
        [row.value, row.scope, window_ref(row.addresses), row.asn]
        for row in snapshot.sparse_rows
    ]
    return {
        "domain": snapshot.domain,
        "source_len": snapshot.source_len,
        "round": snapshot.round,
        "seeded_at": snapshot.seeded_at,
        "spans": [list(span) for span in snapshot.spans],
        "gaps": [list(gap) for gap in snapshot.gaps],
        "table": table,
        "rows": rows,
        "sparse": sparse,
        "rosters": rosters,
        "sparse_positions": snapshot.sparse_positions,
        "window_max": snapshot.window_max,
    }


def decode_snapshot(data: dict) -> DomainSnapshot:
    """Rebuild a :func:`encode_snapshot` snapshot (wheel keys recomputed)."""
    domain = data["domain"]
    snapshot = DomainSnapshot(
        domain=domain,
        source_len=data["source_len"],
        round=data["round"],
        seeded_at=data["seeded_at"],
        spans=[tuple(span) for span in data["spans"]],
        gaps=[tuple(gap) for gap in data["gaps"]],
        sparse_positions=data["sparse_positions"],
        window_max=data["window_max"],
    )
    windows = [
        tuple(IPAddress(version, value) for version, value in pairs)
        for pairs in data["table"]
    ]
    for pairs in data["rosters"]:
        rid = len(snapshot.rosters)
        roster = {IPAddress(version, value) for version, value in pairs}
        snapshot.rosters.append(roster)
        snapshot.parent.append(rid)
        for address in roster:
            snapshot.addr_rid[address] = rid
    snapshot.rows = [
        BlockRow(
            value=value,
            scope=scope,
            addresses=windows[ref],
            asn=asn,
            rid=rid,
            refreshed=refreshed,
            changed=changed,
            weight=weight,
            key=_row_key(domain, value),
        )
        for value, scope, ref, asn, rid, refreshed, changed, weight in data["rows"]
    ]
    snapshot.sparse_rows = [
        SparseRow(value=value, scope=scope, addresses=windows[ref], asn=asn)
        for value, scope, ref, asn in data["sparse"]
    ]
    return snapshot


class SnapshotStore:
    """Durable per-domain snapshots (atomic writes, fingerprint-guarded).

    Same contract as :class:`~repro.scan.checkpoint.CampaignCheckpointer`:
    temp file + ``os.replace`` so a kill mid-write never leaves a torn
    snapshot; missing/torn/version-mismatched files read as None (the
    domain is re-seeded); a *fingerprint* mismatch raises
    :class:`~repro.errors.CheckpointError` — resuming a delta loop
    against different result-affecting settings (or a different campaign
    mode) would silently corrupt the accumulated state.
    """

    def __init__(
        self,
        directory: str | Path,
        fingerprint: dict,
        *,
        gate=None,
        registry=None,
    ) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.gate = gate
        self.registry = registry

    def path_for(self, domain: str) -> Path:
        """Where one domain's snapshot lives."""
        return self.directory / f"snapshot-{domain.strip('.')}.json"

    def save(self, snapshot: DomainSnapshot, attempt: int = 0) -> Path:
        """Durably and atomically persist one domain snapshot.

        ``attempt`` keys the storage fault gate's draw: the engine's
        degraded-mode retry loop passes fresh attempt numbers, so an
        injected failure is transient — exactly like a retried query in
        the packet plane.
        """
        path = self.path_for(snapshot.domain)
        document = {
            "version": SNAPSHOT_VERSION,
            "fingerprint": self.fingerprint,
            **encode_snapshot(snapshot),
        }
        document["crc"] = payload_crc(document)
        atomic_write_json(
            path,
            document,
            gate=self.gate,
            surface="snapshot",
            item=f"{snapshot.domain}:{snapshot.round}",
            attempt=attempt,
            registry=self.registry,
        )
        return path

    def load(self, domain: str) -> DomainSnapshot | None:
        """One domain's snapshot, or None when it must be re-seeded."""
        path = self.path_for(domain)
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            quarantine_warning(path, f"unparseable JSON ({exc})")
            return None
        except OSError:
            return None
        if not isinstance(document, dict):
            quarantine_warning(path, "not a JSON object")
            return None
        if document.get("version") != SNAPSHOT_VERSION:
            return None
        crc = document.get("crc")
        if crc is not None and crc != payload_crc(document):
            quarantine_warning(path, "checksum mismatch (bit flip?)")
            return None
        if document.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"snapshot {path} was written under different "
                "result-affecting settings (or campaign mode); refusing "
                "to resume from it"
            )
        return decode_snapshot(document)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


@dataclass
class DeltaRound:
    """One monitoring round's outcome and accounting."""

    index: int
    started_at: float
    finished_at: float = 0.0
    #: Queries actually issued this round (routed probes + sparse).
    queries_sent: int = 0
    sparse_queries: int = 0
    #: Due blocks pushed to the next round by the query budget.
    budget_deferred: int = 0
    #: What a full rescan of every domain would have cost.
    full_cost: int = 0
    #: Remembered blocks re-probed this round.
    refreshed_blocks: int = 0
    changed_blocks: int = 0
    new_blocks: int = 0
    removed_blocks: int = 0
    events: list[ChangeEvent] = field(default_factory=list)
    #: Accumulated per-domain state, as full-scan-shaped results.
    results: dict[str, EcsScanResult] = field(default_factory=dict)

    @property
    def queries_frac(self) -> float:
        """This round's cost as a fraction of a full rescan."""
        if not self.full_cost:
            return 0.0
        return self.queries_sent / self.full_cost


class DeltaScanEngine:
    """Plans and executes delta-scan rounds over persisted snapshots.

    ``executor`` is anything with the campaign scan front-end shape —
    an :class:`~repro.scan.ecs_scanner.EcsScanner` or a
    :class:`~repro.scan.sharding.ShardedCampaignExecutor` — exposing
    ``scan()`` (seeding) and ``scan_regions()`` (rounds).
    """

    def __init__(
        self,
        executor,
        store: SnapshotStore | None = None,
        *,
        domains: tuple[str, ...] = (RELAY_DOMAIN_QUIC, RELAY_DOMAIN_FALLBACK),
        budget: int | None = None,
        refresh_rounds: int = 3,
        secondary_stretch: int = 2,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        scanner = getattr(executor, "scanner", executor)
        if not scanner.settings.prune_unrouted:
            raise ValueError(
                "delta scanning requires prune_unrouted: remembered blocks "
                "tile the routed spans"
            )
        if refresh_rounds < 1:
            raise ValueError("refresh_rounds must be >= 1")
        if secondary_stretch < 1:
            raise ValueError("secondary_stretch must be >= 1")
        if budget is not None and budget < 1:
            raise ValueError("budget must be positive (or None)")
        self.executor = executor
        self.scanner = scanner
        self.store = store
        self.domains = tuple(domains)
        self.budget = budget
        self.refresh_rounds = refresh_rounds
        self.secondary_stretch = secondary_stretch
        self.telemetry = telemetry
        self.snapshots: dict[str, DomainSnapshot] = {}
        self.rounds: list[DeltaRound] = []
        #: Optional live monitoring plane (repro.monitor): a StatusBoard
        #: receiving coarse per-round publishes and an EventLog receiving
        #: round_summary / churn_detected / budget_deferral records.
        self.status = None
        self.events = None

    def period(self, domain: str) -> int:
        """The domain's refresh-wheel period, in rounds."""
        if domain == self.domains[0]:
            return self.refresh_rounds
        return self.refresh_rounds * self.secondary_stretch

    # -- seeding ---------------------------------------------------------

    def seed(self, domain: str) -> EcsScanResult:
        """Full scan of one domain, remembered as the baseline snapshot."""
        result = self.executor.scan(domain)
        spans, gaps = self.scanner.routed_ranges()
        snapshot = DomainSnapshot(
            domain=domain,
            source_len=self.scanner.settings.source_prefix_len,
            round=0,
            seeded_at=result.started_at,
            spans=[tuple(span) for span in spans],
            gaps=[tuple(gap) for gap in gaps],
            sparse_positions=result.sparse_queries,
        )
        rid_cache: dict[int, int] = {}
        for response in result.responses:
            addresses = response.addresses
            if len(addresses) > snapshot.window_max:
                snapshot.window_max = len(addresses)
            rid = rid_cache.get(id(addresses))
            if rid is None:
                rid = snapshot.absorb(addresses)
                rid_cache[id(addresses)] = rid
            value = response.subnet.value
            snapshot.rows.append(
                BlockRow(
                    value=value,
                    scope=response.scope,
                    addresses=addresses,
                    asn=response.answer_asn,
                    rid=rid,
                    refreshed=-1,
                    changed=-1,
                    weight=0,
                    key=_row_key(domain, value),
                )
            )
        snapshot.rows.sort(key=lambda row: row.value)
        snapshot.sparse_rows = [
            SparseRow(
                value=response.subnet.value,
                scope=response.scope,
                addresses=response.addresses,
                asn=response.answer_asn,
            )
            for response in result.sparse_responses
        ]
        snapshot.sparse_rows.sort(key=lambda row: row.value)
        for row in snapshot.sparse_rows:
            if len(row.addresses) > snapshot.window_max:
                snapshot.window_max = len(row.addresses)
        self.snapshots[domain] = snapshot
        if self.store is not None:
            self._persist_snapshot(snapshot)
        if self.events is not None:
            self.events.emit(
                "delta_seeded",
                domain=domain,
                rows=len(snapshot.rows),
                sparse=snapshot.sparse_positions,
                queries=result.queries_sent,
            )
        return result

    def ensure_seeded(self) -> dict[str, EcsScanResult | None]:
        """Load or seed every domain; fresh seed scans are returned.

        A domain restored from the store maps to None (no scan ran);
        callers that archive scan results record only the fresh ones.
        """
        seeds: dict[str, EcsScanResult | None] = {}
        for domain in self.domains:
            if domain in self.snapshots:
                continue
            snapshot = None
            if self.store is not None:
                snapshot = self.store.load(domain)
            if snapshot is not None:
                self.snapshots[domain] = snapshot
                seeds[domain] = None
            else:
                seeds[domain] = self.seed(domain)
        return seeds

    def reseed_from_store(self) -> None:
        """Degraded-mode recovery: drop in-memory state and re-seed.

        Used by the campaign when a round is abandoned mid-flight
        (worker respawn exhaustion): whatever partial per-domain state
        the failed round left in :attr:`snapshots` is discarded, and the
        engine restores the last *persisted* snapshots — or runs fresh
        seed scans when no store is attached — so the next round starts
        from a consistent baseline.
        """
        self.snapshots.clear()
        self.ensure_seeded()

    # -- rounds ----------------------------------------------------------

    def run_round(self) -> DeltaRound:
        """One monitoring round across all domains under the budget."""
        for domain in self.domains:
            if domain not in self.snapshots:
                raise ValueError(
                    f"domain {domain!r} is not seeded; call ensure_seeded()"
                )
        index = self.snapshots[self.domains[0]].round
        if self.status is not None:
            self.status.publish(phase="delta_round", round=index)
        rnd = DeltaRound(index=index, started_at=self.scanner.clock.now)
        spans, gaps = self.scanner.routed_ranges()
        spans = [tuple(span) for span in spans]
        gaps = [tuple(gap) for gap in gaps]
        budget_state = {"left": self.budget}
        hot_ranges: list[tuple[int, int]] = []
        for domain in self.domains:
            self._round_domain(domain, rnd, spans, gaps, hot_ranges, budget_state)
        rnd.finished_at = self.scanner.clock.now
        rnd.full_cost = sum(
            len(snapshot.rows) + snapshot.sparse_positions
            for snapshot in self.snapshots.values()
        )
        unpersisted = 0
        for domain in self.domains:
            snapshot = self.snapshots[domain]
            snapshot.round = index + 1
            if self.store is not None and not self._persist_snapshot(snapshot):
                unpersisted += 1
        registry = self.telemetry.registry
        if registry.enabled:
            registry.counter("delta.rounds").inc()
            histogram = registry.histogram(
                "delta.detection_rounds", DETECTION_BOUNDS
            )
            for event in rnd.events:
                histogram.observe(float(event.latency))
        self.rounds.append(rnd)
        if self.events is not None:
            for event in rnd.events:
                self.events.emit(
                    "churn_detected",
                    domain=event.domain,
                    value=event.value,
                    scope=event.scope,
                    change=event.kind,
                    round=event.round,
                    latency=event.latency,
                )
            if rnd.budget_deferred:
                self.events.emit(
                    "budget_deferral", round=index, deferred=rnd.budget_deferred
                )
            self.events.emit(
                "round_summary",
                round=index,
                queries=rnd.queries_sent,
                sparse=rnd.sparse_queries,
                full_cost=rnd.full_cost,
                frac=round(rnd.queries_frac, 6),
                changed=rnd.changed_blocks,
                new=rnd.new_blocks,
                removed=rnd.removed_blocks,
                events=len(rnd.events),
            )
        if self.status is not None:
            self.status.add("rounds_completed")
            self.status.add("churn_events", len(rnd.events))
            if rnd.budget_deferred:
                self.status.add("budget_deferred", rnd.budget_deferred)
            if self.store is not None and not unpersisted:
                self.status.record_checkpoint(
                    self.scanner.clock.now, kind="snapshot"
                )
        return rnd

    #: Degraded-mode snapshot persistence policy: save attempts per
    #: round (each a fresh storage-gate draw) and the wall backoff base
    #: between them.
    SNAPSHOT_SAVE_ATTEMPTS = 3
    SNAPSHOT_BACKOFF_SECONDS = 0.01

    def _persist_snapshot(self, snapshot: DomainSnapshot) -> bool:
        """Persist one round's snapshot, degrading instead of aborting.

        Save failures retry with a short backoff (the attempt number is
        part of the storage gate's key, so injected faults are
        transient); after the last attempt the *previous* on-disk
        snapshot is carried forward and the round marked unpersisted —
        the in-memory snapshot stays current, so the next successful
        save catches the store up and a resume from the stale file
        merely re-runs a round it would have run anyway.  Returns
        whether the snapshot landed on disk.
        """
        injected = 0
        registry = self.telemetry.registry
        for attempt in range(self.SNAPSHOT_SAVE_ATTEMPTS):
            try:
                self.store.save(snapshot, attempt=attempt)
            except OSError as exc:
                if isinstance(exc, InjectedStorageFault):
                    injected += 1
                if registry.enabled:
                    registry.counter(
                        "persistence.save_failures", surface="snapshot"
                    ).inc()
                if attempt + 1 < self.SNAPSHOT_SAVE_ATTEMPTS:
                    time.sleep(self.SNAPSHOT_BACKOFF_SECONDS * (attempt + 1))
            else:
                count_handled(registry, "snapshot", injected, 0)
                return True
        count_handled(registry, "snapshot", 0, injected)
        if registry.enabled:
            registry.counter("persistence.rounds_unpersisted").inc()
        if self.status is not None:
            self.status.publish(snapshot_degraded=True)
            self.status.add("rounds_unpersisted")
        if self.events is not None:
            self.events.emit(
                "persistence_degraded",
                surface="snapshot",
                domain=snapshot.domain,
                round=snapshot.round,
            )
        return False

    def _round_domain(
        self,
        domain: str,
        rnd: DeltaRound,
        spans: list[tuple[int, int]],
        gaps: list[tuple[int, int]],
        hot_ranges: list[tuple[int, int]],
        budget_state: dict,
    ) -> None:
        snapshot = self.snapshots[domain]
        index = rnd.index
        period = self.period(domain)
        primary = domain == self.domains[0]

        # Routing diff: spans/gaps not set-identical to the remembered
        # ones are re-scanned wholesale (walks restart per span, so a
        # merged or split span shifts landings near its boundaries —
        # per-block surgery there is not worth the risk).
        old_spans = set(snapshot.spans)
        fresh_spans = [span for span in spans if span not in old_spans]
        stable_spans = [span for span in spans if span in old_spans]
        old_gaps = set(snapshot.gaps)
        fresh_gaps = [gap for gap in gaps if gap not in old_gaps]
        stable_gaps = [gap for gap in gaps if gap in old_gaps]

        rows = self._rows_in_ranges(snapshot.rows, stable_spans)
        removed_by_routing = len(snapshot.rows) - len(rows)
        kept_sparse = self._sparse_in_ranges(snapshot.sparse_rows, stable_gaps)
        dropped_sparse = len(snapshot.sparse_rows) - len(kept_sparse)

        selected = self._select(
            rows, index, period, primary, hot_ranges, budget_state, rnd
        )

        ranges = self._coverage_ranges(rows, sorted(selected), stable_spans)
        ranges.extend(fresh_spans)
        if not ranges and not fresh_gaps:
            # Nothing due this round (budget exhausted or quiet wheel
            # slot): the accumulated state simply carries over.
            snapshot.rows = rows
            snapshot.sparse_rows = kept_sparse
            snapshot.spans = spans
            snapshot.gaps = gaps
            snapshot.sparse_positions -= dropped_sparse
            rnd.removed_blocks += removed_by_routing
            rnd.results[domain] = self._accumulated(snapshot, rnd.started_at)
            self._record_domain(domain, 0, removed_by_routing, 0)
            return

        before = budget_state["left"]
        result = self.executor.scan_regions(domain, ranges, fresh_gaps)
        rnd.queries_sent += result.queries_sent
        rnd.sparse_queries += result.sparse_queries
        if before is not None:
            # Replace the planned one-query-per-block charge with the
            # actual cost (descent into changed blocks, sparse probes).
            budget_state["left"] = before - result.queries_sent

        out_rows, events, stats = self._fold(
            snapshot, rows, merge_ranges(ranges), result.responses, index
        )
        snapshot.rows = out_rows
        snapshot.spans = spans
        snapshot.gaps = gaps
        new_sparse = [
            SparseRow(
                value=response.subnet.value,
                scope=response.scope,
                addresses=response.addresses,
                asn=response.answer_asn,
            )
            for response in result.sparse_responses
        ]
        snapshot.sparse_rows = sorted(
            kept_sparse + new_sparse, key=lambda row: row.value
        )
        snapshot.sparse_positions += result.sparse_queries - dropped_sparse

        rnd.events.extend(events)
        rnd.refreshed_blocks += stats["refreshed"]
        rnd.changed_blocks += stats["changed"]
        rnd.new_blocks += stats["new"]
        rnd.removed_blocks += stats["removed"] + removed_by_routing
        if primary:
            hot_ranges.extend(stats["hot_ranges"])
        rnd.results[domain] = self._accumulated(snapshot, rnd.started_at)
        self._record_domain(
            domain,
            stats["refreshed"],
            stats["removed"] + removed_by_routing,
            result.queries_sent,
            stats,
        )

    # -- planning helpers ------------------------------------------------

    @staticmethod
    def _rows_in_ranges(
        rows: list[BlockRow], ranges: list[tuple[int, int]]
    ) -> list[BlockRow]:
        """Rows whose block start lies inside one of the sorted ranges."""
        out: list[BlockRow] = []
        bounds = sorted(ranges)
        position = 0
        for row in rows:
            while position < len(bounds) and bounds[position][1] < row.value:
                position += 1
            if position < len(bounds) and bounds[position][0] <= row.value:
                out.append(row)
        return out

    @staticmethod
    def _sparse_in_ranges(
        rows: list[SparseRow], ranges: list[tuple[int, int]]
    ) -> list[SparseRow]:
        out: list[SparseRow] = []
        bounds = sorted(ranges)
        position = 0
        for row in rows:
            while position < len(bounds) and bounds[position][1] < row.value:
                position += 1
            if position < len(bounds) and bounds[position][0] <= row.value:
                out.append(row)
        return out

    def _select(
        self,
        rows: list[BlockRow],
        index: int,
        period: int,
        primary: bool,
        hot_ranges: list[tuple[int, int]],
        budget_state: dict,
        rnd: DeltaRound,
    ) -> set[int]:
        """Row indices to probe this round, in budget priority order.

        Mandatory work first (ranges the primary domain just flagged as
        changed — never deferred, so cross-domain detection stays within
        the round), then churn-weighted hot rows, then wheel-due rows by
        descending age; the last two defer once the budget runs out.
        The age rule (``index - refreshed >= period``) re-arms deferred
        rows every following round until they are probed.
        """
        selected: set[int] = set()
        if not primary and hot_ranges:
            bounds = merge_ranges(hot_ranges)
            position = 0
            for i, row in enumerate(rows):
                while position < len(bounds) and bounds[position][1] < row.value:
                    position += 1
                if position < len(bounds) and bounds[position][0] <= row.value:
                    selected.add(i)
                    if budget_state["left"] is not None:
                        budget_state["left"] -= 1
        hot = [
            i
            for i, row in enumerate(rows)
            if i not in selected and row.weight > 0
        ]
        hot.sort(key=lambda i: (-rows[i].weight, rows[i].key))
        due = [
            i
            for i, row in enumerate(rows)
            if i not in selected
            and row.weight <= 0
            and (
                rows[i].key % period == index % period
                or index - rows[i].refreshed >= period
            )
        ]
        due.sort(key=lambda i: (rows[i].refreshed, rows[i].key))
        for i in hot + due:
            if budget_state["left"] is not None and budget_state["left"] <= 0:
                rnd.budget_deferred += 1
                continue
            selected.add(i)
            if budget_state["left"] is not None:
                budget_state["left"] -= 1
        return selected

    @staticmethod
    def _coverage_ranges(
        rows: list[BlockRow],
        indices: list[int],
        spans: list[tuple[int, int]],
    ) -> list[tuple[int, int]]:
        """The selected rows' remembered coverage ranges, in order.

        Rows tile their span, so a row's coverage runs to the next
        row's start (or the span end for the last row of a span).
        """
        out: list[tuple[int, int]] = []
        bounds = sorted(spans)
        position = 0
        for i in indices:
            row = rows[i]
            while position < len(bounds) and bounds[position][1] < row.value:
                position += 1
            span_end = bounds[position][1]
            if i + 1 < len(rows) and rows[i + 1].value <= span_end:
                out.append((row.value, rows[i + 1].value - 1))
            else:
                out.append((row.value, span_end))
        return out

    # -- folding ---------------------------------------------------------

    def _fold(
        self,
        snapshot: DomainSnapshot,
        rows: list[BlockRow],
        scanned: list[tuple[int, int]],
        responses: list[EcsResponse],
        index: int,
    ) -> tuple[list[BlockRow], list[ChangeEvent], dict]:
        """Merge one round's scanned ranges back into the remembered rows.

        Walks remembered rows and scanned ranges in address order.  Rows
        outside every scanned range carry over; rows inside are replaced
        by the fresh answers and classified against their predecessors.
        A fresh answer whose scope extends *past* its scanned range (a
        withdrawn unit reverting to the coarse fallback answer) swallows
        the remembered rows under the extension — and any later scanned
        range that now lies inside a scope skip, whose answers a full
        scan would never produce.  Scopes are >= /16 and blocks never
        cross a /16 boundary in this world, so swallowed rows are always
        swallowed whole.
        """
        domain = snapshot.domain
        out: list[BlockRow] = []
        events: list[ChangeEvent] = []
        hot_local: list[tuple[int, int]] = []
        stats: dict = {"refreshed": 0, "changed": 0, "new": 0, "removed": 0}
        span_ends = {start: end for start, end in snapshot.spans}
        span_bounds = sorted(snapshot.spans)
        oi = 0
        ri = 0
        swallow_until = -1
        for rs, re_ in scanned:
            while oi < len(rows) and rows[oi].value < rs:
                old = rows[oi]
                oi += 1
                if old.value <= swallow_until:
                    stats["removed"] += 1
                    events.append(
                        ChangeEvent(
                            domain,
                            old.value,
                            old.scope,
                            "removed",
                            index,
                            index - old.refreshed,
                        )
                    )
                    continue
                out.append(old)
            if rs <= swallow_until:
                while ri < len(responses) and responses[ri].subnet.value <= re_:
                    ri += 1
                while oi < len(rows) and rows[oi].value <= re_:
                    stats["removed"] += 1
                    oi += 1
                continue
            range_new: list[EcsResponse] = []
            while ri < len(responses) and responses[ri].subnet.value <= re_:
                range_new.append(responses[ri])
                ri += 1
            range_old: list[BlockRow] = []
            while oi < len(rows) and rows[oi].value <= re_:
                range_old.append(rows[oi])
                oi += 1
            base_refreshed = min(
                (old.refreshed for old in range_old), default=index
            )
            fresh_rows, range_events, range_hot = self._fold_range(
                snapshot, range_old, range_new, index, base_refreshed, stats
            )
            out.extend(fresh_rows)
            events.extend(range_events)
            if range_hot and range_new:
                hot_local.append((rs, re_))
            if range_new:
                last = range_new[-1]
                ext = last.subnet.value
                if last.scope < 32:
                    ext |= (1 << (32 - last.scope)) - 1
                span_end = self._span_end_at(span_bounds, span_ends, rs)
                eff_end = min(ext, span_end)
                if eff_end > re_:
                    swallow_until = eff_end
                    if range_hot:
                        hot_local[-1] = (rs, eff_end)
                    while oi < len(rows) and rows[oi].value <= eff_end:
                        old = rows[oi]
                        oi += 1
                        stats["removed"] += 1
                        events.append(
                            ChangeEvent(
                                domain,
                                old.value,
                                old.scope,
                                "removed",
                                index,
                                index - old.refreshed,
                            )
                        )
        while oi < len(rows):
            old = rows[oi]
            oi += 1
            if old.value <= swallow_until:
                stats["removed"] += 1
                continue
            out.append(old)
        stats["hot_ranges"] = hot_local
        return out, events, stats

    def _fold_range(
        self,
        snapshot: DomainSnapshot,
        range_old: list[BlockRow],
        range_new: list[EcsResponse],
        index: int,
        base_refreshed: int,
        stats: dict,
    ) -> tuple[list[BlockRow], list[ChangeEvent], bool]:
        """Classify one scanned range's fresh answers against its rows."""
        domain = snapshot.domain
        refresh = self.refresh_rounds
        old_by_value = {old.value: old for old in range_old}
        matched: set[int] = set()
        fresh_rows: list[BlockRow] = []
        events: list[ChangeEvent] = []
        hot = False
        for response in range_new:
            value = response.subnet.value
            addresses = response.addresses
            if len(addresses) > snapshot.window_max:
                snapshot.window_max = len(addresses)
            old = old_by_value.get(value)
            event_kind = None
            if old is None:
                event_kind = "structure"
                latency = index - base_refreshed
                stats["new"] += 1
            else:
                matched.add(value)
                stats["refreshed"] += 1
                latency = index - old.refreshed
                if old.scope != response.scope or old.asn != response.answer_asn:
                    event_kind = "structure"
                else:
                    verdict = snapshot.classify(old, addresses)
                    if verdict == "moved":
                        event_kind = "answers"
                if event_kind is not None:
                    stats["changed"] += 1
            rid = snapshot.absorb(addresses)
            if event_kind is not None:
                events.append(
                    ChangeEvent(
                        domain,
                        value,
                        response.scope,
                        event_kind,
                        index,
                        latency,
                    )
                )
                hot = True
            quiet = event_kind is None and old is not None
            fresh_rows.append(
                BlockRow(
                    value=value,
                    scope=response.scope,
                    addresses=addresses,
                    asn=response.answer_asn,
                    rid=rid,
                    refreshed=index,
                    changed=old.changed if quiet else index,
                    weight=max(old.weight - 1, 0) if quiet else refresh,
                    key=_row_key(domain, value),
                )
            )
        for old in range_old:
            if old.value not in matched:
                stats["removed"] += 1
                events.append(
                    ChangeEvent(
                        domain,
                        old.value,
                        old.scope,
                        "removed",
                        index,
                        index - old.refreshed,
                    )
                )
                hot = True
        return fresh_rows, events, hot

    @staticmethod
    def _span_end_at(
        span_bounds: list[tuple[int, int]], span_ends: dict, value: int
    ) -> int:
        """End of the current routed span containing ``value``.

        Scope skips clamp at span ends in a full scan (the walk restarts
        per span), so an extension never swallows across a span gap.
        """
        end = span_ends.get(value)
        if end is not None:
            return end
        for start, stop in span_bounds:
            if start <= value <= stop:
                return stop
        return value

    # -- accumulated state ----------------------------------------------

    def _accumulated(
        self, snapshot: DomainSnapshot, started_at: float
    ) -> EcsScanResult:
        """The remembered state as a full-scan-shaped result.

        Row for row what a full scan of the current routed space would
        return (windows are drawn from whichever round last refreshed
        each block, but rotation saturates each supplier's roster, so
        the aggregate address views match a fresh full scan — the
        equivalence the delta suite asserts).
        """
        source_len = snapshot.source_len
        prefixes: dict[int, Prefix] = {}

        def subnet(value: int) -> Prefix:
            prefix = prefixes.get(value)
            if prefix is None:
                prefix = prefixes[value] = Prefix(4, value, source_len)
            return prefix

        result = EcsScanResult(
            domain=snapshot.domain, started_at=started_at
        )
        result.finished_at = self.scanner.clock.now
        result.queries_sent = len(snapshot.rows) + snapshot.sparse_positions
        result.sparse_queries = snapshot.sparse_positions
        result.sparse_answered = len(snapshot.sparse_rows)
        result.responses = [
            EcsResponse(subnet(row.value), row.scope, row.addresses, row.asn)
            for row in snapshot.rows
        ]
        result.sparse_responses = [
            EcsResponse(subnet(row.value), row.scope, row.addresses, row.asn)
            for row in snapshot.sparse_rows
        ]
        return result

    def accumulated(self, domain: str) -> EcsScanResult:
        """The current accumulated state of one domain."""
        snapshot = self.snapshots[domain]
        return self._accumulated(snapshot, self.scanner.clock.now)

    # -- telemetry -------------------------------------------------------

    def _record_domain(
        self,
        domain: str,
        refreshed: int,
        removed: int,
        queries: int,
        stats: dict | None = None,
    ) -> None:
        registry = self.telemetry.registry
        if not registry.enabled:
            return
        snapshot = self.snapshots[domain]
        full_cost = len(snapshot.rows) + snapshot.sparse_positions
        registry.counter("delta.probes_sent", domain=domain).inc(queries)
        registry.counter("delta.queries_saved", domain=domain).inc(
            max(full_cost - queries, 0)
        )
        registry.counter(
            "delta.blocks", domain=domain, kind="refreshed"
        ).inc(refreshed)
        registry.counter("delta.blocks", domain=domain, kind="removed").inc(
            removed
        )
        if stats is not None:
            registry.counter("delta.blocks", domain=domain, kind="new").inc(
                stats["new"]
            )
            registry.counter(
                "delta.blocks", domain=domain, kind="changed"
            ).inc(stats["changed"])


# ----------------------------------------------------------------------
# Equivalence digests
# ----------------------------------------------------------------------


def result_digest(result: EcsScanResult) -> dict:
    """A comparable fingerprint of one scan result's measured state.

    Covers the row structure (subnet, scope, answer AS — rotation-
    independent) and the aggregate address views (saturated unions, so
    rotation-independent too); per-row answer windows are deliberately
    excluded — they depend on rotation phase, which differs between any
    two scans by design.
    """
    rows = sorted(
        (r.subnet.value, r.subnet.length, r.scope, r.answer_asn or -1)
        for r in result.responses
    )
    sparse = sorted(
        (r.subnet.value, r.subnet.length, r.scope, r.answer_asn or -1)
        for r in result.sparse_responses
    )
    addresses = sorted((a.version, a.value) for a in result.addresses())
    by_asn = {
        asn: sorted((a.version, a.value) for a in bucket)
        for asn, bucket in result.addresses_by_asn().items()
    }
    return {
        "rows": rows,
        "sparse": sparse,
        "addresses": addresses,
        "by_asn": by_asn,
        "slash24s": result.slash24s_by_asn(),
    }
