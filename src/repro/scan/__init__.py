"""The paper's measurement pipeline.

* :mod:`repro.scan.ecs_scanner` — ECS-based ingress enumeration over the
  routed IPv4 space (the core methodological contribution);
* :mod:`repro.scan.atlas_scanner` — RIPE-Atlas-style validation, IPv6
  enumeration, and resolver surveys;
* :mod:`repro.scan.blocking` — DNS-level service-blocking classification;
* :mod:`repro.scan.relay_scanner` — scans through the relay (egress
  operator and address rotation);
* :mod:`repro.scan.quic_scanner` — QScanner/ZMap-style QUIC probing of
  ingress nodes;
* :mod:`repro.scan.incremental` — snapshot-seeded delta scanning for
  continuous monitoring under a per-round query budget.
"""

from repro.scan.atlas_scanner import (
    AtlasIngressScanner,
    AtlasValidation,
    Ipv6IngressReport,
)
from repro.scan.blocking import BlockingReport, classify_blocking
from repro.scan.campaign import MonthlyScan, ScanCampaign
from repro.scan.checkpoint import (
    CampaignCheckpointer,
    decode_result,
    encode_result,
)
from repro.scan.ecs_scanner import EcsScanner, EcsScanResult, EcsScanSettings
from repro.scan.incremental import (
    ChangeEvent,
    DeltaRound,
    DeltaScanEngine,
    DomainSnapshot,
    SnapshotStore,
    result_digest,
)
from repro.scan.longitudinal import AddressSighting, IngressArchive
from repro.scan.quic_scanner import QuicProbeReport, QuicScanner
from repro.scan.sharding import (
    ShardedCampaignExecutor,
    ShardPlan,
    plan_shards,
    rotation_base,
    shard_alignment,
)
from repro.scan.relay_scanner import (
    RelayScanConfig,
    RelayScanRound,
    RelayScanSeries,
    RelayScanner,
)
from repro.scan.traceroute_campaign import (
    LabelledTarget,
    TracerouteCampaignResult,
    run_traceroute_campaign,
)
from repro.scan.zmap import ZmapQuicSweep, ZmapSweepResult

__all__ = [
    "AtlasIngressScanner",
    "AtlasValidation",
    "Ipv6IngressReport",
    "BlockingReport",
    "classify_blocking",
    "MonthlyScan",
    "ScanCampaign",
    "CampaignCheckpointer",
    "decode_result",
    "encode_result",
    "LabelledTarget",
    "TracerouteCampaignResult",
    "run_traceroute_campaign",
    "ZmapQuicSweep",
    "ZmapSweepResult",
    "EcsScanner",
    "EcsScanResult",
    "EcsScanSettings",
    "ChangeEvent",
    "DeltaRound",
    "DeltaScanEngine",
    "DomainSnapshot",
    "SnapshotStore",
    "result_digest",
    "ShardedCampaignExecutor",
    "ShardPlan",
    "plan_shards",
    "rotation_base",
    "shard_alignment",
    "AddressSighting",
    "IngressArchive",
    "QuicProbeReport",
    "QuicScanner",
    "RelayScanConfig",
    "RelayScanRound",
    "RelayScanSeries",
    "RelayScanner",
]
