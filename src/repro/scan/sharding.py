"""Sharded parallel execution of ECS scan campaigns.

A full routed-space ECS scan is embarrassingly parallel in address
space: the paper's scanner walks /24 client subnets in order, and no
query's *content* depends on any earlier query — only two pieces of
shared state evolve along the walk:

* the rate limiter (which advances the simulated clock), and
* the relay service's per-pod rotation counters (which select the
  8-record window each answer starts at).

This module exploits that: it partitions the routed spans (and the
sparse-probed gaps between them) into contiguous **shards**, runs each
shard's scan in a forked worker process against a copy-on-write replica
of the authoritative world, and deterministically merges the shard
results into one :class:`~repro.scan.ecs_scanner.EcsScanResult` that is
equivalent to the sequential scan:

* the merged query set — and with it every query-accounting counter —
  is *identical* (shard boundaries are alignment-snapped so scope-skip
  blocks and sparse-probe strides never straddle a boundary);
* the merged response list carries the same subnets and scopes in the
  same address order;
* each worker reseeds its replica's rotation counters from (campaign
  seed, shard index) before a task, so shard results depend only on the
  shard's own query order — never on which worker ran which shard
  first, and never on the number of workers;
* the parent clock is advanced by replaying the merged query count
  through a fresh token bucket
  (:meth:`~repro.dns.ratelimit.TokenBucket.take_many`), which is
  bit-identical to the sequential scan's rate-limit timeline.

Workers ship results back as **columnar integer arrays** (subnet
values, scopes, indices into a distinct-address-tuple table), not as
response objects: the relay service's rotation memoisation means a scan
of hundreds of thousands of answers shares a few thousand distinct
address tuples, and encoding by tuple identity keeps the IPC payload —
and the parent's re-materialisation work — proportional to the distinct
answers, not the query count.  The columns themselves travel through
``multiprocessing.shared_memory`` segments: each worker writes its
result columns into a parent-named segment in place, and the parent
adopts them zero-copy (``memoryview`` casts over the mapping) during
the deterministic merge.  Segment names are allocated — and tracked —
by the parent *before* a shard is submitted, so cleanup is guaranteed
whatever happens to the worker: adopted segments are unlinked at merge
time, crashed shards' segments are unlinked during pool recovery, and
``close()`` / the scan's unwind path sweep anything left.  Where shared
memory is unavailable (or a segment cannot be created) the worker falls
back to shipping pickled column bytes; the merge is identical either
way.

Sharding requires the ``fork`` start method (the world is shared with
workers by copy-on-write inheritance, never pickled); where fork is
unavailable the executor transparently falls back to the sequential
in-process scan.
"""

from __future__ import annotations

import gc
import math
import multiprocessing
import os
import time
from array import array
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass

try:  # shared-memory shard IPC (absent on exotic interpreter builds)
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - platform without posix/winapi shm
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

from repro.dns.name import DnsName
from repro.errors import WorkerCrashed
from repro.dns.ratelimit import TokenBucket
from repro.dns.rr import RRType
from repro.dns.server import ServerStats
from repro.netmodel.addr import IPAddress, Prefix
from repro.perfstats import CacheStats
from repro.scan.columnar import ColumnarResponses
from repro.scan.ecs_scanner import (
    EcsResponse,
    EcsScanResult,
    EcsScanner,
    merge_ranges,
)
from repro.telemetry.registry import DURATION_BUCKETS

_SPACE_END = 1 << 32

#: Per-shard rotation stream derivation (splitmix-style multipliers):
#: distinct shards start their rotation rings at well-separated offsets,
#: so the union of shard windows covers the relay pools at least as
#: thoroughly as the sequential walk does.
_ROTATION_MULT = 0x9E3779B1
_ROTATION_STEP = 0x85EBCA6B
_ROTATION_MASK = 0x3FFFFFFF


def rotation_base(campaign_seed: int, shard_index: int) -> int:
    """The deterministic rotation-stream base for one shard."""
    return (
        campaign_seed * _ROTATION_MULT + shard_index * _ROTATION_STEP
    ) & _ROTATION_MASK


def shard_alignment(
    prefix_lengths: list[int], source_prefix_len: int, sparse_stride: int
) -> int:
    """The boundary alignment that makes shard splits query-invisible.

    A shard boundary is safe exactly when no scan-order jump can cross
    it, which requires the boundary to be a multiple of

    * the routed-walk step (``2**(32 - source_prefix_len)``),
    * the sparse-probe stride in addresses (``sparse_stride * 256``),
    * every scope-skip block size the zone can declare.  Scope blocks
      are power-of-two aligned ranges no larger than the widest routed
      prefix (assignment units live inside routed client prefixes) or
      the fallback /16 — whichever is larger.

    All of these are powers of two in practice, so the lcm degenerates
    to the max; ``math.lcm`` keeps odd ``sparse_stride`` settings safe.
    """
    widest_routed = 1 << 16
    for length in prefix_lengths:
        size = 1 << (32 - length)
        if size > widest_routed:
            widest_routed = size
    step = 1 << (32 - source_prefix_len)
    stride = sparse_stride << 8
    return math.lcm(widest_routed, step, stride)


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """One shard's slice of the scan: a contiguous address region."""

    index: int
    start: int
    end: int  # inclusive
    spans: tuple[tuple[int, int], ...]
    gaps: tuple[tuple[int, int], ...]

    def routed_addresses(self) -> int:
        """Routed address volume in this shard (balance diagnostics)."""
        return sum(end - start + 1 for start, end in self.spans)


def plan_shards(
    spans: list[tuple[int, int]],
    gaps: list[tuple[int, int]],
    workers: int,
    alignment: int,
) -> list[ShardPlan]:
    """Partition spans and gaps into at most ``workers`` contiguous shards.

    Boundaries are chosen by routed-address volume (the /24 walk
    dominates query counts; sparse probes are three orders of magnitude
    rarer) and snapped to the nearest ``alignment`` multiple, so the
    per-shard walks reproduce exactly the sequential queries of their
    region.  Shards that end up with no work are dropped; the returned
    plans cover the space in ascending, disjoint order.
    """
    total = sum(end - start + 1 for start, end in spans)
    cuts: set[int] = set()
    if workers > 1 and total > 0:
        for k in range(1, workers):
            target = total * k // workers
            cum = 0
            pos = _SPACE_END
            for start, end in spans:
                size = end - start + 1
                if cum + size >= target:
                    pos = start + (target - cum)
                    break
                cum += size
            snapped = (pos + alignment // 2) // alignment * alignment
            if 0 < snapped < _SPACE_END:
                cuts.add(snapped)
    edges = [0, *sorted(cuts), _SPACE_END]
    plans: list[ShardPlan] = []
    for lo, hi_edge in zip(edges, edges[1:]):
        hi = hi_edge - 1
        shard_spans = _clip(spans, lo, hi)
        shard_gaps = _clip(gaps, lo, hi)
        if not shard_spans and not shard_gaps:
            continue
        plans.append(
            ShardPlan(len(plans), lo, hi, tuple(shard_spans), tuple(shard_gaps))
        )
    return plans


def _clip(
    ranges: list[tuple[int, int]], lo: int, hi: int
) -> list[tuple[int, int]]:
    """The pieces of inclusive ``ranges`` that fall inside [lo, hi]."""
    out = []
    for start, end in ranges:
        if end < lo or start > hi:
            continue
        out.append((start if start > lo else lo, end if end < hi else hi))
    return out


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: The scanner (and through it the whole world) inherited by forked
#: workers.  Set by the executor before its pool forks; one process
#: drives one executor's pool at a time (campaign scans are strictly
#: sequential from the orchestrator's point of view).
_WORKER_SCANNER: EcsScanner | None = None


@dataclass(frozen=True, slots=True)
class ShardTask:
    """Everything a worker needs to run one shard of one scan."""

    index: int
    domain: str
    rtype: RRType
    start_time: float
    rotation_base: int
    spans: tuple[tuple[int, int], ...]
    gaps: tuple[tuple[int, int], ...]
    #: How many times this shard has been handed out before (pool
    #: recovery re-runs).  Only the fault plan's crash drill reads it —
    #: shard *results* must never depend on it (rotation_base doesn't).
    run_attempt: int = 0
    #: Parent-allocated shared-memory segment name for this task's result
    #: columns (None disables the shm path).  The parent records the name
    #: before submitting, so it can always clean the segment up — even
    #: when the worker dies mid-write.
    shm_name: str | None = None
    #: Parent-created heartbeat segment (one u64 slot per pending shard)
    #: and this task's slot in it.  None when the hung-shard watchdog is
    #: off; the worker then skips all liveness bookkeeping.
    heartbeat_name: str | None = None
    heartbeat_slot: int = 0


#: Pickled fallback for one response set's columns: (subnet values,
#: scopes, answer refs — as packed ``array`` bytes — and the answer
#: table).  The table holds one ``(address pairs, asn)`` entry per
#: *distinct* address tuple — distinct by identity, which the scan
#: kernel's answer interning makes equivalent to distinct by value.
#: Used only when the shared-memory path is unavailable.
_Columnar = tuple[bytes, bytes, bytes, list[tuple]]

#: In-memory column set: (values, scopes, refs, encoded table) where the
#: first three are any buffer-backed integer sequences.
_Columns = tuple


@dataclass(frozen=True, slots=True)
class ShardOutcome:
    """One shard's results, in picklable columnar form.

    Response columns travel through the task's shared-memory segment
    when possible: :attr:`shm_rows` gives the routed/sparse row counts
    laid out in the segment (see :func:`_write_segment` for the layout)
    and :attr:`shm_tables` the matching answer tables; the pickled
    :attr:`responses` / :attr:`sparse_responses` fallback is None then.
    """

    index: int
    queries_sent: int
    sparse_queries: int
    sparse_answered: int
    responses: _Columnar | None
    sparse_responses: _Columnar | None
    server_stats: ServerStats
    cache_stats: CacheStats
    #: Per shard hook (in ``zone.shard_hooks()`` order): the per-key
    #: rotation advances accumulated by this shard's queries.
    rotation_deltas: tuple[dict, ...]
    #: Fault/retry accounting: retried attempts, abandoned subnets as
    #: picklable ``(value, length)`` pairs in scan order, injected-fault
    #: counts by kind name, and the shard's accumulated injected waits
    #: (dyadic, so the parent's sum is bit-identical to sequential).
    retries: int
    gave_up: tuple[tuple[int, int], ...]
    fault_injected: dict
    fault_wait_seconds: float
    #: Wall-clock seconds this shard's scan took in its worker (feeds
    #: the parent's ``ecs.shard_wall_seconds`` balance histogram).
    wall_seconds: float
    #: The worker registry's *owned* metrics for this task — the shard's
    #: ``ecs.*`` / ``ratelimit.*`` deltas, absorbed (summed) by the
    #: parent.  Adopted instruments (ServerStats / CacheStats counters)
    #: are deliberately excluded: they travel via the two fields above
    #: and absorbing them too would double count.  Empty when telemetry
    #: is off.
    metrics: dict
    #: Shared-memory shipment (all None/zero on the pickled fallback):
    #: the task's segment name, the (routed, sparse) row counts laid out
    #: in it, and the matching (routed, sparse) answer tables.
    shm_name: str | None = None
    shm_rows: tuple[int, int] = (0, 0)
    shm_tables: tuple[list, list] | None = None


def _encode_table(
    table: list[tuple[tuple[IPAddress, ...], int | None]],
) -> list[tuple]:
    """Address tuples down to picklable ``(version, value)`` pairs."""
    return [
        (tuple((a.version, a.value) for a in addresses), asn)
        for addresses, asn in table
    ]


def _encode_responses(responses: list[EcsResponse]) -> _Columns:
    """Strip response objects down to columns plus a distinct-answer table.

    Address tuples are deduplicated by identity: the scan kernels hand
    every recurrence of an answer the same tuple object, so the table
    stays small (slow-path responses, which do not share tuples, still
    encode correctly — one table entry each).  The responses list keeps
    every tuple alive for the duration, so ids are never reused.
    """
    table_index: dict[int, int] = {}
    table: list[tuple] = []
    refs: list[int] = []
    append_ref = refs.append
    index_get = table_index.get
    for response in responses:
        addresses = response[2]
        key = id(addresses)
        ref = index_get(key)
        if ref is None:
            ref = len(table)
            table_index[key] = ref
            table.append(
                (
                    tuple((a.version, a.value) for a in addresses),
                    response[3],
                )
            )
        append_ref(ref)
    values = array("I", [response[0].value for response in responses])
    scopes = array("B", [response[1] for response in responses])
    return (values, scopes, array("I", refs), table)


def _result_columns(result: EcsScanResult) -> _Columns:
    """The routed response columns of one shard result.

    The batch-replay kernel already produced packed columns — reuse them
    as-is (encoding just the answer table); only slow-path results pay
    for a per-response encoding pass.
    """
    view = result.columnar_view()
    if view is None:
        return _encode_responses(result.responses)
    values = array("I")
    scopes = array("B")
    refs = array("I")
    table: list[tuple] = []
    for chunk_values, chunk_scopes, chunk_refs, chunk_table in view.chunks:
        if table:
            base = len(table)
            refs.extend(ref + base for ref in chunk_refs)
        else:
            refs.extend(chunk_refs)
        values.extend(chunk_values)
        scopes.extend(chunk_scopes)
        table.extend(_encode_table(chunk_table))
    return (values, scopes, refs, table)


def _pack_columns(columns: _Columns) -> _Columnar:
    """Columns into the pickled fallback form (packed bytes + table)."""
    values, scopes, refs, table = columns
    return (
        memoryview(values).tobytes(),
        memoryview(scopes).tobytes(),
        memoryview(refs).tobytes(),
        table,
    )


def _write_segment(name: str, routed: _Columns, sparse: _Columns):
    """Create segment ``name`` and write both column sets into it.

    Layout (row counts travel in the outcome): routed values (4 bytes
    each), routed scopes (1), routed refs (4), then the sparse columns
    in the same order — 9 bytes per row overall.  Returns the segment,
    or None when shared memory is unusable (caller falls back to
    pickling).  The worker closes its mapping right after writing; it
    never unlinks — the name's lifetime belongs to the parent.
    """
    if shared_memory is None:
        return None
    size = 9 * (len(routed[0]) + len(sparse[0]))
    if size == 0:
        return None
    try:
        segment = shared_memory.SharedMemory(name=name, create=True, size=size)
    except OSError:
        return None
    buf = segment.buf
    offset = 0
    for column in (*routed[:3], *sparse[:3]):
        raw = memoryview(column).cast("B")
        buf[offset : offset + len(raw)] = raw
        offset += len(raw)
    return segment


def _run_shard(task: ShardTask) -> ShardOutcome:
    """Worker entry point: run one shard against the forked replica.

    The replica's mutable scan state is reset to the task's starting
    conditions first — the worker may have run an earlier shard (of this
    or a previous scan) that left its copy's clock, stats, caches and
    rotation counters elsewhere:

    * the replica clock rewinds to the scan's start slot,
    * server query stats restart from zero (the shard's contribution is
      shipped back and merged),
    * the answer cache is emptied with zeroed stats (each worker starts
      a task cold; epoch invalidation behaviour within the task is then
      identical to a sequential scan's),
    * every rotation hook of the scanned zone is reseeded from
      (campaign seed, shard index).
    """
    scanner = _WORKER_SCANNER
    assert scanner is not None, "worker forked without a scanner context"
    # A previous task's heartbeat closure (left behind by an error
    # unwind) points into a segment the parent has since unlinked.
    scanner.heartbeat = None
    # Crash drill: profiles can nominate shard indices whose worker dies
    # mid-task.  os._exit (not an exception) models a real process death
    # — the pool breaks and the parent must respawn and re-run.  The
    # drill keys on the task's run_attempt, so re-runs succeed.
    plan = scanner.settings.fault_plan
    if plan is not None and plan.crash_shard(task.index, task.run_attempt):
        # repro: allow[CONC002] fault-plan crash drill: models real worker death
        os._exit(70)
    # Liveness heartbeat for the parent-side watchdog: bump the task's
    # u64 slot once at start (a nonzero slot means "started" — queued
    # shards stay at zero and never trip the deadline), then hand the
    # scanner a bump callable it calls at region/chunk boundaries.
    hb_segment = None
    if task.heartbeat_name is not None and shared_memory is not None:
        try:
            hb_segment = shared_memory.SharedMemory(name=task.heartbeat_name)
        except OSError:
            hb_segment = None
    if hb_segment is not None:
        hb_buf = hb_segment.buf
        hb_lo = task.heartbeat_slot * 8
        hb_hi = hb_lo + 8

        def _bump() -> None:
            count = int.from_bytes(hb_buf[hb_lo:hb_hi], "little")
            hb_buf[hb_lo:hb_hi] = ((count + 1) & 0xFFFFFFFFFFFFFFFF).to_bytes(
                8, "little"
            )

        _bump()
        scanner.heartbeat = _bump
        # Hang drill: profiles can nominate shard indices that go silent
        # mid-task — started (slot bumped above) but never progressing.
        # Only armed when the watchdog is (heartbeat configured), so
        # hostile-profile runs without a deadline never stall; keyed on
        # run_attempt, so the post-recovery re-run completes.  The
        # wall-clock backstop bounds an undetected hang instead of
        # wedging the host forever.
        if plan is not None and plan.hang_shard(task.index, task.run_attempt):
            # repro: allow[DET001] hang-drill backstop timer; the task produces no results
            backstop = time.monotonic() + 120.0
            # repro: allow[DET001] hang-drill backstop timer; the task produces no results
            while time.monotonic() < backstop:
                time.sleep(0.05)
            # repro: allow[CONC002] hang-drill backstop: models a truly wedged worker
            os._exit(70)
    # Shard workers only ever run scans: their allocations (responses,
    # columnar encodings) are acyclic and freed per task by refcounting,
    # while every cyclic-GC generation collection would re-traverse the
    # forked world copy.  Keep the collector off for the process's
    # lifetime, not just inside scan_ranges.
    gc.disable()
    server = scanner.server
    scanner.clock.reset_to(task.start_time)
    server.stats.reset()
    cache = server.answer_cache
    cache.clear()
    cache.stats.reset()
    zone = server.zone_for(DnsName.parse(task.domain))
    hooks = zone.shard_hooks() if zone is not None else []
    for hook in hooks:
        hook.reseed(task.rotation_base)
    # The forked registry may hold owned counters inherited from the
    # parent (or from this worker's previous task); zero them so the
    # shipped snapshot is exactly this task's contribution.
    registry = scanner.telemetry.registry
    registry.reset_owned()
    # repro: allow[DET001] wall-time feeds the shard telemetry histogram only
    wall_start = time.perf_counter()
    result = scanner.scan_ranges(
        task.domain, list(task.spans), list(task.gaps), task.rtype
    )
    # repro: allow[DET001] wall-time feeds the shard telemetry histogram only
    wall_seconds = time.perf_counter() - wall_start
    if hb_segment is not None:
        # The scan is the only phase worth watching; encoding the result
        # is bounded work.  Release before close — the segment refuses
        # to unmap while the buffer view is exported.
        scanner.heartbeat = None
        hb_buf.release()
        hb_segment.close()
    routed_columns = _result_columns(result)
    sparse_columns = _encode_responses(result.sparse_responses)
    segment = (
        _write_segment(task.shm_name, routed_columns, sparse_columns)
        if task.shm_name is not None
        else None
    )
    if segment is not None:
        segment.close()
        responses = sparse_responses = None
        shm_name = task.shm_name
        shm_rows = (len(routed_columns[0]), len(sparse_columns[0]))
        shm_tables = (routed_columns[3], sparse_columns[3])
    else:
        responses = _pack_columns(routed_columns)
        sparse_responses = _pack_columns(sparse_columns)
        shm_name = None
        shm_rows = (0, 0)
        shm_tables = None
    return ShardOutcome(
        index=task.index,
        queries_sent=result.queries_sent,
        sparse_queries=result.sparse_queries,
        sparse_answered=result.sparse_answered,
        responses=responses,
        sparse_responses=sparse_responses,
        shm_name=shm_name,
        shm_rows=shm_rows,
        shm_tables=shm_tables,
        retries=result.retries,
        gave_up=tuple((p.value, p.length) for p in result.gave_up),
        fault_injected=dict(result.fault_injected),
        fault_wait_seconds=result.fault_wait_seconds,
        server_stats=server.stats.copy(),
        cache_stats=CacheStats(
            hits=cache.stats.hits,
            misses=cache.stats.misses,
            invalidations=cache.stats.invalidations,
        ),
        rotation_deltas=tuple(hook.delta_snapshot() for hook in hooks),
        wall_seconds=wall_seconds,
        metrics=registry.owned_snapshot(),
    )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class ShardedCampaignExecutor:
    """Runs one scanner's scans sharded across forked worker processes.

    Wraps an :class:`EcsScanner` with a ``scan()`` of the same shape, so
    the campaign orchestrator can swap it in transparently when
    ``settings.workers > 1``.  The pool is created lazily on the first
    sharded scan and reused for the whole campaign; :meth:`close` (or
    use as a context manager) shuts it down.
    """

    def __init__(
        self,
        scanner: EcsScanner,
        workers: int,
        heartbeat_deadline: float | None = None,
    ) -> None:
        self.scanner = scanner
        self.workers = max(1, int(workers))
        #: Hung-shard watchdog: a *started* shard whose heartbeat slot
        #: stays unchanged for this many wall seconds is declared hung —
        #: its pool is terminated and the shard re-runs through the same
        #: respawn path a crashed worker takes.  None disables the
        #: watchdog (and all heartbeat plumbing).
        self.heartbeat_deadline = (
            float(heartbeat_deadline)
            if heartbeat_deadline is not None and heartbeat_deadline > 0
            else None
        )
        self._pool: ProcessPoolExecutor | None = None
        self._alignment_cache: tuple[object, int] | None = None
        # Parent-side interning for re-materialised shard responses:
        # shards and monthly scans rediscover the same subnets and
        # address tuples, so the merged results share objects the same
        # way sequential results do (which keeps the identity-based
        # deduplication in EcsScanResult.addresses() effective).
        self._prefixes: dict[int, dict[int, Prefix]] = {}
        self._addresses: dict[tuple[int, int], IPAddress] = {}
        self._tuples: dict[tuple, tuple[IPAddress, ...]] = {}
        # Shared-memory segment bookkeeping: every name this executor
        # has allocated and not yet unlinked (adoption, crash cleanup,
        # or sweep removes entries), plus a sequence number that keeps
        # names unique across scans and pool respawns.
        self._live_segments: set[str] = set()
        self._shm_seq = 0
        # Mutation tokens of the zones the pool's forked replicas were
        # built from, keyed by zone apex (see _refresh_if_stale).
        self._fork_tokens: dict[object, tuple] = {}
        #: Optional live monitoring plane (repro.monitor): shard
        #: liveness on the StatusBoard, crash/respawn records in the
        #: EventLog.  Parent-side only — forked workers inherit copies.
        self.status = None
        self.events = None

    @staticmethod
    def supported() -> bool:
        """Whether this platform can fork shard workers."""
        return "fork" in multiprocessing.get_all_start_methods()

    # -- lifecycle ------------------------------------------------------

    #: How many times scan() will rebuild a broken pool before giving
    #: up with :class:`~repro.errors.WorkerCrashed`.
    MAX_POOL_RESPAWNS = 3

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        Always terminates the workers — ``cancel_futures`` keeps a close
        during an in-flight scan (error unwind, ``__exit__``) from
        blocking on queued shards nobody will collect.
        """
        global _WORKER_SCANNER
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if _WORKER_SCANNER is self.scanner:
            _WORKER_SCANNER = None
        # With the workers gone, any segment still tracked is orphaned
        # (un-adopted results, crashes, cancelled shards) — unlink them.
        self._sweep_segments()

    def __enter__(self) -> "ShardedCampaignExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        global _WORKER_SCANNER
        # (Re)publish the world for workers the pool has yet to fork.
        # Late spawns only read this global at fork time, so it must
        # point at *this* executor's scanner whenever work is submitted.
        _WORKER_SCANNER = self.scanner
        if self._pool is None:
            if resource_tracker is not None:
                # Start the resource tracker in the parent before forking
                # workers: children then inherit its pipe, so segments a
                # crashed worker registered still get unlinked at parent
                # exit should this executor's own cleanup ever be skipped.
                resource_tracker.ensure_running()
            # Shard results are deterministic per shard index — never per
            # worker process — so the process count is an implementation
            # detail: capped at the machine's cores, because extra
            # CPU-bound processes on an oversubscribed box only add
            # copy-on-write duplication and scheduler churn, without
            # changing a single output bit.
            processes = min(self.workers, os.cpu_count() or 1)
            self._pool = ProcessPoolExecutor(
                max_workers=processes,
                mp_context=multiprocessing.get_context("fork"),
            )
        return self._pool

    def _refresh_if_stale(self, domain: str) -> None:
        """Respawn the pool when the served world changed since it forked.

        Workers inherit the world by fork-time copy-on-write, so an
        assignment-map or fleet-composition edit in the parent — e.g. a
        deployment change injected between delta-scan rounds — never
        reaches a live pool.  The zone's mutation token captures exactly
        that editable state (time-driven changes are excluded), so a
        token change here means the replicas are stale: shut the pool
        down and let the next submission fork fresh ones.
        """
        zone = self.scanner.server.zone_for(DnsName.parse(domain))
        if zone is None:
            return
        token = zone.mutation_token()
        known = self._fork_tokens.get(zone.apex)
        if known is not None and known != token and self._pool is not None:
            self.close()
        self._fork_tokens[zone.apex] = token

    # -- scanning -------------------------------------------------------

    def scan(self, domain: str, rtype: RRType = RRType.A) -> EcsScanResult:
        """Run one sharded scan; falls back to sequential when sharding
        cannot help (one worker, no fork, or a single-shard plan)."""
        scanner = self.scanner
        if self.workers <= 1 or not self.supported():
            return scanner.scan(domain, rtype)
        self._refresh_if_stale(domain)
        settings = scanner.settings
        if settings.prune_unrouted:
            spans, gaps = scanner.routed_ranges()
        else:
            spans, gaps = [(0, _SPACE_END - 1)], []
        plans = plan_shards(spans, gaps, self.workers, self._alignment())
        if len(plans) <= 1:
            return scanner.scan_ranges(domain, spans, gaps, rtype)
        start_time = scanner.clock.now
        seed = settings.campaign_seed
        # Same GC suspension as scan_ranges, for the whole sharded scan:
        # the executor's result thread unpickles large shard outcomes
        # while we wait, and a generational collection triggered by those
        # allocations re-traverses every live world in the parent.
        was_gc = gc.isenabled()
        if was_gc:
            gc.disable()
        try:
            with scanner.telemetry.tracer.span(
                "ecs.scan.sharded", domain=domain, shards=len(plans)
            ):
                outcomes = self._gather(domain, rtype, start_time, seed, plans)
                return self._merge(domain, rtype, start_time, outcomes)
        finally:
            if was_gc:
                gc.enable()
            # Adoption and crash recovery unlink as they go; anything
            # still tracked here (e.g. an error between gather and
            # merge) is orphaned — unlink it now.  No-op on success.
            self._sweep_segments()

    def scan_regions(
        self,
        domain: str,
        spans: list[tuple[int, int]],
        gaps: list[tuple[int, int]] | tuple = (),
        rtype: RRType = RRType.A,
    ) -> EcsScanResult:
        """Shard an explicit region worklist (the delta-scan entry).

        The delta-scan executor hands over the changed-region and
        refresh-wheel ranges of one round; they are normalised exactly
        like :meth:`EcsScanner.scan_regions` and split with the same
        aligned volume-balanced planner as a full scan, so the merged
        result is bit-identical to the sequential region scan (shard
        cuts land on scope-block boundaries, rotation bases depend only
        on the shard index).  Falls back to the sequential scanner when
        sharding cannot help.
        """
        scanner = self.scanner
        spans = merge_ranges(spans)
        gaps = merge_ranges(gaps)
        if self.workers <= 1 or not self.supported():
            return scanner.scan_ranges(domain, spans, gaps, rtype)
        self._refresh_if_stale(domain)
        plans = plan_shards(spans, gaps, self.workers, self._alignment())
        if len(plans) <= 1:
            return scanner.scan_ranges(domain, spans, gaps, rtype)
        start_time = scanner.clock.now
        seed = scanner.settings.campaign_seed
        was_gc = gc.isenabled()
        if was_gc:
            gc.disable()
        try:
            with scanner.telemetry.tracer.span(
                "ecs.scan.sharded", domain=domain, shards=len(plans)
            ):
                outcomes = self._gather(domain, rtype, start_time, seed, plans)
                return self._merge(domain, rtype, start_time, outcomes)
        finally:
            if was_gc:
                gc.enable()
            self._sweep_segments()

    def _gather(
        self,
        domain: str,
        rtype: RRType,
        start_time: float,
        seed: int,
        plans: list[ShardPlan],
    ) -> list[ShardOutcome]:
        """Run every shard to completion, recovering from worker crashes.

        A dead worker breaks the whole fork pool: its own shard and any
        shard still queued behind it surface as ``BrokenExecutor`` from
        ``future.result()``.  Those shards — and only those — are re-run
        against a fresh pool (bounded by :attr:`MAX_POOL_RESPAWNS`, then
        :class:`~repro.errors.WorkerCrashed`).  Shard results depend only
        on the shard index, never on which pool incarnation ran them, so
        recovery cannot change the merged output.  A worker raising an
        ordinary *exception* is a bug, not a crash: it propagates
        immediately, after the pool is torn down so no workers leak.
        """
        outcomes: dict[int, ShardOutcome] = {}
        pending = list(plans)
        registry = self.scanner.telemetry.registry
        attempt = 0
        if self.status is not None:
            self.status.clear_shards()
            self.status.publish(shards_planned=len(plans))
        while pending:
            pool = self._ensure_pool()
            if self.status is not None:
                for plan in pending:
                    self.status.shard_state(plan.index, "running")
            hb_name, hb_segment = self._heartbeat_segment(len(pending))
            futures = [
                (
                    plan,
                    shm_name := self._allocate_segment_name(plan.index, attempt),
                    pool.submit(
                        _run_shard,
                        ShardTask(
                            index=plan.index,
                            domain=domain,
                            rtype=rtype,
                            start_time=start_time,
                            rotation_base=rotation_base(seed, plan.index),
                            spans=plan.spans,
                            gaps=plan.gaps,
                            run_attempt=attempt,
                            shm_name=shm_name,
                            heartbeat_name=hb_name,
                            heartbeat_slot=slot,
                        ),
                    ),
                )
                for slot, plan in enumerate(pending)
            ]
            if hb_segment is not None:
                try:
                    self._watch_heartbeats(domain, pool, hb_segment, futures, attempt)
                finally:
                    hb_segment.close()
                    self._cleanup_segment(hb_name)
            crashed: list[ShardPlan] = []
            failure: BaseException | None = None
            for plan, shm_name, future in futures:
                if failure is not None:
                    future.cancel()
                    continue
                try:
                    outcome = future.result()
                except BrokenExecutor:
                    # The worker may have died mid-write (or never run):
                    # its segment — if it got as far as creating one — is
                    # orphaned.  Unlink before the shard is re-run under
                    # a fresh name.
                    if shm_name is not None:
                        self._cleanup_segment(shm_name)
                    crashed.append(plan)
                    if self.status is not None:
                        self.status.shard_state(plan.index, "crashed")
                        self.status.add("shard_crashes")
                    if self.events is not None:
                        self.events.emit(
                            "shard_crash",
                            domain=domain,
                            shard=plan.index,
                            attempt=attempt,
                        )
                # repro: allow[HYG002] first failure re-raised after pool teardown
                except BaseException as exc:
                    failure = exc
                else:
                    outcomes[plan.index] = outcome
                    if self.status is not None:
                        self.status.shard_state(plan.index, "done")
                    if outcome.shm_name is None and shm_name is not None:
                        # Worker fell back to pickling; the allocated
                        # name was never (fully) used.
                        self._cleanup_segment(shm_name)
            if failure is not None:
                self.close()
                raise failure
            pending = crashed
            if pending:
                attempt += 1
                if attempt > self.MAX_POOL_RESPAWNS:
                    indices = [plan.index for plan in pending]
                    self.close()
                    raise WorkerCrashed(
                        f"shards {indices} of {domain} kept crashing after "
                        f"{self.MAX_POOL_RESPAWNS} pool respawns"
                    )
                if registry.enabled:
                    registry.counter("shards.rerun", domain=domain).inc(
                        len(pending)
                    )
                if self.events is not None:
                    self.events.emit(
                        "shard_respawn",
                        domain=domain,
                        shards=sorted(plan.index for plan in pending),
                        attempt=attempt,
                    )
                if self.status is not None:
                    self.status.add("pool_respawns")
                self._respawn_pool()
        return [outcomes[plan.index] for plan in plans]

    def _heartbeat_segment(self, count: int):
        """Parent-created liveness slots: one u64 per pending shard.

        Returns ``(name, segment)`` — or ``(None, None)`` when the
        watchdog is off or shared memory is unusable, which disables the
        whole heartbeat path for this attempt.  The name is tracked in
        :attr:`_live_segments` before any worker sees it, same cleanup
        guarantee as result segments.
        """
        if self.heartbeat_deadline is None or shared_memory is None:
            return None, None
        self._shm_seq += 1
        name = f"repro-{os.getpid()}-{self._shm_seq}-hb"
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=8 * count
            )
        except OSError:
            return None, None
        self._live_segments.add(name)
        segment.buf[:] = bytes(8 * count)
        return name, segment

    def _watch_heartbeats(
        self, domain: str, pool, segment, futures: list, attempt: int
    ) -> None:
        """Poll shard liveness until every future settles or one hangs.

        A shard is *hung* when its slot has been bumped at least once
        (the worker started it) but then stays unchanged past
        :attr:`heartbeat_deadline`.  Queued shards — slot still zero —
        never trip the deadline, so deep work queues don't false-
        positive.  Detection terminates every pool worker: the pool
        breaks, all unfinished futures raise ``BrokenExecutor``, and the
        caller's existing crash-recovery path re-runs them against a
        fresh pool (the hang drill keys on ``run_attempt``, so re-runs
        complete).  Innocent in-flight shards re-run too; that cannot
        change the merged output (results depend only on shard index).
        """
        deadline = self.heartbeat_deadline
        view = segment.buf.cast("Q")
        counts = [0] * len(futures)
        # repro: allow[DET001] watchdog liveness clock; never feeds simulation state
        now = time.monotonic()
        last_change = [now] * len(futures)
        poll = min(0.05, deadline / 4)
        try:
            while True:
                if all(future.done() for _, _, future in futures):
                    return
                # repro: allow[DET001] watchdog liveness clock; never feeds simulation state
                now = time.monotonic()
                hung = None
                for slot, (plan, _, future) in enumerate(futures):
                    if future.done():
                        continue
                    value = view[slot]
                    if value != counts[slot]:
                        counts[slot] = value
                        last_change[slot] = now
                    elif value and now - last_change[slot] > deadline:
                        hung = plan
                        break
                if hung is not None:
                    registry = self.scanner.telemetry.registry
                    if registry.enabled:
                        registry.counter("shards.hung", domain=domain).inc()
                    if self.status is not None:
                        self.status.shard_state(hung.index, "hung")
                        self.status.add("shard_hangs")
                    if self.events is not None:
                        self.events.emit(
                            "shard_hung",
                            domain=domain,
                            shard=hung.index,
                            attempt=attempt,
                        )
                    # Killing the workers breaks the pool, which is the
                    # point: the hung shard (and any collateral) surfaces
                    # as BrokenExecutor and re-runs via the respawn path.
                    # SIGKILL, not SIGTERM: a wedged worker may be stuck
                    # in C code, and forked workers inherit the parent's
                    # graceful-drain SIGTERM handler — a catchable signal
                    # would be absorbed instead of ending the process.
                    for process in list(pool._processes.values()):
                        process.kill()
                    return
                time.sleep(poll)
        finally:
            view.release()

    def _respawn_pool(self) -> None:
        """Drop a broken pool so the next :meth:`_ensure_pool` forks anew."""
        if self._pool is not None:
            # The pool is already broken; don't wait on its corpse.
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- shared-memory segment lifecycle --------------------------------

    def _allocate_segment_name(self, shard_index: int, attempt: int) -> str | None:
        """A fresh segment name, tracked *before* the task is submitted.

        Tracking first is the whole cleanup guarantee: whatever the
        worker does with the name — writes it, crashes halfway through,
        never runs — the parent knows to unlink it.  Returns None when
        shared memory is unavailable (tasks then use the pickled path).
        """
        if shared_memory is None:
            return None
        self._shm_seq += 1
        name = f"repro-{os.getpid()}-{self._shm_seq}-{shard_index}-{attempt}"
        self._live_segments.add(name)
        return name

    def _cleanup_segment(self, name: str) -> None:
        """Unlink one tracked segment if the worker got as far as creating it."""
        self._live_segments.discard(name)
        if shared_memory is None:
            return
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return
        segment.close()
        # unlink() also drops the name from the resource tracker — which
        # clears the worker-side registration from creation too, since
        # forked workers share the parent's tracker process.
        segment.unlink()

    def _sweep_segments(self) -> None:
        """Unlink every still-tracked segment (normal paths leave none)."""
        for name in list(self._live_segments):
            self._cleanup_segment(name)

    def _alignment(self) -> int:
        """Shard boundary alignment, cached on the routing-table version."""
        routing = self.scanner.routing
        version = getattr(routing, "version", None)
        cached = self._alignment_cache
        if cached is not None and version is not None and cached[0] == version:
            return cached[1]
        settings = self.scanner.settings
        alignment = shard_alignment(
            [p.length for p in routing.routed_v4_prefixes()],
            settings.source_prefix_len,
            settings.sparse_stride,
        )
        if version is not None:
            self._alignment_cache = (version, alignment)
        return alignment

    def _merge(
        self,
        domain: str,
        rtype: RRType,
        start_time: float,
        outcomes: list[ShardOutcome],
    ) -> EcsScanResult:
        """Fold shard outcomes into one sequential-equivalent result.

        Outcomes arrive in shard-index order, i.e. ascending address
        order, so plain concatenation reproduces the sequential response
        order.  Server and cache statistics are merged into the
        authoritative objects; the zone's rotation hooks advance by the
        summed per-key deltas (each key's counter increments by exactly
        one per query, so summed counts reproduce the sequential end
        state); and the clock replays the merged query count through a
        fresh token bucket — the same float operations in the same order
        as the sequential scan's per-query takes.
        """
        scanner = self.scanner
        server = scanner.server
        settings = scanner.settings
        result = EcsScanResult(domain=domain, started_at=start_time)
        merged_deltas: list[dict] = []
        # GC is already suspended by scan() across the gather and merge.
        self._merge_outcomes(result, outcomes, merged_deltas)
        zone = server.zone_for(DnsName.parse(domain))
        if zone is not None:
            for hook, deltas in zip(zone.shard_hooks(), merged_deltas):
                hook.apply_deltas(deltas)
        bucket = TokenBucket(settings.rate, settings.burst, scanner.clock)
        bucket.take_many(result.queries_sent)
        # Injected waits advance the clock after the replay, mirroring
        # scan_ranges (takes first, one advance at the end); the shard
        # partial sums are dyadic so their sum is the sequential float.
        if result.fault_wait_seconds:
            scanner.clock.advance(result.fault_wait_seconds)
        result.finished_at = scanner.clock.now
        if self.status is not None:
            # Parent-side merged view (forked workers' boards are their
            # own post-fork copies); batch, once per sharded scan.
            self.status.add("queries_sent", result.queries_sent)
            self.status.add("scans_completed")
            self.status.publish(last_domain=domain, sim_time=scanner.clock.now)
        return result

    def _merge_outcomes(
        self,
        result: EcsScanResult,
        outcomes: list[ShardOutcome],
        merged_deltas: list[dict],
    ) -> None:
        scanner = self.scanner
        server = scanner.server
        settings = scanner.settings
        registry = scanner.telemetry.registry
        telemetry_on = registry.enabled
        if telemetry_on:
            shard_wall = registry.histogram(
                "ecs.shard_wall_seconds", DURATION_BUCKETS, domain=result.domain
            )
            registry.counter("ecs.shards", domain=result.domain).inc(len(outcomes))
        # Routed responses stay columnar end to end: each shard's columns
        # become one chunk of the merged view (zero-copy for shm
        # outcomes), concatenated in shard-index — i.e. address — order.
        # Sparse responses are three orders of magnitude rarer; decoding
        # them eagerly keeps the list-based fault/retry accounting paths
        # simple.
        source_len = settings.source_prefix_len
        merged_columns = ColumnarResponses(
            source_len, prefixes=self._prefixes.setdefault(source_len, {})
        )
        for outcome in outcomes:
            result.queries_sent += outcome.queries_sent
            result.sparse_queries += outcome.sparse_queries
            result.sparse_answered += outcome.sparse_answered
            result.retries += outcome.retries
            result.fault_wait_seconds += outcome.fault_wait_seconds
            for value, length in outcome.gave_up:
                result.gave_up.append(self._prefix(value, length))
            injected = result.fault_injected
            for kind, count in outcome.fault_injected.items():
                injected[kind] = injected.get(kind, 0) + count
            routed, sparse, segment = self._adopt_columns(outcome)
            if len(routed[0]):
                merged_columns.chunks.append(
                    (routed[0], routed[1], routed[2], self._decode_table(routed[3]))
                )
            if segment is not None:
                merged_columns.retain(segment)
            self._decode_into(result.sparse_responses, sparse, 24)
            server.stats.merge(outcome.server_stats)
            server.answer_cache.stats.merge(outcome.cache_stats)
            if telemetry_on:
                registry.absorb(outcome.metrics)
                shard_wall.observe(outcome.wall_seconds)
            for position, deltas in enumerate(outcome.rotation_deltas):
                if position == len(merged_deltas):
                    merged_deltas.append({})
                merged = merged_deltas[position]
                for key, delta in deltas.items():
                    merged[key] = merged.get(key, 0) + delta
        result.attach_columnar(merged_columns)

    def _adopt_columns(
        self, outcome: ShardOutcome
    ) -> tuple[_Columns, _Columns, object | None]:
        """One outcome's (routed, sparse) columns, plus the owning segment.

        Shared-memory outcomes are adopted zero-copy: the columns are
        ``memoryview`` casts straight over the segment mapping, and the
        segment is unlinked (and dropped from the resource tracker)
        immediately — the mapping itself stays valid until the last view
        dies, which :meth:`ColumnarResponses.retain` ties to the merged
        result.  Unlinking before use means the name cannot leak no
        matter what happens downstream.  Pickled outcomes unpack into
        plain arrays.
        """
        if outcome.shm_name is not None:
            segment = shared_memory.SharedMemory(name=outcome.shm_name)
            n, m = outcome.shm_rows
            buf = segment.buf
            routed_table, sparse_table = outcome.shm_tables
            base = 9 * n
            routed = (
                buf[: 4 * n].cast("I"),
                buf[4 * n : 5 * n],
                buf[5 * n : base].cast("I"),
                routed_table,
            )
            sparse = (
                buf[base : base + 4 * m].cast("I"),
                buf[base + 4 * m : base + 5 * m],
                buf[base + 5 * m : base + 9 * m].cast("I"),
                sparse_table,
            )
            # unlink() also drops the tracker registration (the worker's
            # create and this attach share one tracker entry).
            segment.unlink()
            self._live_segments.discard(outcome.shm_name)
            # Hand the mapping over to the views: strip the segment's own
            # buffer references so closing it only closes the fd — its
            # finalizer would otherwise try to close the mmap while the
            # column views still point into it.  The views (and the
            # retained mapping) keep the mmap object alive; the OS
            # reclaims the unlinked memory when the last of them dies.
            mapping = segment._mmap
            segment._buf = None
            segment._mmap = None
            segment.close()
            return routed, sparse, mapping
        return (
            self._unpack_columns(outcome.responses),
            self._unpack_columns(outcome.sparse_responses),
            None,
        )

    @staticmethod
    def _unpack_columns(columnar: _Columnar) -> _Columns:
        """Pickled column bytes back into arrays (fallback path)."""
        packed_values, packed_scopes, packed_refs, table = columnar
        values = array("I")
        values.frombytes(packed_values)
        scopes = array("B")
        scopes.frombytes(packed_scopes)
        refs = array("I")
        refs.frombytes(packed_refs)
        return (values, scopes, refs, table)

    def _decode_table(self, table: list[tuple]) -> list[tuple]:
        """Shipped ``(version, value)`` pairs back to interned address tuples."""
        tuples = self._tuples
        out: list[tuple] = []
        append = out.append
        for pairs, asn in table:
            addresses = tuples.get(pairs)
            if addresses is None:
                addresses = tuples[pairs] = tuple(
                    self._address(v, value) for v, value in pairs
                )
            append((addresses, asn))
        return out

    def _decode_into(
        self,
        out: list[EcsResponse],
        columns: _Columns,
        subnet_len: int,
    ) -> None:
        """Re-materialise one shard's columns as responses, interning as we go."""
        values, scopes, refs, table = columns
        answers = self._decode_table(table)
        prefixes = self._prefixes.setdefault(subnet_len, {})
        prefix_get = prefixes.get
        for value in values:
            if prefix_get(value) is None:
                prefixes[value] = Prefix(4, value, subnet_len)
        out.extend(
            EcsResponse(prefixes[value], scope, *answers[ref])
            for value, scope, ref in zip(values, scopes, refs)
        )

    def _prefix(self, value: int, length: int) -> Prefix:
        """Re-materialise one shipped subnet, interned like responses."""
        prefixes = self._prefixes.setdefault(length, {})
        prefix = prefixes.get(value)
        if prefix is None:
            prefix = prefixes[value] = Prefix(4, value, length)
        return prefix

    def _address(self, version: int, value: int) -> IPAddress:
        key = (version, value)
        address = self._addresses.get(key)
        if address is None:
            address = IPAddress(version, value)
            self._addresses[key] = address
        return address
