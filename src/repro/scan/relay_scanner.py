"""Scans through the relay (Section 4.3).

Reproduces the measurement client's behaviour: every ``interval``
seconds, issue the two parallel requests (Safari to the observation web
server, curl to the ipecho-style service), log the observed egress
operator and address, and derive:

* the egress **operator change** time series (Figure 3), for both the
  open-DNS and the fixed-DNS (forced ingress) scan variants;
* egress **address rotation** statistics: change rate between
  consecutive rounds, distinct addresses and subnets over the window,
  and the divergence of parallel connections.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.netmodel.addr import IPAddress
from repro.relay.client import RelayClient, RequestObservation
from repro.relay.egress_list import EgressList
from repro.relay.observer import EchoService, ObservationServer
from repro.simtime import SimClock


@dataclass(frozen=True, slots=True)
class RelayScanRound:
    """One scan round: the two parallel observations."""

    timestamp: float
    safari: RequestObservation
    curl: RequestObservation

    @property
    def parallel_addresses_differ(self) -> bool:
        """Whether the simultaneous connections used distinct egresses."""
        return self.safari.egress_address != self.curl.egress_address

    @property
    def operator_asn(self) -> int:
        """The egress operator of the round (from the curl observation)."""
        return self.curl.egress_operator_asn


@dataclass
class RelayScanConfig:
    """Scan cadence."""

    interval_seconds: float = 300.0  # the 5-minute Figure 3 cadence
    duration_seconds: float = 86400.0  # one scan day


@dataclass
class RelayScanSeries:
    """A completed scan: all rounds plus derived statistics."""

    label: str
    rounds: list[RelayScanRound] = field(default_factory=list)
    failures: int = 0

    def __len__(self) -> int:
        return len(self.rounds)

    # -- Figure 3 ------------------------------------------------------

    def operator_series(self) -> list[tuple[float, int]]:
        """(relative time, operator ASN) per round."""
        if not self.rounds:
            return []
        start = self.rounds[0].timestamp
        return [(r.timestamp - start, r.operator_asn) for r in self.rounds]

    def operator_changes(self) -> list[tuple[float, int, int]]:
        """(relative time, old ASN, new ASN) whenever the operator flips."""
        changes = []
        series = self.operator_series()
        for (t0, op0), (t1, op1) in zip(series, series[1:]):
            if op0 != op1:
                changes.append((t1, op0, op1))
        return changes

    def operators_seen(self) -> set[int]:
        """All egress operator ASes observed."""
        return {r.operator_asn for r in self.rounds}

    # -- rotation statistics --------------------------------------------

    def address_change_rate(self) -> float:
        """Fraction of consecutive curl requests with a changed address."""
        if len(self.rounds) < 2:
            return 0.0
        changes = sum(
            1
            for a, b in zip(self.rounds, self.rounds[1:])
            if a.curl.egress_address != b.curl.egress_address
        )
        return changes / (len(self.rounds) - 1)

    def distinct_addresses(self) -> set[IPAddress]:
        """All egress addresses observed (both tools)."""
        out = set()
        for r in self.rounds:
            out.add(r.curl.egress_address)
            out.add(r.safari.egress_address)
        return out

    def distinct_subnets(self, egress_list: EgressList) -> int:
        """Number of published egress subnets the addresses fall into."""
        subnets = set()
        for address in sorted(self.distinct_addresses()):
            entry = egress_list.entry_for_address(address)
            if entry is not None:
                subnets.add(entry.prefix)
        return len(subnets)

    def parallel_divergence_rate(self) -> float:
        """Fraction of rounds where Safari and curl saw different egresses."""
        if not self.rounds:
            return 0.0
        differing = sum(1 for r in self.rounds if r.parallel_addresses_differ)
        return differing / len(self.rounds)

    def ingress_addresses(self) -> set[IPAddress]:
        """All ingress addresses the client connected through."""
        out = set()
        for r in self.rounds:
            out.add(r.curl.ingress_address)
            out.add(r.safari.ingress_address)
        return out


class RelayScanner:
    """Drives a relay client through a scan schedule."""

    def __init__(
        self,
        client: RelayClient,
        web_server: ObservationServer,
        echo_server: EchoService,
        clock: SimClock,
    ) -> None:
        self.client = client
        self.web_server = web_server
        self.echo_server = echo_server
        self.clock = clock

    def run(self, config: RelayScanConfig, label: str = "scan") -> RelayScanSeries:
        """Run rounds until the configured duration elapses."""
        series = RelayScanSeries(label=label)
        deadline = self.clock.now + config.duration_seconds
        while self.clock.now < deadline:
            try:
                safari, curl = self.client.request_parallel(
                    self.web_server, self.echo_server
                )
                series.rounds.append(
                    RelayScanRound(self.clock.now, safari, curl)
                )
            except ReproError:
                # A failed round (DNS outage, relay refusal) is logged and
                # the schedule continues — as a real scan harness would.
                series.failures += 1
            self.clock.advance(config.interval_seconds)
        return series
