"""ZMap-style stateless QUIC sweep over address ranges.

The paper identified QUIC support on ingress nodes with "the latest
ZMap module from Zirngibl et al." — a stateless sweep that sends one
version-forcing Initial per address and records version negotiations.
:class:`ZmapQuicSweep` does that over whole prefixes (e.g. every
address of the ingress /24s uncovered by the ECS scan), with the same
token-bucket rate limiting the ethics section mandates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.ratelimit import TokenBucket
from repro.netmodel.addr import IPAddress, Prefix
from repro.quic.packet import (
    InitialPacket,
    VersionNegotiationPacket,
    decode_packet,
)
from repro.quic.versions import version_name
from repro.relay.service import PrivateRelayService
from repro.scan.quic_scanner import GREASE_VERSION
from repro.simtime import SimClock


@dataclass
class ZmapSweepResult:
    """Outcome of one stateless sweep."""

    probes_sent: int = 0
    responsive: dict[IPAddress, tuple[str, ...]] = field(default_factory=dict)
    silent: int = 0
    duration_seconds: float = 0.0

    def responsive_addresses(self) -> set[IPAddress]:
        """Addresses that answered with a version negotiation."""
        return set(self.responsive)

    def version_profile(self) -> dict[tuple[str, ...], int]:
        """Histogram of advertised version lists."""
        profile: dict[tuple[str, ...], int] = {}
        for versions in self.responsive.values():
            profile[versions] = profile.get(versions, 0) + 1
        return profile


@dataclass
class ZmapQuicSweep:
    """Stateless version-negotiation sweep at a configurable rate."""

    service: PrivateRelayService
    clock: SimClock
    rate: float = 1000.0  # probes/second — ZMap-fast, but rate limited
    burst: float = 100.0

    def sweep_prefixes(self, prefixes: list[Prefix]) -> ZmapSweepResult:
        """Probe every address of every prefix once."""
        bucket = TokenBucket(self.rate, self.burst, self.clock)
        result = ZmapSweepResult()
        started = self.clock.now
        for prefix in prefixes:
            for offset in range(prefix.num_addresses()):
                bucket.take()
                address = prefix.address_at(offset)
                self._probe(address, result)
        result.duration_seconds = self.clock.now - started
        return result

    def sweep_addresses(self, addresses: list[IPAddress]) -> ZmapSweepResult:
        """Probe an explicit address list once."""
        bucket = TokenBucket(self.rate, self.burst, self.clock)
        result = ZmapSweepResult()
        started = self.clock.now
        for address in addresses:
            bucket.take()
            self._probe(address, result)
        result.duration_seconds = self.clock.now - started
        return result

    def _probe(self, address: IPAddress, result: ZmapSweepResult) -> None:
        result.probes_sent += 1
        endpoint = self.service.quic_endpoint_for(address)
        if endpoint is None:
            result.silent += 1
            return
        packet = InitialPacket(
            version=GREASE_VERSION,
            destination_cid=bytes([result.probes_sent & 0xFF] * 8),
            source_cid=b"\x5a" * 8,
        )
        wire = endpoint.handle_datagram(packet.to_wire())
        if wire is None:
            result.silent += 1
            return
        response = decode_packet(wire)
        if isinstance(response, VersionNegotiationPacket):
            result.responsive[address] = tuple(
                version_name(v) for v in response.supported_versions
            )
        else:
            result.silent += 1
