"""Columnar scan results: packed response columns plus answer tables.

The batch-replay kernel (``ecs_scanner._run_program``) and the sharded
merge both produce answers as flat columns instead of one
:class:`~repro.scan.ecs_scanner.EcsResponse` object per query:

* ``values`` — ``array('I')`` of subnet network values,
* ``scopes`` — ``array('B')`` of declared ECS scopes,
* ``refs``   — ``array('I')`` of indices into a distinct-answer table,
* ``table``  — ``list`` of ``(address tuple, answer AS)`` entries, one
  per *distinct* answer (the kernels intern recurring answers).

A :class:`ColumnarResponses` holds one or more such chunks (one per
scan for the sequential kernel, one per shard for the merged result)
and serves the scan-result aggregations — address sets, per-AS tables,
scope tallies — directly from the columns.  Materialising the classic
``list[EcsResponse]`` is deferred until something actually iterates
``EcsScanResult.responses``; the aggregate views never pay for it.
"""

from __future__ import annotations

from array import array
from collections import Counter

from repro.netmodel.addr import IPAddress, Prefix

#: One chunk of packed responses: (values, scopes, refs, table).
Chunk = tuple[array, array, array, list[tuple[tuple[IPAddress, ...], int | None]]]


class ColumnarResponses:
    """Packed ECS scan answers, queryable without per-row objects.

    Chunk columns are any buffer-backed integer sequences: the sequential
    kernel fills plain ``array`` objects, while the sharded merge adopts
    ``memoryview`` casts over shared-memory segments without copying (see
    :meth:`retain` for the backing-buffer lifetime contract).
    """

    __slots__ = ("subnet_len", "chunks", "_prefixes", "_retained")

    def __init__(
        self, subnet_len: int, prefixes: dict[int, Prefix] | None = None
    ) -> None:
        self.subnet_len = subnet_len
        self.chunks: list[Chunk] = []
        # Prefix intern table shared with the producer (the scanner's
        # subnet cache, or the sharded executor's per-length interns), so
        # materialised responses reuse the same Prefix objects a classic
        # scan would have produced.
        self._prefixes = prefixes if prefixes is not None else {}
        self._retained: list[object] = []

    def new_chunk(self) -> Chunk:
        """Append and return one empty chunk for a producer to fill."""
        chunk: Chunk = (array("I"), array("B"), array("I"), [])
        self.chunks.append(chunk)
        return chunk

    def retain(self, owner: object) -> None:
        """Keep ``owner`` (a chunk's backing buffer) alive with the columns.

        Zero-copy chunks view memory owned elsewhere — e.g. an adopted
        (already unlinked) shared-memory segment.  Retaining the owner
        here ties the mapping's lifetime to the responses that read it;
        the OS reclaims the memory when both die.
        """
        self._retained.append(owner)

    def __len__(self) -> int:
        return sum(len(values) for values, _, _, _ in self.chunks)

    def scope_tally(self) -> Counter:
        """Responses per declared scope (the ``ecs.scope`` histogram feed).

        Iterating an ``array('B')`` via ``tobytes`` hands ``Counter`` a
        bytes object, which it tallies at C speed into integer keys.
        """
        tally: Counter = Counter()
        for _, scopes, _, _ in self.chunks:
            tally.update(scopes.tobytes())
        return tally

    def materialize(self) -> list:
        """The classic ``list[EcsResponse]`` view, built once on demand."""
        # Imported here, not at module top: ecs_scanner imports this
        # module for the kernel's output type.
        from repro.scan.ecs_scanner import EcsResponse

        length = self.subnet_len
        prefixes = self._prefixes
        out: list = []
        append = out.append
        prefix_get = prefixes.get
        for values, scopes, refs, table in self.chunks:
            for value, scope, ref in zip(values, scopes, refs):
                subnet = prefix_get(value)
                if subnet is None:
                    subnet = prefixes[value] = Prefix(4, value, length)
                append(EcsResponse(subnet, scope, *table[ref]))
        return out

    # -- aggregations (mirror EcsScanResult's list-based accessors) -----

    def addresses(self) -> set[IPAddress]:
        """All distinct answered addresses (union over the tables)."""
        out: set[IPAddress] = set()
        update = out.update
        for _, _, _, table in self.chunks:
            for addresses, _ in table:
                update(addresses)
        return out

    def addresses_by_asn(self) -> dict[int, set[IPAddress]]:
        """Distinct addresses per answer AS.

        Deduplicates table entries by ``(asn, id(addresses))`` across
        chunks — merged shard chunks intern their tuples, so a shared
        answer is unioned once, exactly like the list-based accessor.
        """
        out: dict[int, set[IPAddress]] = {}
        seen: set[tuple[int, int]] = set()
        seen_add = seen.add
        for _, _, _, table in self.chunks:
            for addresses, asn in table:
                if asn is None:
                    continue
                key = (asn, id(addresses))
                if key in seen:
                    continue
                seen_add(key)
                bucket = out.get(asn)
                if bucket is None:
                    bucket = out[asn] = set()
                bucket.update(addresses)
        return out

    def slash24s_by_asn(self) -> dict[int, int]:
        """Served /24 client subnets per answer AS.

        ``covered_slash24s`` is a pure function of the scope, so one
        C-speed tally over ``(ref, scope)`` pairs replaces the per-row
        loop.
        """
        out: dict[int, int] = {}
        for _, scopes, refs, table in self.chunks:
            for (ref, scope), n in Counter(zip(refs, scopes)).items():
                asn = table[ref][1]
                if asn is None:
                    continue
                covered = 1 if scope >= 24 else 1 << (24 - scope)
                out[asn] = out.get(asn, 0) + n * covered
        return out
