"""Longitudinal ingress-address dataset.

The paper commits to "perform regular scans in the future and publish
the collected ingress addresses" (the relay-networks.github.io data
releases).  This module is that archive: it accumulates ECS scan
results over time, tracks per-address first/last sightings, derives
growth and churn series, and round-trips the published CSV format:

    address,asn,first_seen,last_seen

Timestamps are the simulated scan start times (seconds since the
simulation epoch), rendered as integers.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field

from repro.errors import MeasurementError
from repro.netmodel.addr import IPAddress
from repro.scan.ecs_scanner import EcsScanResult


@dataclass
class AddressSighting:
    """Lifetime of one ingress address across scans."""

    address: IPAddress
    asn: int | None
    first_seen: float
    last_seen: float

    def seen_in_window(self, start: float, end: float) -> bool:
        """Whether the address was sighted within [start, end]."""
        return self.first_seen <= end and self.last_seen >= start


@dataclass
class IngressArchive:
    """Accumulated ingress sightings across a scan campaign."""

    domain: str
    _sightings: dict[IPAddress, AddressSighting] = field(default_factory=dict)
    _scans: list[tuple[float, int]] = field(default_factory=list)

    def record(self, scan: EcsScanResult) -> int:
        """Fold one scan into the archive; returns newly seen addresses.

        Scans must be recorded in chronological order.
        """
        if scan.domain != self.domain:
            raise MeasurementError(
                f"archive tracks {self.domain!r}, got scan of {scan.domain!r}"
            )
        if self._scans and scan.started_at < self._scans[-1][0]:
            raise MeasurementError("scans must be recorded chronologically")
        new = 0
        by_asn: dict[IPAddress, int | None] = {}
        for asn, asn_addresses in scan.addresses_by_asn().items():
            for address in asn_addresses:
                by_asn[address] = asn
        addresses = scan.addresses()
        for address in sorted(addresses):
            sighting = self._sightings.get(address)
            if sighting is None:
                self._sightings[address] = AddressSighting(
                    address, by_asn.get(address), scan.started_at, scan.started_at
                )
                new += 1
            else:
                sighting.last_seen = scan.started_at
        self._scans.append((scan.started_at, len(addresses)))
        return new

    def __len__(self) -> int:
        return len(self._sightings)

    def sightings(self) -> list[AddressSighting]:
        """All sightings, ordered by address."""
        return [self._sightings[a] for a in sorted(self._sightings)]

    def scan_count(self) -> int:
        """Number of recorded scans."""
        return len(self._scans)

    # ------------------------------------------------------------------
    # Derived series
    # ------------------------------------------------------------------

    def growth_series(self) -> list[tuple[float, int]]:
        """(scan time, addresses seen in that scan) per recorded scan."""
        return list(self._scans)

    def churned_addresses(self, as_of: float) -> set[IPAddress]:
        """Addresses not sighted by the most recent scan at ``as_of``."""
        relevant = [t for t, _n in self._scans if t <= as_of]
        if not relevant:
            return set()
        latest = max(relevant)
        return {
            a for a, s in self._sightings.items() if s.last_seen < latest
        }

    def stable_addresses(self) -> set[IPAddress]:
        """Addresses present from the first through the last scan."""
        if not self._scans:
            return set()
        first, last = self._scans[0][0], self._scans[-1][0]
        return {
            a
            for a, s in self._sightings.items()
            if s.first_seen <= first and s.last_seen >= last
        }

    # ------------------------------------------------------------------
    # Publication format
    # ------------------------------------------------------------------

    def to_csv(self) -> str:
        """Serialise in the published dataset format."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(["address", "asn", "first_seen", "last_seen"])
        for sighting in self.sightings():
            writer.writerow(
                [
                    str(sighting.address),
                    sighting.asn if sighting.asn is not None else "",
                    int(sighting.first_seen),
                    int(sighting.last_seen),
                ]
            )
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, domain: str, text: str) -> "IngressArchive":
        """Parse a published dataset back into an archive."""
        archive = cls(domain)
        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        if header != ["address", "asn", "first_seen", "last_seen"]:
            raise MeasurementError(f"unrecognised archive header: {header}")
        times = set()
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 4:
                raise MeasurementError(f"line {lineno}: expected 4 columns")
            address = IPAddress.parse(row[0])
            asn = int(row[1]) if row[1] else None
            first_seen, last_seen = float(row[2]), float(row[3])
            if last_seen < first_seen:
                raise MeasurementError(
                    f"line {lineno}: last_seen precedes first_seen"
                )
            archive._sightings[address] = AddressSighting(
                address, asn, first_seen, last_seen
            )
            times.update((first_seen, last_seen))
        archive._scans = [(t, 0) for t in sorted(times)]
        return archive
