"""Lint findings: the unit of output shared by every rule.

A :class:`Finding` pins a rule violation to a file/line/column and
carries the *stripped source line* as its content fingerprint.  The
baseline matches on ``(rule, path, content)`` rather than line numbers,
so unrelated edits that shift a grandfathered finding up or down do not
churn the baseline file.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: Severity levels.  Both gate the exit code identically; severity is a
#: triage hint (errors are determinism hazards, warnings are hygiene).
ERROR = "error"
WARNING = "warning"

#: Lifecycle states assigned by the engine after suppression/baseline
#: processing.  Only ``new`` findings fail a lint run.
STATUS_NEW = "new"
STATUS_SUPPRESSED = "suppressed"
STATUS_BASELINED = "baselined"


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix path relative to the scan root
    line: int
    col: int
    severity: str
    message: str
    content: str  # stripped source line (the baseline fingerprint)
    status: str = STATUS_NEW
    suppress_reason: str = ""
    #: Call-path evidence for whole-program findings: ``source → f → g
    #: → sink`` as a list of ``module:function`` hops.  Empty for
    #: per-file findings and omitted from the JSON form when empty.
    witness: list[str] = field(default_factory=list)

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.rule, self.path, self.content)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def to_json(self) -> dict:
        data = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "content": self.content,
            "status": self.status,
        }
        if self.suppress_reason:
            data["suppress_reason"] = self.suppress_reason
        if self.witness:
            data["witness"] = list(self.witness)
        return data

    def render(self) -> str:
        """One-line human-readable form (``path:line:col RULE sev: msg``)."""
        return (
            f"{self.path}:{self.line}:{self.col} "
            f"{self.rule} {self.severity}: {self.message}"
        )


# ---------------------------------------------------------------------------
# Inline suppressions (shared by the per-file engine and the
# whole-program passes, which scan files at different times).

#: ``# repro: allow[DET001] reason`` — one rule id or a comma-separated
#: list (``allow[CONC001,CONC101]``) covering several rules at once.
SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z]+\d+(?:\s*,\s*[A-Za-z]+\d+)*)\]\s*(.*?)\s*$"
)


def scan_suppressions(lines: list[str]) -> dict[int, list[tuple[str, str]]]:
    """Line number → [(rule-id, reason)] from inline allow comments."""
    table: dict[int, list[tuple[str, str]]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = SUPPRESS_RE.search(text)
        if match:
            reason = match.group(2)
            for rule_id in match.group(1).split(","):
                table.setdefault(lineno, []).append(
                    (rule_id.strip(), reason)
                )
    return table


def comment_only_lines(lines: list[str]) -> set[int]:
    """Line numbers whose stripped content starts with ``#``."""
    return {
        lineno
        for lineno, text in enumerate(lines, start=1)
        if text.lstrip().startswith("#")
    }


def apply_suppression_tables(
    findings: list[Finding],
    table: dict[int, list[tuple[str, str]]],
    comment_lines: set[int],
) -> None:
    """Mark findings suppressed by an allow comment on the finding's
    line or on a comment-only line directly above it."""
    if not table:
        return
    for finding in findings:
        for lineno in (finding.line, finding.line - 1):
            if lineno == finding.line - 1 and lineno not in comment_lines:
                continue
            for rule_id, reason in table.get(lineno, ()):
                if rule_id == finding.rule:
                    finding.status = STATUS_SUPPRESSED
                    finding.suppress_reason = reason
                    break
            if finding.status == STATUS_SUPPRESSED:
                break
