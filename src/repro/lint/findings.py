"""Lint findings: the unit of output shared by every rule.

A :class:`Finding` pins a rule violation to a file/line/column and
carries the *stripped source line* as its content fingerprint.  The
baseline matches on ``(rule, path, content)`` rather than line numbers,
so unrelated edits that shift a grandfathered finding up or down do not
churn the baseline file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Severity levels.  Both gate the exit code identically; severity is a
#: triage hint (errors are determinism hazards, warnings are hygiene).
ERROR = "error"
WARNING = "warning"

#: Lifecycle states assigned by the engine after suppression/baseline
#: processing.  Only ``new`` findings fail a lint run.
STATUS_NEW = "new"
STATUS_SUPPRESSED = "suppressed"
STATUS_BASELINED = "baselined"


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix path relative to the scan root
    line: int
    col: int
    severity: str
    message: str
    content: str  # stripped source line (the baseline fingerprint)
    status: str = STATUS_NEW
    suppress_reason: str = ""

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.rule, self.path, self.content)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def to_json(self) -> dict:
        data = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "content": self.content,
            "status": self.status,
        }
        if self.suppress_reason:
            data["suppress_reason"] = self.suppress_reason
        return data

    def render(self) -> str:
        """One-line human-readable form (``path:line:col RULE sev: msg``)."""
        return (
            f"{self.path}:{self.line}:{self.col} "
            f"{self.rule} {self.severity}: {self.message}"
        )
