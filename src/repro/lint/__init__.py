"""Static determinism & concurrency analysis (``repro lint``).

Zero-dependency AST linting that proves, at review time, what the
equivalence test matrices check dynamically: no wall-clock or entropy
reads outside sanctioned boundaries, no hash-ordered iteration leaking
into results, no fork-shared mutable module state, no exception
swallowing in recovery paths.  See DESIGN.md §9 for the rule catalogue
and the suppression/baseline workflow.
"""

from __future__ import annotations

from repro.lint.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import FileContext, LintEngine, LintReport
from repro.lint.findings import (
    ERROR,
    STATUS_BASELINED,
    STATUS_NEW,
    STATUS_SUPPRESSED,
    WARNING,
    Finding,
)
from repro.lint.rules import CHECKERS, RULES, Rule

__all__ = [
    "BaselineEntry",
    "CHECKERS",
    "ERROR",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintReport",
    "RULES",
    "Rule",
    "STATUS_BASELINED",
    "STATUS_NEW",
    "STATUS_SUPPRESSED",
    "WARNING",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]
