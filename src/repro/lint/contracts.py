"""Cross-module contract checkers (CONTRACT001).

Two contracts bind otherwise-independent modules:

* **Event kinds** — producers (`campaign.py`, `incremental.py`,
  `sharding.py`) emit record kinds; the schema registry
  (``EVENT_KINDS`` in :mod:`repro.monitor.events`) declares them; the
  monitor readers/renderers examine them via string comparisons.
  Drift in any direction is silent at type-check time:

  - an emitted kind missing from ``EVENT_KINDS`` (anchored at the
    emit site),
  - a declared kind nobody emits (anchored at the registry),
  - an emitted kind no monitor-package module ever compares against
    (anchored at the first emit site) — the record would be folded
    into nothing by every renderer.

* **Telemetry counters** — the same counter name used with two
  different label keysets or instrument kinds merges apples into
  oranges at absorb time (one finding per name, listing every
  variant); a counter asserted in tests that no runtime path emits is
  a test pinned to a renamed metric (anchored at the test line).

Counters that are emitted but never asserted anywhere in tests are
*informational*, not findings: they are returned separately and land
in the ``--graph-out`` export as ``untested_counters``.
"""

from __future__ import annotations

import re
from pathlib import Path, PurePosixPath

from repro.lint.findings import (
    Finding,
    apply_suppression_tables,
    comment_only_lines,
    scan_suppressions,
)
from repro.lint.graph import ProgramGraph
from repro.lint.rules import Rule

#: Where the event-kind registry lives: (module, constant name).
EVENT_KINDS_REGISTRY = ("repro.monitor.events", "EVENT_KINDS")

#: Modules whose string comparisons count as "handling" an event kind.
MONITOR_PREFIX = "repro.monitor"

#: ``registry.counter("name", ...)``-style assertions in test files.
_TEST_COUNTER_RE = re.compile(
    r"\.(counter|gauge|histogram)\(\s*[\"']([^\"']+)[\"']"
)


def _kind_sites(graph: ProgramGraph) -> dict[str, list[tuple]]:
    emitted: dict[str, list[tuple]] = {}
    for module in sorted(graph.summaries):
        summary = graph.summaries[module]
        for emit in summary.emits:
            emitted.setdefault(emit["kind"], []).append((summary, emit))
    return emitted


def check_event_contract(
    graph: ProgramGraph,
    rule: Rule,
    registry: tuple[str, str] = EVENT_KINDS_REGISTRY,
    monitor_prefix: str = MONITOR_PREFIX,
) -> list[Finding]:
    findings: list[Finding] = []
    registry_module, registry_name = registry
    declared: set[str] | None = None
    declaration = None
    reg_summary = graph.summaries.get(registry_module)
    if reg_summary is not None:
        declaration = reg_summary.string_sets.get(registry_name)
        if declaration is not None:
            declared = set(declaration["values"])
    emitted = _kind_sites(graph)
    handled: set[str] = set()
    for module, summary in graph.summaries.items():
        if module.startswith(monitor_prefix):
            handled.update(summary.compare_literals)
    for kind in sorted(emitted):
        for summary, emit in emitted[kind]:
            if declared is not None and kind not in declared:
                findings.append(Finding(
                    rule=rule.id, path=summary.path, line=emit["lineno"],
                    col=emit["col"], severity=rule.severity,
                    message=(f"event kind '{kind}' is emitted but missing "
                             f"from {registry_module}.{registry_name}"),
                    content=emit["content"],
                    witness=[f"{summary.module} emits '{kind}'"],
                ))
    if declared is not None and declaration is not None \
            and reg_summary is not None:
        for kind in sorted(declared - set(emitted)):
            findings.append(Finding(
                rule=rule.id, path=reg_summary.path,
                line=declaration["lineno"], col=declaration["col"],
                severity=rule.severity,
                message=(f"event kind '{kind}' is declared in "
                         f"{registry_name} but never emitted"),
                content=declaration["content"],
                witness=[f"{registry_module}.{registry_name}"],
            ))
    for kind in sorted(emitted):
        if declared is not None and kind not in declared:
            continue  # already reported above
        if kind in handled:
            continue
        summary, emit = min(
            emitted[kind], key=lambda pair: (pair[0].path, pair[1]["lineno"])
        )
        findings.append(Finding(
            rule=rule.id, path=summary.path, line=emit["lineno"],
            col=emit["col"], severity=rule.severity,
            message=(f"event kind '{kind}' is emitted but never examined "
                     f"by any {monitor_prefix} reader/renderer; every "
                     "dashboard and report would silently drop it"),
            content=emit["content"],
            witness=[f"{summary.module} emits '{kind}'"],
        ))
    return findings


def check_counter_contract(
    graph: ProgramGraph,
    rule: Rule,
    tests_root: str | Path | None = None,
) -> tuple[list[Finding], list[str]]:
    """Counter keyset/instrument drift + tests-vs-runtime cross-ref.

    Returns (findings, untested_counters): the latter is the sorted
    list of counter names emitted at runtime that no test asserts —
    informational only.
    """
    findings: list[Finding] = []
    #: name → {(instrument, labels...)} over non-dynamic sites.
    variants: dict[str, set[tuple]] = {}
    #: name → first (path, lineno, col, content) site.
    first_site: dict[str, tuple] = {}
    all_sites: dict[str, list[str]] = {}
    for module in sorted(graph.summaries):
        summary = graph.summaries[module]
        for counter in summary.counters:
            name = counter["name"]
            where = (summary.path, counter["lineno"], counter["col"],
                     counter["content"])
            if name not in first_site or where < first_site[name]:
                first_site[name] = where
            if counter["dynamic"]:
                continue
            signature = (counter["instrument"], tuple(counter["labels"]))
            variants.setdefault(name, set()).add(signature)
            all_sites.setdefault(name, []).append(
                f"{summary.path}:{counter['lineno']} "
                f"{counter['instrument']}"
                f"{{{', '.join(counter['labels'])}}}"
            )
    for name in sorted(variants):
        if len(variants[name]) <= 1:
            continue
        path, lineno, col, content = first_site[name]
        shapes = sorted(
            f"{instrument}{{{', '.join(labels)}}}"
            for instrument, labels in variants[name]
        )
        findings.append(Finding(
            rule=rule.id, path=path, line=lineno, col=col,
            severity=rule.severity,
            message=(f"metric '{name}' is used with "
                     f"{len(variants[name])} different shapes "
                     f"({'; '.join(shapes)}); merged totals mix "
                     "incompatible series"),
            content=content,
            witness=sorted(all_sites[name]),
        ))

    emitted_names = set(first_site)
    untested = sorted(emitted_names)
    if tests_root is None:
        return findings, untested
    tests_path = Path(tests_root)
    if not tests_path.is_dir():
        return findings, untested
    asserted: dict[str, tuple] = {}
    for test_file in sorted(tests_path.rglob("*.py")):
        try:
            text = test_file.read_text()
        except OSError:
            continue
        lines = text.splitlines()
        rel = str(PurePosixPath(test_file))
        hits: list[Finding] = []
        for lineno, line in enumerate(lines, start=1):
            for match in _TEST_COUNTER_RE.finditer(line):
                name = match.group(2)
                if name not in asserted:
                    asserted[name] = (rel, lineno)
                if name in emitted_names:
                    continue
                # Only names inside a runtime metric family are drift
                # candidates: a test-local fixture counter named
                # outside every family is not a contract.
                family = name.split(".")[0]
                if not any(e.split(".")[0] == family
                           for e in emitted_names):
                    continue
                hits.append(Finding(
                    rule=rule.id, path=rel, line=lineno,
                    col=match.start(), severity=rule.severity,
                    message=(f"test asserts metric '{name}' but no "
                             "runtime path in src emits it (renamed "
                             "or removed counter?)"),
                    content=line.strip(),
                    witness=[f"{rel}:{lineno}"],
                ))
        if hits:
            apply_suppression_tables(
                hits, scan_suppressions(lines), comment_only_lines(lines))
            findings.extend(hits)
    untested = sorted(emitted_names - set(asserted))
    return findings, untested


def check_contracts(
    graph: ProgramGraph,
    rule: Rule,
    tests_root: str | Path | None = None,
) -> tuple[list[Finding], list[str]]:
    """All contract checks; returns (findings, untested_counters)."""
    findings = check_event_contract(graph, rule)
    counter_findings, untested = check_counter_contract(
        graph, rule, tests_root)
    findings.extend(counter_findings)
    return findings, untested
