"""Whole-program import/call graph over the repro tree.

The per-file rules in :mod:`repro.lint.rules` see one AST at a time;
everything cross-module — a wall-clock value laundered through three
calls into a checkpoint, a mutation two hops below a forked worker
entry point, a package importing against the layer DAG — needs the
whole program.  This module builds that view:

* :func:`extract_summary` reduces one parsed file to a JSON-serialisable
  :class:`ModuleSummary`: imports, per-function call/source/mutation
  sites, telemetry and event-log contract surfaces, and the file's
  suppression table.  Summaries are what the content-hash cache stores,
  so a warm run never re-parses unchanged files.
* :class:`ProgramGraph` joins summaries into a module import graph and
  a name-resolved call graph.  Calls that cannot be resolved statically
  (``getattr`` results, callback parameters, ambiguous method names)
  are recorded as explicit *unresolved edges* with a reason — never
  silently dropped.
* :func:`check_layering` enforces the declared layer DAG
  (:data:`LAYER_DAG`) as LAYER001 findings.

Resolution strategy (deliberately conservative, documented in
DESIGN.md §13): bare names resolve through module definitions and
import aliases; ``self.m``/``cls.m`` resolve within the enclosing
class; dotted names resolve through import aliases into other modules'
top-level functions and methods.  A plain ``obj.m(...)`` whose head is
a parameter falls back to *method-name candidates* across the program,
capped at :data:`ATTR_CANDIDATE_CAP` targets and skipping the
:data:`_ATTR_NOISE` names shared with builtins — beyond the cap the
call is an unresolved ``ambiguous-method`` edge.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from repro.lint.findings import (
    Finding,
    comment_only_lines,
    scan_suppressions,
)
from repro.lint.rules import (
    _ENTROPY,
    _RANDOM_FUNCS,
    _WALL_CLOCK,
    _dotted,
    _has_suffix,
    _is_set_expr,
    Rule,
    function_mutation_sites,
    module_mutable_candidates,
)

#: Bump when the summary format or extraction logic changes; stale
#: cache entries are discarded by version, not debugged.
CACHE_VERSION = 1

#: A plain ``obj.m(...)`` attribute call resolves to every class method
#: named ``m`` in the program — up to this many candidates.  More means
#: the name is too common to resolve and the call becomes an explicit
#: ``ambiguous-method`` unresolved edge.
ATTR_CANDIDATE_CAP = 6

#: Method names shared with builtin container/file protocols: edges
#: through them would connect everything to everything, so attribute
#: fallback skips them silently (per-file rules still see the sites).
_ATTR_NOISE = frozenset({
    "append", "extend", "insert", "add", "update", "clear", "remove",
    "discard", "pop", "popitem", "setdefault", "sort", "reverse",
    "get", "items", "keys", "values", "copy", "join", "split", "strip",
    "startswith", "endswith", "format", "replace", "lower", "upper",
    "read", "write", "open", "close", "flush", "seek", "release",
    "encode", "decode", "mkdir", "exists", "resolve", "relative_to",
    "stat", "unlink", "is_file", "is_dir", "read_text", "write_text",
    "emit", "inc", "dec", "observe", "publish", "counter", "gauge",
    "histogram", "submit", "result", "shutdown", "cancel",
})

_BUILTIN_NAMES = frozenset(dir(builtins))

#: Names of set-materialising contexts that are *exempt* from
#: order-sensitivity (building another unordered value).
_ORDER_FREE_CALLS = frozenset({"set", "frozenset", "sorted", "len", "sum",
                               "min", "max", "any", "all"})
_MATERIALISERS = frozenset({"list", "tuple", "enumerate", "iter"})


def module_name(rel_path: str) -> str:
    """Dotted module name for a posix path relative to the scan root
    (``src/repro/scan/campaign.py`` → ``repro.scan.campaign``)."""
    parts = list(PurePosixPath(rel_path).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "<root>"


# ---------------------------------------------------------------------------
# Summary extraction


@dataclass
class FunctionInfo:
    """Everything the graph passes need about one top-level function or
    method; nested ``def``s fold into their enclosing function."""

    qname: str
    lineno: int
    returns_set: bool = False
    #: call sites: name (dotted source text or None for dynamic
    #: callees), lineno/col/content, iter_unsorted, assigned_to.
    calls: list[dict] = field(default_factory=list)
    #: DET taint sources: kind (wall/entropy/env), desc, site coords.
    sources: list[dict] = field(default_factory=list)
    #: module-global mutation sites: name, message, site coords.
    mutations: list[dict] = field(default_factory=list)
    #: unsorted iterations over bare local names: name, site coords.
    var_iters: list[dict] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "qname": self.qname, "lineno": self.lineno,
            "returns_set": self.returns_set, "calls": self.calls,
            "sources": self.sources, "mutations": self.mutations,
            "var_iters": self.var_iters,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FunctionInfo":
        return cls(**data)


@dataclass
class ModuleSummary:
    """The JSON-serialisable reduction of one source file."""

    path: str
    module: str
    is_package: bool = False
    #: one entry per imported alias: kind (import/from), module, name,
    #: asname, level, lineno, content.
    imports: list[dict] = field(default_factory=list)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: module-level mutable globals (CONC candidates): name → def line.
    candidates: dict[str, int] = field(default_factory=dict)
    #: ``pool.submit(fn, ...)`` first-arg names (worker entry points).
    submit_targets: list[dict] = field(default_factory=list)
    #: ``.emit("kind", ...)`` / ``._emit("kind", ...)`` literal sites.
    emits: list[dict] = field(default_factory=list)
    #: ``.counter/gauge/histogram("name", k=...)`` literal sites.
    counters: list[dict] = field(default_factory=list)
    #: module-level ``NAME = frozenset({"a", ...})`` string sets.
    string_sets: dict[str, dict] = field(default_factory=dict)
    #: string literals compared with ==/!=/in (reader-side handling).
    compare_literals: list[str] = field(default_factory=list)
    #: inline-allow table and comment-only lines, for applying
    #: suppressions to graph findings without re-reading the file.
    suppressions: dict[int, list[tuple[str, str]]] = field(
        default_factory=dict)
    comment_lines: set[int] = field(default_factory=set)

    def to_json(self) -> dict:
        return {
            "path": self.path, "module": self.module,
            "is_package": self.is_package, "imports": self.imports,
            "functions": {q: f.to_json() for q, f in self.functions.items()},
            "candidates": self.candidates,
            "submit_targets": self.submit_targets,
            "emits": self.emits, "counters": self.counters,
            "string_sets": self.string_sets,
            "compare_literals": self.compare_literals,
            "suppressions": {
                str(line): [[rule, reason] for rule, reason in pairs]
                for line, pairs in self.suppressions.items()
            },
            "comment_lines": sorted(self.comment_lines),
        }

    @classmethod
    def from_json(cls, data: dict) -> "ModuleSummary":
        return cls(
            path=data["path"], module=data["module"],
            is_package=data["is_package"], imports=data["imports"],
            functions={
                q: FunctionInfo.from_json(f)
                for q, f in data["functions"].items()
            },
            candidates=data["candidates"],
            submit_targets=data["submit_targets"],
            emits=data["emits"], counters=data["counters"],
            string_sets=data["string_sets"],
            compare_literals=data["compare_literals"],
            suppressions={
                int(line): [(rule, reason) for rule, reason in pairs]
                for line, pairs in data["suppressions"].items()
            },
            comment_lines=set(data["comment_lines"]),
        )


def taint_source_kind(dotted: str | None, node: ast.Call) -> tuple[str, str] | None:
    """(kind, description) when a call reads wall clock/entropy/env,
    mirroring the DET001/DET003 source definitions."""
    if dotted is not None:
        parts = dotted.split(".")
        if parts[0] == "secrets":
            return ("entropy", f"{dotted}() draws OS entropy")
        if any(_has_suffix(dotted, b) for b in _WALL_CLOCK):
            return ("wall", f"{dotted}() reads the wall clock")
        if any(_has_suffix(dotted, b) for b in _ENTROPY):
            return ("entropy", f"{dotted}() draws OS entropy")
        if _has_suffix(dotted, "os.getenv"):
            return ("env", "os.getenv() reads hidden host state")
        if _has_suffix(dotted, "random.SystemRandom"):
            return ("entropy", "random.SystemRandom draws OS entropy")
        if (len(parts) >= 2 and parts[-2] == "random"
                and parts[-1] in _RANDOM_FUNCS):
            return ("entropy",
                    f"{dotted}() uses the shared module-level generator")
    if not node.args and not node.keywords:
        if (dotted is not None and _has_suffix(dotted, "random.Random")) or (
            isinstance(node.func, ast.Name) and node.func.id == "Random"
        ):
            return ("entropy", "Random() without a seed is entropy-seeded")
    return None


def _returns_set(func: ast.AST) -> bool:
    """Whether a function's return type is textually a set: annotation
    ``-> set[...]``/``-> frozenset[...]`` or any ``return <set expr>``
    in its own body (nested defs excluded)."""
    ann = func.returns
    if ann is not None:
        base = ann.value if isinstance(ann, ast.Subscript) else ann
        if isinstance(base, ast.Name) and base.id in ("set", "frozenset"):
            return True
        if isinstance(base, ast.Attribute) and base.attr in (
                "Set", "FrozenSet", "AbstractSet"):
            return True
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Return) and node.value is not None \
                and _is_set_expr(node.value):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _build_parents(tree: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent
    return parents


def _under_sorted(node: ast.AST, parents: dict[int, ast.AST]) -> bool:
    current = parents.get(id(node))
    while current is not None:
        if (isinstance(current, ast.Call)
                and isinstance(current.func, ast.Name)
                and current.func.id in _ORDER_FREE_CALLS):
            return True
        current = parents.get(id(current))
    return False


def _iterated_unsorted(node: ast.AST, parents: dict[int, ast.AST]) -> bool:
    """Whether an expression's iteration order can leak: it is the
    iterable of a for/comprehension or a list()/tuple()/enumerate()/
    iter()/join() argument, and not under sorted() or another
    order-free reduction.  Set comprehensions are exempt (building a
    set from a set is order-insensitive)."""
    parent = parents.get(id(node))
    context = False
    if isinstance(parent, ast.For) and parent.iter is node:
        context = True
    elif isinstance(parent, ast.comprehension) and parent.iter is node:
        owner = parents.get(id(parent))
        context = not isinstance(owner, ast.SetComp)
    elif isinstance(parent, ast.Call) and parent.args \
            and parent.args[0] is node:
        if isinstance(parent.func, ast.Name) \
                and parent.func.id in _MATERIALISERS:
            context = True
        elif isinstance(parent.func, ast.Attribute) \
                and parent.func.attr == "join":
            context = True
    return context and not _under_sorted(node, parents)


def _assigned_name(node: ast.AST, parents: dict[int, ast.AST]) -> str | None:
    parent = parents.get(id(node))
    if isinstance(parent, ast.Assign) and parent.value is node \
            and len(parent.targets) == 1 \
            and isinstance(parent.targets[0], ast.Name):
        return parent.targets[0].id
    if isinstance(parent, ast.AnnAssign) and parent.value is node \
            and isinstance(parent.target, ast.Name):
        return parent.target.id
    return None


def extract_summary(
    rel_path: str, source: str, tree: ast.Module | None = None
) -> ModuleSummary:
    """Reduce one file to the :class:`ModuleSummary` the graph needs."""
    if tree is None:
        tree = ast.parse(source)
    lines = source.splitlines()
    parents = _build_parents(tree)

    def content(lineno: int) -> str:
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""

    def site(node: ast.AST) -> dict:
        lineno = getattr(node, "lineno", 1)
        return {"lineno": lineno, "col": getattr(node, "col_offset", 0),
                "content": content(lineno)}

    summary = ModuleSummary(
        path=rel_path,
        module=module_name(rel_path),
        is_package=PurePosixPath(rel_path).name == "__init__.py",
        candidates=module_mutable_candidates(tree),
        suppressions=scan_suppressions(lines),
        comment_lines=comment_only_lines(lines),
    )

    # -- module-wide surfaces ---------------------------------------------
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                summary.imports.append({
                    "kind": "import", "module": alias.name,
                    "name": None, "asname": alias.asname, "level": 0,
                    **site(node),
                })
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                summary.imports.append({
                    "kind": "from", "module": node.module or "",
                    "name": alias.name, "asname": alias.asname,
                    "level": node.level, **site(node),
                })
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "submit" \
                    and node.args and isinstance(node.args[0], ast.Name):
                summary.submit_targets.append(
                    {"name": node.args[0].id, **site(node)})
            emit_name = None
            if isinstance(func, ast.Attribute) \
                    and func.attr in ("emit", "_emit"):
                emit_name = func.attr
            elif isinstance(func, ast.Name) and func.id == "_emit":
                emit_name = func.id
            if emit_name and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                summary.emits.append(
                    {"kind": node.args[0].value, **site(node)})
            if isinstance(func, ast.Attribute) \
                    and func.attr in ("counter", "gauge", "histogram") \
                    and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                summary.counters.append({
                    "instrument": func.attr,
                    "name": node.args[0].value,
                    "labels": sorted(
                        kw.arg for kw in node.keywords if kw.arg),
                    "dynamic": any(kw.arg is None for kw in node.keywords),
                    **site(node),
                })
        elif isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)):
                    continue
                exprs = [node.left, comparator]
                if isinstance(comparator, (ast.Set, ast.Tuple, ast.List)):
                    exprs.extend(comparator.elts)
                for expr in exprs:
                    if isinstance(expr, ast.Constant) \
                            and isinstance(expr.value, str):
                        summary.compare_literals.append(expr.value)
        elif isinstance(node, ast.MatchValue):
            if isinstance(node.value, ast.Constant) \
                    and isinstance(node.value.value, str):
                summary.compare_literals.append(node.value.value)
    summary.compare_literals = sorted(set(summary.compare_literals))

    # -- module-level string-set constants (event-kind registries) --------
    for stmt in tree.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)):
            continue
        value = stmt.value
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
                and value.func.id in ("set", "frozenset") \
                and len(value.args) == 1:
            value = value.args[0]
        if isinstance(value, (ast.Set, ast.List, ast.Tuple)) and value.elts \
                and all(isinstance(e, ast.Constant)
                        and isinstance(e.value, str) for e in value.elts):
            summary.string_sets[stmt.targets[0].id] = {
                "values": sorted(e.value for e in value.elts),
                **site(stmt),
            }

    # -- per-function facts ------------------------------------------------
    def extract_function(qname: str, func: ast.AST) -> None:
        info = FunctionInfo(
            qname=qname, lineno=func.lineno, returns_set=_returns_set(func))
        for node, name, message in function_mutation_sites(
            func, summary.candidates
        ):
            info.mutations.append({"name": name, "message": message,
                                   **site(node)})
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                source_kind = taint_source_kind(dotted, node)
                if source_kind is not None:
                    info.sources.append({
                        "kind": source_kind[0], "desc": source_kind[1],
                        **site(node),
                    })
                info.calls.append({
                    "name": dotted,
                    "iter_unsorted": _iterated_unsorted(node, parents),
                    "assigned_to": _assigned_name(node, parents),
                    **site(node),
                })
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted and _has_suffix(dotted, "os.environ"):
                    info.sources.append({
                        "kind": "env",
                        "desc": "os.environ reads hidden host state",
                        **site(node),
                    })
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if _iterated_unsorted(node, parents):
                    info.var_iters.append({"name": node.id, **site(node)})
        summary.functions[qname] = info

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            extract_function(stmt.name, stmt)
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    extract_function(f"{stmt.name}.{item.name}", item)
    return summary


# ---------------------------------------------------------------------------
# The program graph


class ProgramGraph:
    """Module import graph + name-resolved call graph over summaries."""

    def __init__(self, summaries: list[ModuleSummary]) -> None:
        self.summaries: dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.summaries[summary.module] = summary
        self.by_path: dict[str, ModuleSummary] = {
            s.path: s for s in self.summaries.values()
        }
        #: fn id ``module:qname`` → (summary, FunctionInfo)
        self.functions: dict[str, tuple[ModuleSummary, FunctionInfo]] = {}
        #: method name → fn ids, for attribute-call fallback.
        self._method_index: dict[str, list[str]] = {}
        for summary in self.summaries.values():
            for qname, info in summary.functions.items():
                fn_id = f"{summary.module}:{qname}"
                self.functions[fn_id] = (summary, info)
                self._method_index.setdefault(
                    qname.rsplit(".", 1)[-1], []).append(fn_id)
        for ids in self._method_index.values():
            ids.sort()
        self._alias_maps: dict[str, dict[str, str]] = {
            module: self._build_alias_map(summary)
            for module, summary in self.summaries.items()
        }
        #: import edges: {"src", "dst", "lineno", "col", "content"}
        self.import_edges: list[dict] = []
        self._build_import_edges()
        #: fn id → [(callee fn id, call-site dict, resolution kind)]
        self.call_edges: dict[str, list[tuple[str, dict, str]]] = {}
        #: explicitly unresolved calls: caller / name / reason / site.
        self.unresolved: list[dict] = []
        self._resolve_calls()

    # -- construction ------------------------------------------------------

    def _resolve_relative(self, summary: ModuleSummary, entry: dict) -> str:
        base = summary.module.split(".")
        if not summary.is_package:
            base = base[:-1]
        level = entry["level"]
        if level > 1:
            base = base[: len(base) - (level - 1)]
        if entry["module"]:
            base = base + entry["module"].split(".")
        return ".".join(base)

    def _build_alias_map(self, summary: ModuleSummary) -> dict[str, str]:
        aliases: dict[str, str] = {}
        for entry in summary.imports:
            if entry["kind"] == "import":
                target = entry["module"]
                if entry["asname"]:
                    aliases[entry["asname"]] = target
                else:
                    aliases[target.split(".")[0]] = target.split(".")[0]
            else:
                if entry["name"] == "*":
                    continue
                target_module = (
                    self._resolve_relative(summary, entry)
                    if entry["level"] else entry["module"]
                )
                bound = entry["asname"] or entry["name"]
                aliases[bound] = f"{target_module}.{entry['name']}"
        return aliases

    def _module_prefix(self, dotted: str) -> str | None:
        """Longest known-module prefix of a dotted path."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.summaries:
                return candidate
        return None

    def _build_import_edges(self) -> None:
        for summary in self.summaries.values():
            for entry in summary.imports:
                if entry["kind"] == "import":
                    target = entry["module"]
                else:
                    target_module = (
                        self._resolve_relative(summary, entry)
                        if entry["level"] else entry["module"]
                    )
                    # `from pkg import sub` may bind a submodule.
                    sub = f"{target_module}.{entry['name']}"
                    target = sub if sub in self.summaries else target_module
                dst = self._module_prefix(target)
                if dst is None or dst == summary.module:
                    continue
                self.import_edges.append({
                    "src": summary.module, "dst": dst,
                    "lineno": entry["lineno"], "col": entry["col"],
                    "content": entry["content"],
                })

    def _resolve_dotted(self, target: str) -> str | None:
        """A fully-qualified ``pkg.mod.f`` / ``pkg.mod.Cls.m`` → fn id."""
        module = self._module_prefix(target)
        if module is None:
            return None
        rest = target[len(module):].lstrip(".")
        summary = self.summaries[module]
        if rest in summary.functions:
            return f"{module}:{rest}"
        if rest and f"{rest}.__init__" in summary.functions:
            return f"{module}:{rest}.__init__"
        return None

    def _resolve_calls(self) -> None:
        for fn_id, (summary, info) in sorted(self.functions.items()):
            edges = self.call_edges.setdefault(fn_id, [])
            aliases = self._alias_maps[summary.module]
            cls = info.qname.rsplit(".", 1)[0] if "." in info.qname else None
            for call in info.calls:
                name = call["name"]
                if name is None:
                    self.unresolved.append({
                        "caller": fn_id, "name": None,
                        "reason": "dynamic-callee",
                        "lineno": call["lineno"], "col": call["col"],
                    })
                    continue
                parts = name.split(".")
                head = parts[0]
                if head in ("self", "cls") and cls is not None \
                        and len(parts) == 2:
                    local = f"{cls}.{parts[1]}"
                    if local in summary.functions:
                        edges.append(
                            (f"{summary.module}:{local}", call, "direct"))
                        continue
                    self._fallback(fn_id, name, parts[-1], call, edges)
                elif len(parts) == 1:
                    if name in summary.functions:
                        edges.append(
                            (f"{summary.module}:{name}", call, "direct"))
                    elif f"{name}.__init__" in summary.functions:
                        edges.append((f"{summary.module}:{name}.__init__",
                                      call, "direct"))
                    elif name in aliases:
                        resolved = self._resolve_dotted(aliases[name])
                        if resolved is not None:
                            edges.append((resolved, call, "direct"))
                    elif name not in _BUILTIN_NAMES:
                        self.unresolved.append({
                            "caller": fn_id, "name": name,
                            "reason": "unknown-callable",
                            "lineno": call["lineno"], "col": call["col"],
                        })
                else:
                    if name in summary.functions:
                        edges.append(
                            (f"{summary.module}:{name}", call, "direct"))
                        continue
                    if head in aliases:
                        target = ".".join([aliases[head]] + parts[1:])
                        resolved = self._resolve_dotted(target)
                        if resolved is not None:
                            edges.append((resolved, call, "direct"))
                            continue
                        if target.split(".")[0] != "repro" or \
                                self._module_prefix(target) is not None:
                            # A known module's attribute that is not a
                            # function (constant, class attr): silent.
                            continue
                    if head not in ("self", "cls"):
                        self._fallback(fn_id, name, parts[-1], call, edges)

    def _fallback(self, fn_id: str, name: str, method: str,
                  call: dict, edges: list) -> None:
        """Attribute-call fallback: method-name candidates program-wide."""
        if method in _ATTR_NOISE:
            return
        candidates = self._method_index.get(method, [])
        candidates = [c for c in candidates if "." in c.split(":", 1)[1]]
        if not candidates:
            self.unresolved.append({
                "caller": fn_id, "name": name, "reason": "unknown-method",
                "lineno": call["lineno"], "col": call["col"],
            })
            return
        if len(candidates) > ATTR_CANDIDATE_CAP:
            self.unresolved.append({
                "caller": fn_id, "name": name,
                "reason": f"ambiguous-method ({len(candidates)} candidates)",
                "lineno": call["lineno"], "col": call["col"],
            })
            return
        for candidate in candidates:
            edges.append((candidate, call, "fallback"))

    # -- queries -----------------------------------------------------------

    def reachable_from(self, roots: list[str]) -> dict[str, tuple[str, ...]]:
        """BFS over call edges from root fn ids → {fn id: witness path}
        where the path runs root → … → fn (shortest, deterministic)."""
        paths: dict[str, tuple[str, ...]] = {}
        frontier: list[str] = []
        for root in roots:
            if root in self.functions and root not in paths:
                paths[root] = (root,)
                frontier.append(root)
        while frontier:
            next_frontier: list[str] = []
            for fn_id in frontier:
                for callee, _site, _kind in self.call_edges.get(fn_id, ()):
                    if callee in paths or callee not in self.functions:
                        continue
                    paths[callee] = paths[fn_id] + (callee,)
                    next_frontier.append(callee)
            frontier = sorted(set(next_frontier))
        return paths

    def importers_cone(self, paths: set[str]) -> set[str]:
        """The given file paths plus every file that (transitively)
        imports one of them — the re-analysis cone for --changed-since."""
        reverse: dict[str, set[str]] = {}
        for edge in self.import_edges:
            reverse.setdefault(edge["dst"], set()).add(edge["src"])
        cone_modules = {
            self.by_path[p].module for p in paths if p in self.by_path
        }
        frontier = set(cone_modules)
        while frontier:
            new: set[str] = set()
            for module in frontier:
                new |= reverse.get(module, set()) - cone_modules
            cone_modules |= new
            frontier = new
        return set(paths) | {
            self.summaries[m].path for m in cone_modules
        }

    def export(self) -> dict:
        """The ``--graph-out`` debug document."""
        return {
            "version": CACHE_VERSION,
            "modules": [
                {
                    "module": s.module, "path": s.path,
                    "layer": layer_of(s.module),
                    "functions": sorted(s.functions),
                }
                for s in sorted(
                    self.summaries.values(), key=lambda s: s.module)
            ],
            "import_edges": sorted(
                self.import_edges,
                key=lambda e: (e["src"], e["lineno"], e["dst"]),
            ),
            "call_edges": [
                {"caller": caller, "callee": callee,
                 "lineno": site["lineno"], "resolution": kind}
                for caller in sorted(self.call_edges)
                for callee, site, kind in self.call_edges[caller]
            ],
            "unresolved": sorted(
                self.unresolved,
                key=lambda e: (e["caller"], e["lineno"], e["name"] or ""),
            ),
        }


# ---------------------------------------------------------------------------
# Layering (LAYER001)

#: Planes importable from any layer: error hierarchy, simulated time,
#: metrics, fault injection, perf counters.  They still have their own
#: allowed-imports rows below — a utility reaching *into the spine* is
#: exactly the coupling LAYER001 exists to catch.
UTILITY_LAYERS = frozenset(
    {"errors", "simtime", "telemetry", "perfstats", "faults"}
)

#: Declared layer DAG: layer → layers it may import *directly*; the
#: transitive closure is allowed too (scan may reach netmodel through
#: relay).  Single-file top-level modules map to their own layer name;
#: ``repro/cli.py`` and the top package form the ``app`` layer.
LAYER_DAG: dict[str, frozenset] = {
    "errors": frozenset(),
    "simtime": frozenset({"errors"}),
    "telemetry": frozenset({"errors", "simtime"}),
    "perfstats": frozenset({"errors", "telemetry"}),
    "faults": frozenset({"errors", "telemetry"}),
    "quic": frozenset({"errors"}),
    "netmodel": frozenset({"errors", "simtime", "perfstats"}),
    "dns": frozenset({"netmodel"}),
    "masque": frozenset({"netmodel"}),
    "relay": frozenset({"dns", "quic", "masque"}),
    "atlas": frozenset({"dns"}),
    "worldgen": frozenset({"atlas", "relay"}),
    "scan": frozenset({"worldgen", "quic"}),
    "analysis": frozenset({"scan", "masque"}),
    "archive": frozenset({"scan"}),
    "monitor": frozenset({"faults"}),
    "lint": frozenset({"telemetry"}),
    "app": frozenset({"analysis", "archive", "monitor", "lint"}),
}


def layer_of(module: str) -> str | None:
    """Layer for a dotted module name; None for non-repro modules,
    ``"?"`` for repro modules outside the declared table."""
    if module == "repro" or module == "repro.cli":
        return "app"
    if not module.startswith("repro."):
        return None
    segment = module.split(".")[1]
    if segment in LAYER_DAG:
        return segment
    return "?"


def _closure() -> dict[str, frozenset]:
    closed: dict[str, set] = {}

    def visit(layer: str) -> set:
        if layer in closed:
            return closed[layer]
        closed[layer] = set()
        allowed = set(LAYER_DAG[layer])
        for dep in LAYER_DAG[layer]:
            allowed |= visit(dep)
        closed[layer] = allowed
        return allowed

    for layer in LAYER_DAG:
        visit(layer)
    return {layer: frozenset(deps) for layer, deps in closed.items()}


_LAYER_CLOSURE = _closure()


def check_layering(graph: ProgramGraph, rule: Rule) -> list[Finding]:
    """LAYER001: imports that violate the declared layer DAG."""
    findings: list[Finding] = []
    for module, summary in sorted(graph.summaries.items()):
        if layer_of(module) == "?":
            findings.append(Finding(
                rule=rule.id, path=summary.path, line=1, col=0,
                severity=rule.severity,
                message=(f"module {module} is outside the declared layer "
                         "DAG; add it to LAYER_DAG in lint/graph.py"),
                content="", witness=[module],
            ))
    for edge in sorted(graph.import_edges,
                       key=lambda e: (e["src"], e["lineno"], e["dst"])):
        src_layer = layer_of(edge["src"])
        dst_layer = layer_of(edge["dst"])
        if src_layer in (None, "?") or dst_layer in (None, "?"):
            continue
        if src_layer == dst_layer:
            continue
        allowed = (
            dst_layer in UTILITY_LAYERS
            or dst_layer in _LAYER_CLOSURE.get(src_layer, frozenset())
        )
        if not allowed:
            src = graph.summaries[edge["src"]]
            findings.append(Finding(
                rule=rule.id, path=src.path, line=edge["lineno"],
                col=edge["col"], severity=rule.severity,
                message=(f"layer '{src_layer}' may not import layer "
                         f"'{dst_layer}' ({edge['src']} → {edge['dst']}); "
                         "allowed edges are declared in lint/graph.py"),
                content=edge["content"],
                witness=[edge["src"], edge["dst"]],
            ))
    return findings
